"""Per-file race facts: lock regions, shared-state accesses, RNG seeds.

This is the cacheable half of repro-race, called from
:func:`tools.reproflow.extract.extract_module_facts` so the race facts
ride the same content-hash facts cache as the effect facts (one parse,
one cache entry per file).  Everything here is *local* to one module --
symbolic references that need the cross-file graph (a call to
``self._acquire_lock()``, a helper in a seed derivation) are recorded
as unresolved tokens and resolved later by :mod:`tools.reprorace.locks`
and :mod:`tools.reprorace.seeds`.

Per function the extractor records:

``accesses``
    Reads/writes of module/class state with the lock set syntactically
    held at each site.  State is: names assigned at module top level
    (read by bare name, written through ``global``), dotted module
    attributes resolving into ``repro.*``, and ``ClassName.attr`` for
    top-level classes.  Instance attributes (``self.x``) are not state.

``acquires``
    Direct lock acquisitions (``fcntl`` acquire, ``x.acquire()``) with
    a blocking flag -- RPL203's candidate sites.

``call_locks``
    Locks held at each call site (line -> tokens), the input to the
    interprocedural must-hold meet in :mod:`tools.reprorace.locks`.

``store_ops``
    Store-file writes (append-mode opens) with held locks -- RPL202's
    candidate sites.

``rng_sites`` / ``seed_return``
    RNG construction sites with a backward slice of the seed argument
    classified into derivation roots, and the same classification of
    the function's return expressions (so seeds derived *through* a
    helper resolve over the call graph).

Lock tokens are plain strings so the whole record is JSON-safe:

``"fcntl"``
    A direct ``fcntl.flock``/``lockf`` acquire (released by
    ``LOCK_UN``).

``"with:<expr>"``
    A ``with``/``async with`` region over a lock-ish expression
    (``with self._lock:``), or the region opened by ``<expr>.acquire()``
    and closed by ``<expr>.release()``.  Canonical by expression text.

``"call:<expr>"``
    A call to an acquire-named helper (``self._acquire_lock()``);
    real only if the graph resolves it to a function that directly
    acquires ``fcntl`` (checked in locks.py), released by a
    release-named call on the same base object.

The region interpreter is a must-analysis: branches meet by
intersection (a lock released on one path of an ``if`` is not held
after the join), loop bodies may run zero times, and ``with`` regions
end at block exit.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Dict, FrozenSet, List, Optional, Set

from tools.reprolint.rules import ImportMap

SEEDISH = re.compile(r"seed|salt", re.IGNORECASE)
LOCKISH = re.compile(r"lock", re.IGNORECASE)
ACQUIRE_NAME = re.compile(r"acquire", re.IGNORECASE)
RELEASE_NAME = re.compile(r"release|unlock", re.IGNORECASE)

#: RNG constructors whose seed argument must derive from a seeded root.
RNG_CTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)
_BITGENS = frozenset(d for d in RNG_CTORS if d.rsplit(".", 1)[1] != "default_rng")

#: Entropy a rerun cannot replay: never a valid seed root.
BAD_SEED_SOURCES = frozenset(
    {"os.getpid", "os.getppid", "os.urandom", "os.getrandom", "id", "hash"}
)
BAD_SEED_PREFIXES = ("time.", "uuid.", "secrets.")

#: Builtins that pass derivation through to their arguments.
PASSTHROUGH_BUILTINS = frozenset(
    {"int", "abs", "round", "min", "max", "sum", "divmod", "pow", "len", "float", "bool", "str", "repr", "tuple", "sorted"}
)
#: Builtin type names usable as method bases (``int.from_bytes(...)``).
CONSTLIKE_NAMES = frozenset({"int", "str", "bytes", "float", "bool"})


def _attribute_parts(node: ast.expr) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return "<expr>"


def call_token_base(token: str) -> str:
    """``"call:self._acquire_lock"`` -> ``"self"`` (empty for bare names)."""
    text = token.split(":", 1)[1]
    return text.rsplit(".", 1)[0] if "." in text else ""


def module_state_names(tree: ast.AST) -> Set[str]:
    """Names assigned at module top level (through top-level if/try)."""
    names: Set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(child, (ast.If, ast.Try)):
                visit(child)

    visit(tree)
    return names


def module_class_names(tree: ast.AST) -> Set[str]:
    """Top-level class names (for ``ClassName.attr`` state accesses)."""
    return {
        child.name
        for child in ast.iter_child_nodes(tree)
        if isinstance(child, ast.ClassDef)
    }


class RaceExtractor:
    """Per-module factory for per-function race facts."""

    def __init__(
        self,
        imports: ImportMap,
        module: str,
        state_names: Set[str],
        class_names: Set[str],
    ) -> None:
        self.imports = imports
        self.module = module
        self.state_names = frozenset(state_names)
        self.class_names = frozenset(class_names)

    def function_facts(self, func: ast.AST) -> Dict[str, Any]:
        return _FunctionRace(self, func).run()


class _FunctionRace:
    def __init__(self, owner: RaceExtractor, func: ast.AST) -> None:
        self.owner = owner
        self.func = func
        self.params: Set[str] = set()
        self.global_names: Set[str] = set()
        self.local_names: Set[str] = set()
        self.assignments: Dict[str, List[ast.expr]] = {}
        self.awaited: Set[int] = set()
        self.accesses: List[List[Any]] = []
        self.acquires: List[Dict[str, Any]] = []
        self.store_ops: List[List[Any]] = []
        self.rng_sites: List[Dict[str, Any]] = []
        self.returns: List[ast.expr] = []
        self._call_locks: Dict[int, FrozenSet[str]] = {}
        self.fcntl_acquire = False

    # -- driver --------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        self._prepass()
        self._block(self.func.body, frozenset())
        roots: Set[str] = set()
        for value in self.returns:
            self._classify(value, roots, set())
        facts: Dict[str, Any] = {}
        if self.accesses:
            facts["accesses"] = self.accesses
        if self.acquires:
            facts["acquires"] = self.acquires
        if self.store_ops:
            facts["store_ops"] = self.store_ops
        if self.rng_sites:
            facts["rng_sites"] = self.rng_sites
        if self.fcntl_acquire:
            facts["fcntl_acquire"] = True
        call_locks = {
            str(line): sorted(held)
            for line, held in self._call_locks.items()
            if held
        }
        if call_locks:
            facts["call_locks"] = call_locks
        if roots:
            facts["seed_return"] = {"roots": sorted(roots)}
        return facts

    def _prepass(self) -> None:
        args = self.func.args
        for arg in (
            list(getattr(args, "posonlyargs", []))
            + list(args.args)
            + list(args.kwonlyargs)
            + [a for a in (args.vararg, args.kwarg) if a is not None]
        ):
            self.params.add(arg.arg)
        for node in self._own_nodes():
            if isinstance(node, ast.Global):
                self.global_names.update(node.names)
        for node in self._own_nodes():
            if isinstance(node, ast.Await):
                if isinstance(node.value, ast.Call):
                    self.awaited.add(id(node.value))
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self.assignments.setdefault(target.id, []).append(node.value)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    self.assignments.setdefault(node.target.id, []).append(
                        node.value
                    )
            elif isinstance(node, ast.NamedExpr):
                if isinstance(node.target, ast.Name):
                    self.assignments.setdefault(node.target.id, []).append(
                        node.value
                    )
            elif isinstance(node, ast.Return) and node.value is not None:
                self.returns.append(node.value)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id not in self.global_names:
                    self.local_names.add(node.id)

    def _own_nodes(self):
        def visit(node: ast.AST):
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                yield child
                yield from visit(child)

        for stmt in self.func.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield stmt
            yield from visit(stmt)

    # -- region interpreter (must-analysis over held locks) ------------

    def _block(
        self, stmts: List[ast.stmt], held: FrozenSet[str]
    ) -> FrozenSet[str]:
        for stmt in stmts:
            held = self._stmt(stmt, held)
        return held

    def _stmt(self, stmt: ast.stmt, held: FrozenSet[str]) -> FrozenSet[str]:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return held
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            tokens: Set[str] = set()
            for item in stmt.items:
                self._scan(item.context_expr, held)
                held = self._transitions(item.context_expr, held)
                text = _unparse(item.context_expr)
                if LOCKISH.search(text):
                    tokens.add(f"with:{text}")
            inner = self._block(stmt.body, frozenset(held | tokens))
            return frozenset(inner - tokens)
        if isinstance(stmt, ast.If):
            self._scan(stmt.test, held)
            return self._block(stmt.body, held) & self._block(
                stmt.orelse, held
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan(stmt.iter, held)
            after_body = self._block(stmt.body, held)
            after = held & after_body
            return after & self._block(stmt.orelse, after)
        if isinstance(stmt, ast.While):
            self._scan(stmt.test, held)
            after_body = self._block(stmt.body, held)
            after = held & after_body
            return after & self._block(stmt.orelse, after)
        if isinstance(stmt, ast.Try):
            after_body = self._block(stmt.body, held)
            out = (
                self._block(stmt.orelse, after_body)
                if stmt.orelse
                else after_body
            )
            for handler in stmt.handlers:
                out = out & self._block(handler.body, held & after_body)
            if stmt.finalbody:
                return self._block(stmt.finalbody, out)
            return out
        self._scan(stmt, held)
        return self._transitions(stmt, held)

    # -- site scanning -------------------------------------------------

    def _walk(self, node: ast.AST):
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from self._walk(child)

    def _scan(self, node: ast.AST, held: FrozenSet[str]) -> None:
        module = self.owner.module
        for n in self._walk(node):
            if isinstance(n, ast.Name):
                if isinstance(n.ctx, ast.Store):
                    if n.id in self.global_names:
                        self._access(
                            f"{module}.{n.id}", "write", n.lineno, held
                        )
                elif isinstance(n.ctx, ast.Load):
                    if (
                        (n.id in self.owner.state_names or n.id in self.global_names)
                        and n.id not in self.local_names
                        and n.id not in self.params
                    ):
                        self._access(
                            f"{module}.{n.id}", "read", n.lineno, held
                        )
            elif isinstance(n, ast.Attribute):
                self._attribute_site(n, held)
            elif isinstance(n, ast.AugAssign):
                # The implicit read of ``X += 1``.
                target = n.target
                if (
                    isinstance(target, ast.Name)
                    and target.id in self.global_names
                ):
                    self._access(
                        f"{module}.{target.id}", "read", target.lineno, held
                    )
            elif isinstance(n, ast.Call):
                self._call_site(n, held)

    def _attribute_site(self, node: ast.Attribute, held: FrozenSet[str]) -> None:
        kind = "write" if isinstance(node.ctx, ast.Store) else "read"
        if not isinstance(node.ctx, (ast.Store, ast.Load)):
            return
        parts = _attribute_parts(node)
        if (
            parts
            and len(parts) == 2
            and parts[0] in self.owner.class_names
            and parts[0] not in self.local_names
        ):
            self._access(
                f"{self.owner.module}.{parts[0]}.{parts[1]}",
                kind,
                node.lineno,
                held,
            )
            return
        resolved = self.owner.imports.resolve(node)
        if resolved is not None and resolved.startswith("repro."):
            self._access(resolved, kind, node.lineno, held)

    def _access(
        self, name: str, kind: str, line: int, held: FrozenSet[str]
    ) -> None:
        record = [name, kind, line, sorted(held)]
        if record not in self.accesses:
            self.accesses.append(record)

    def _call_site(self, call: ast.Call, held: FrozenSet[str]) -> None:
        line = call.lineno
        if line in self._call_locks:
            self._call_locks[line] = self._call_locks[line] & held
        else:
            self._call_locks[line] = held
        dotted = self.owner.imports.resolve(call.func)
        if dotted in RNG_CTORS:
            self._rng_site(call, dotted)
        self._store_op(call, dotted, held)

    # -- store ops (append-mode writes) --------------------------------

    def _store_op(
        self, call: ast.Call, dotted: Optional[str], held: FrozenSet[str]
    ) -> None:
        if dotted == "os.open":
            for arg in ast.walk(call):
                if isinstance(arg, ast.Attribute) and arg.attr == "O_APPEND":
                    self.store_ops.append(
                        [call.lineno, "os.open(..., O_APPEND)", sorted(held)]
                    )
                    return
            return
        is_builtin_open = (
            isinstance(call.func, ast.Name) and call.func.id == "open"
        )
        is_method_open = (
            isinstance(call.func, ast.Attribute) and call.func.attr == "open"
        )
        if is_builtin_open or dotted == "io.open" or is_method_open:
            mode = self._mode_argument(
                call, second=is_builtin_open or dotted == "io.open"
            )
            if mode is not None and "a" in mode:
                self.store_ops.append(
                    [call.lineno, f"append-mode open ({mode!r})", sorted(held)]
                )

    @staticmethod
    def _mode_argument(node: ast.Call, second: bool) -> Optional[str]:
        position = 1 if second else 0
        if len(node.args) > position:
            candidate = node.args[position]
            if isinstance(candidate, ast.Constant) and isinstance(
                candidate.value, str
            ):
                return candidate.value
        for kw in node.keywords:
            if (
                kw.arg == "mode"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                return kw.value.value
        return None

    # -- lock transitions ----------------------------------------------

    def _transitions(
        self, stmt: ast.AST, held: FrozenSet[str]
    ) -> FrozenSet[str]:
        out = set(held)
        for n in self._walk(stmt):
            if not isinstance(n, ast.Call):
                continue
            dotted = self.owner.imports.resolve(n.func)
            if dotted is not None and dotted.startswith("fcntl."):
                if self._mentions(n, "LOCK_UN"):
                    out.discard("fcntl")
                else:
                    out.add("fcntl")
                    self.fcntl_acquire = True
                    blocking = (
                        not self._mentions(n, "LOCK_NB")
                        and id(n) not in self.awaited
                    )
                    self.acquires.append(
                        {"token": "fcntl", "line": n.lineno, "blocking": blocking}
                    )
                continue
            func = n.func
            leaf = None
            if isinstance(func, ast.Attribute):
                leaf = func.attr
            elif isinstance(func, ast.Name):
                leaf = func.id
            if leaf is None:
                continue
            if RELEASE_NAME.search(leaf):
                if leaf == "release" and isinstance(func, ast.Attribute):
                    out.discard(f"with:{_unparse(func.value)}")
                else:
                    base = (
                        _unparse(func.value)
                        if isinstance(func, ast.Attribute)
                        else ""
                    )
                    out = {
                        t
                        for t in out
                        if not (
                            t.startswith("call:")
                            and call_token_base(t) == base
                        )
                    }
            elif ACQUIRE_NAME.search(leaf):
                blocking = id(n) not in self.awaited and not any(
                    kw.arg == "blocking"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in n.keywords
                )
                if leaf == "acquire" and isinstance(func, ast.Attribute):
                    token = f"with:{_unparse(func.value)}"
                    out.add(token)
                    self.acquires.append(
                        {"token": token, "line": n.lineno, "blocking": blocking}
                    )
                else:
                    # Acquire-named helper: real only if the graph
                    # resolves it to an fcntl acquirer (locks.py); no
                    # RPL203 site here -- the helper's own direct
                    # acquire is the site.
                    out.add(f"call:{_unparse(func)}")
        return frozenset(out)

    @staticmethod
    def _mentions(call: ast.Call, flag: str) -> bool:
        for node in ast.walk(call):
            if isinstance(node, ast.Attribute) and node.attr == flag:
                return True
            if isinstance(node, ast.Name) and node.id == flag:
                return True
        return False

    # -- seed provenance (taint-style backward slice) ------------------

    def _rng_site(self, call: ast.Call, dotted: str) -> None:
        seed = call.args[0] if call.args else None
        if seed is None:
            for kw in call.keywords:
                if kw.arg == "seed":
                    seed = kw.value
                    break
        if seed is None:
            return  # seedless construction is RPL002's finding
        ctor = dotted.rsplit(".", 1)[1]
        if ctor == "Generator" and isinstance(seed, ast.Call):
            inner = self.owner.imports.resolve(seed.func)
            if inner in _BITGENS:
                return  # the bit-generator call is its own site
        roots: Set[str] = set()
        self._classify(seed, roots, set())
        self.rng_sites.append(
            {
                "line": call.lineno,
                "ctor": ctor,
                "expr": _unparse(seed),
                "roots": sorted(roots),
                "const_key": self._const_key(seed),
            }
        )

    def _classify(
        self, expr: ast.expr, out: Set[str], visited: Set[str]
    ) -> None:
        if isinstance(expr, ast.Constant):
            out.add("const")
        elif isinstance(expr, ast.Name):
            nid = expr.id
            if nid in self.params:
                out.add("param")
            elif nid in self.assignments:
                if nid not in visited:
                    visited.add(nid)
                    for value in self.assignments[nid]:
                        self._classify(value, out, visited)
            elif nid in CONSTLIKE_NAMES:
                out.add("const")
            elif SEEDISH.search(nid):
                out.add("derived")
            else:
                out.add(f"opaque:{nid}")
        elif isinstance(expr, ast.Attribute):
            if SEEDISH.search(expr.attr):
                out.add("derived")
            else:
                out.add(f"opaque:{expr.attr}")
        elif isinstance(expr, ast.Call):
            self._classify_call(expr, out, visited)
        elif isinstance(expr, ast.BinOp):
            self._classify(expr.left, out, visited)
            self._classify(expr.right, out, visited)
        elif isinstance(expr, ast.UnaryOp):
            self._classify(expr.operand, out, visited)
        elif isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self._classify(value, out, visited)
        elif isinstance(expr, ast.IfExp):
            self._classify(expr.body, out, visited)
            self._classify(expr.orelse, out, visited)
        elif isinstance(expr, ast.Subscript):
            self._classify(expr.value, out, visited)
        elif isinstance(expr, (ast.Tuple, ast.List)):
            for elt in expr.elts:
                self._classify(elt, out, visited)
        elif isinstance(expr, ast.Starred):
            self._classify(expr.value, out, visited)
        else:
            out.add("opaque:<expr>")

    def _classify_call(
        self, call: ast.Call, out: Set[str], visited: Set[str]
    ) -> None:
        func = call.func
        dotted = self.owner.imports.resolve(func)
        if dotted is not None and (
            dotted in BAD_SEED_SOURCES
            or dotted.startswith(BAD_SEED_PREFIXES)
        ):
            out.add(f"bad:{dotted}")
            return
        if isinstance(func, ast.Name):
            if func.id in BAD_SEED_SOURCES:
                out.add(f"bad:{func.id}")
                return
            if func.id in PASSTHROUGH_BUILTINS:
                for arg in call.args:
                    self._classify(arg, out, visited)
                return
            # A project helper: defer to graph resolution (seeds.py).
            out.add(f"helper:{func.id}")
            for arg in call.args:
                self._classify(arg, out, visited)
            return
        if dotted is not None:
            leaf = dotted.rsplit(".", 1)[1]
            if SEEDISH.search(leaf):
                out.add("derived")
            else:
                out.add(f"helper:{dotted}")
                for arg in call.args:
                    self._classify(arg, out, visited)
            return
        if isinstance(func, ast.Attribute):
            # Method call: derivation flows from the receiver and args
            # (``base.integers(...)`` on a seeded generator is derived).
            self._classify(func.value, out, visited)
            for arg in call.args:
                self._classify(arg, out, visited)
            return
        out.add("opaque:<call>")

    def _const_key(self, expr: ast.expr) -> Optional[str]:
        """Canonical text of a fully-constant derivation, else None."""

        def closed(node: ast.expr) -> bool:
            if isinstance(node, ast.Constant):
                return True
            if isinstance(node, ast.Call):
                if not isinstance(node.func, (ast.Name, ast.Attribute)):
                    return False
                return all(closed(a) for a in node.args) and all(
                    closed(kw.value) for kw in node.keywords
                )
            if isinstance(node, ast.BinOp):
                return closed(node.left) and closed(node.right)
            if isinstance(node, ast.UnaryOp):
                return closed(node.operand)
            if isinstance(node, (ast.Tuple, ast.List)):
                return all(closed(e) for e in node.elts)
            return False

        return _unparse(expr) if closed(expr) else None
