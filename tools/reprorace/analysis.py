"""Orchestration: shared facts -> graph -> contexts/locks -> race rules.

:func:`run_race` mirrors :func:`tools.reproflow.analysis.run_flow` and
shares its fact-gathering front half (same project loader, same
content-hash facts cache, same ``src/`` scope), then builds the race
model -- inferred execution contexts, canonical locksets, the must-hold
entry meet -- and runs RPL201-RPL204.  Findings are ordinary reprolint
``Finding``s, so the merged ``--race`` CLI mode reuses the reporters,
suppressions, baseline, and exit codes unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from tools.reprolint.engine import Finding, apply_suppressions
from tools.reproflow.analysis import gather_facts
from tools.reproflow.graph import CallGraph, build_graph

from tools.reprorace.contexts import ContextMap, infer_contexts
from tools.reprorace.locks import call_locks_map, entry_locks
from tools.reprorace.rules import ALL_RACE_RULES, RaceModel


@dataclass
class RaceResult:
    """Outcome of one race run: findings plus the analysis artifacts."""

    findings: List[Finding]
    parse_errors: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    graph: Optional[CallGraph] = None
    contexts: Optional[ContextMap] = None
    model: Optional[RaceModel] = None
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def stats(self) -> Dict[str, int]:
        """The additive ``"race"`` section of the JSON payload."""
        counts = {c: 0 for c in ("main", "async", "worker", "child")}
        for per_fn in (self.contexts or {}).values():
            for context in per_fn:
                counts[context] += 1
        edges = (
            sum(len(v) for v in self.graph.edges.values()) if self.graph else 0
        )
        return {
            "functions": len(self.graph.functions) if self.graph else 0,
            "edges": edges,
            "main_functions": counts["main"],
            "async_functions": counts["async"],
            "worker_functions": counts["worker"],
            "child_functions": counts["child"],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


def build_race_model(all_facts: Sequence[dict], graph: CallGraph) -> RaceModel:
    """Contexts + canonical locksets + entry meet + import members."""
    contexts = infer_contexts(graph)
    call_locks = call_locks_map(graph)
    entry = entry_locks(graph, call_locks)
    members = {
        facts["module"]: dict(facts["imports"]["members"])
        for facts in all_facts
    }
    return RaceModel(
        graph=graph,
        contexts=contexts,
        entry=entry,
        call_locks=call_locks,
        members=members,
    )


def run_race(
    root,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
    paths: Optional[Sequence[str]] = None,
) -> RaceResult:
    """Run the race/determinism analysis over ``src/`` under ``root``."""
    project, parse_errors, all_facts, hits, misses = gather_facts(
        root, use_cache=use_cache, cache_dir=cache_dir, paths=paths
    )
    graph = build_graph(all_facts)
    model = build_race_model(all_facts, graph)

    rule_classes = list(ALL_RACE_RULES)
    if select:
        wanted = set(select)
        rule_classes = [r for r in rule_classes if r.code in wanted]
    if ignore:
        unwanted = set(ignore)
        rule_classes = [r for r in rule_classes if r.code not in unwanted]

    raw: List[Finding] = []
    for cls in rule_classes:
        raw.extend(cls().check(model))
    raw = list(dict.fromkeys(raw))
    kept, suppressed = apply_suppressions(project, raw)

    return RaceResult(
        findings=kept,
        parse_errors=parse_errors,
        suppressed=suppressed,
        files_scanned=len(project.files),
        graph=graph,
        contexts=model.contexts,
        model=model,
        cache_hits=hits,
        cache_misses=misses,
    )
