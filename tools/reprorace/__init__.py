"""repro-race: concurrency-context lockset analysis + seed provenance.

The third tier of the static-analysis stack.  Where
:mod:`tools.reprolint` checks one file at a time and
:mod:`tools.reproflow` proves reachability of *effects*, repro-race
proves three concurrency/determinism properties over the same call
graph and facts cache:

1. **Context inference** (`contexts.py`) -- every function is
   classified by the execution contexts that can reach it (``main``
   process, ``async`` task, forked ``worker`` payload, post-fork
   ``child`` initializer) by propagating context seeds along call
   edges, with fork-isolation semantics: a worker's copy-on-write
   globals are private, so only pre-fork-shared channels (the store
   file, returned payloads) can conflict across the fork boundary.

2. **Lockset analysis** (`extract.py` regions + `locks.py`
   interprocedural meet) -- guard regions are tracked syntactically
   (``with`` blocks over lock-ish objects, ``fcntl`` acquire/release
   bracketing, ``.acquire()``/``.release()`` pairs) and the set of
   locks *guaranteed held at function entry* is the intersection of
   held-lock sets over every call path, with witness chains exactly
   like reproflow's write-once effect provenance.

3. **Seed-provenance dataflow** (`seeds.py`) -- a taint-style
   per-function backward slice over every RNG construction site,
   resolved through helper functions via the call graph: each seed
   argument must flow from a whitelisted derivation root (a parameter,
   a ``seed``/``salt``-named field or derivation call, a constant) and
   never from entropy the run cannot replay (``os.getpid``, clocks,
   ``hash()``); fully-constant derivations are cross-checked for
   sibling-shard collisions.

Rules (RPL201-RPL204, `rules.py`) ride reprolint's reporters,
suppressions, shrink-only baseline, and exit codes via
``python -m tools.reprolint --race`` (also ``python -m repro lint
--race``).  Everything is stdlib-only.

Layering: :mod:`tools.reproflow.extract` calls into
:mod:`tools.reprorace.extract` so the per-file race facts share the
one content-hash facts cache; this package's analysis layers import
reproflow's graph/analysis, and :mod:`tools.reprorace.extract` imports
only reprolint + stdlib, so there is no cycle.
"""
