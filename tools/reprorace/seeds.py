"""Cross-file seed-provenance resolution (the RPL204 back end).

The extractor reduces every RNG construction site to a set of
*derivation roots* for its seed argument:

``derived``       a ``seed``/``salt``-named field or derivation call
``param``         a function parameter (the caller chose the seed)
``const``         a literal constant (replayable; collision-checked)
``helper:<name>`` a project function call -- resolved here via the
                  call graph to its own return-slice classification
``bad:<dotted>``  entropy a rerun cannot replay (``os.getpid``,
                  clocks, ``uuid``, ``hash()``...)
``opaque:<name>`` anything the slice cannot see through

A site is **derived** iff it has no ``bad`` root and at least one of:
a ``derived``/``param`` root, a helper that the graph proves returns a
derived value, or an all-constant slice.  Helper proof is a fixed
point over every function's ``seed_return`` classification, so a seed
derived *through* ``stable_seed``/``derived_seed``-style helpers (or a
chain of them) resolves without any name whitelist -- and a
``_pid_seed()`` helper that actually returns ``os.getpid()`` fails the
proof no matter how reassuring its name is.  Only an *unresolvable*
call falls back to the seed-ish-name heuristic (external libraries).

Collisions: two distinct sites whose seed slices are closed constant
expressions with identical canonical text would hand sibling shards the
same stream; each such site is flagged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from tools.reproflow.graph import CallGraph

from tools.reprorace.extract import SEEDISH

#: module -> {imported name -> dotted target}, from per-file facts.
Members = Dict[str, Dict[str, str]]


def resolve_helper(
    graph: CallGraph, members: Members, module: str, name: str
) -> Optional[str]:
    """Resolve a helper tag to a project function qualname, if any."""
    for candidate in (
        name if "." in name else None,
        f"{module}.{name}" if "." not in name else None,
    ):
        if candidate is None:
            continue
        seen: Set[str] = set()
        while candidate is not None and candidate not in seen:
            seen.add(candidate)
            if candidate in graph.functions:
                return candidate
            prefix, _, leaf = candidate.rpartition(".")
            candidate = members.get(prefix, {}).get(leaf)
    if "." not in name:
        target = members.get(module, {}).get(name)
        if target is not None:
            return resolve_helper(graph, members, module, target)
    return None


def _roots_derived(
    roots,
    graph: CallGraph,
    members: Members,
    module: str,
    derived: Set[str],
) -> Tuple[bool, str]:
    """(is_derived, reason-if-not)."""
    bad = sorted(r[4:] for r in roots if r.startswith("bad:"))
    if bad:
        return False, f"seeded from unreplayable entropy ({', '.join(bad)})"
    if "derived" in roots or "param" in roots:
        return True, ""
    helpers = [r[7:] for r in roots if r.startswith("helper:")]
    for helper in helpers:
        qualname = resolve_helper(graph, members, module, helper)
        if qualname is not None:
            if qualname in derived:
                return True, ""
        elif SEEDISH.search(helper.rsplit(".", 1)[-1]):
            return True, ""  # unresolvable but seed-ish: external deriver
    if roots and all(r == "const" for r in roots):
        return True, ""
    opaque = sorted(r[7:] for r in roots if r.startswith("opaque:"))
    detail = f" (opaque: {', '.join(opaque)})" if opaque else ""
    return False, f"no seeded derivation root{detail}"


def derived_returners(graph: CallGraph, members: Members) -> Set[str]:
    """Fixed point: functions whose return slice is itself derived."""
    derived: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for qualname, race in graph.race.items():
            if qualname in derived:
                continue
            seed_return = race.get("seed_return")
            if not seed_return:
                continue
            node = graph.functions.get(qualname)
            if node is None:
                continue
            ok, _ = _roots_derived(
                seed_return["roots"], graph, members, node.module, derived
            )
            if ok:
                derived.add(qualname)
                changed = True
    return derived


def seed_findings(
    graph: CallGraph, members: Members
) -> Tuple[List[dict], List[dict]]:
    """(underived sites, collision sites) for RPL204.

    Each underived entry: ``{qualname, line, expr, reason}``.  Each
    collision entry: ``{qualname, line, expr, others: [(qualname,
    line), ...]}`` -- one entry per colliding site.
    """
    derived = derived_returners(graph, members)
    underived: List[dict] = []
    by_const_key: Dict[str, List[dict]] = {}
    for qualname, race in sorted(graph.race.items()):
        node = graph.functions.get(qualname)
        if node is None or not node.path.startswith("src/"):
            continue
        for site in race.get("rng_sites", ()):
            ok, reason = _roots_derived(
                site["roots"], graph, members, node.module, derived
            )
            record = {
                "qualname": qualname,
                "line": site["line"],
                "expr": site["expr"],
            }
            if not ok:
                underived.append(dict(record, reason=reason))
            elif site.get("const_key") is not None:
                by_const_key.setdefault(site["const_key"], []).append(record)
    collisions: List[dict] = []
    for _key, sites in sorted(by_const_key.items()):
        distinct = {(s["qualname"], s["line"]) for s in sites}
        if len(distinct) < 2:
            continue
        for site in sites:
            others = sorted(
                d for d in distinct if d != (site["qualname"], site["line"])
            )
            collisions.append(dict(site, others=others))
    return underived, collisions
