"""The repro-race rule registry: ``RPL2xx`` concurrency/determinism gates.

Race rules consume a prebuilt :class:`RaceModel` (call graph + inferred
contexts + canonical locksets + import members) and yield ordinary
reprolint ``Finding``s, so suppressions, the shrink-only baseline, the
reporters, and the exit codes all apply unchanged.  Every finding
carries a witness chain: a context chain proving how a concurrent
context reaches the site, or a call chain proving a lock-free path.

Concurrency pairing (fork semantics): only the ``main`` x ``async``
pair can conflict on module/class state.  ``worker`` and ``child``
contexts run in forked processes whose globals are copy-on-write
private -- the only channels that cross the fork are the store file
(RPL202's domain) and returned payloads (RPL104's) -- and the asyncio
event loop is single-threaded, so two ``async`` reaches of the same
state interleave only at awaits and are ordered by the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from tools.reprolint.engine import ChainHop, Finding
from tools.reproflow.effects import short_name
from tools.reproflow.graph import CallGraph

from tools.reprorace.contexts import ContextMap, context_chain
from tools.reprorace.locks import (
    EMPTY,
    canonicalize,
    unlocked_chain,
)
from tools.reprorace.seeds import Members, seed_findings

SCOPE = "src/"


@dataclass
class RaceModel:
    """Everything a race rule needs, computed once per run."""

    graph: CallGraph
    contexts: ContextMap
    #: Locks guaranteed held at each function entry (must-hold meet).
    entry: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: Canonical locks held at each call line, per function.
    call_locks: Dict[str, Dict[int, FrozenSet[str]]] = field(
        default_factory=dict
    )
    #: module -> {imported name -> dotted target}.
    members: Members = field(default_factory=dict)

    def site_locks(self, qualname: str, tokens) -> FrozenSet[str]:
        return canonicalize(self.graph, qualname, tokens) | self.entry.get(
            qualname, EMPTY
        )


class RaceRule:
    """One concurrency/determinism invariant."""

    code: str = "RPL299"
    name: str = "unnamed"
    summary: str = ""

    def check(self, model: RaceModel) -> List[Finding]:
        raise NotImplementedError


@dataclass(frozen=True)
class _Access:
    qualname: str
    path: str
    kind: str  # "read" | "write"
    line: int
    locks: FrozenSet[str]


class UnguardedSharedStateRule(RaceRule):
    """Module/class state reachable from two concurrent contexts with at
    least one write and no lock both sides are guaranteed to hold."""

    code = "RPL201"
    name = "unguarded-shared-state"
    summary = (
        "no write/write or read/write pair on module/class state "
        "reachable from two concurrent contexts with an empty common "
        "lockset"
    )

    def check(self, model: RaceModel) -> List[Finding]:
        graph = model.graph
        by_state: Dict[str, List[_Access]] = {}
        for qualname, race in sorted(graph.race.items()):
            node = graph.functions.get(qualname)
            if node is None or not node.path.startswith(SCOPE):
                continue
            for name, kind, line, locks in race.get("accesses", ()):
                by_state.setdefault(name, []).append(
                    _Access(
                        qualname=qualname,
                        path=node.path,
                        kind=kind,
                        line=line,
                        locks=model.site_locks(qualname, locks),
                    )
                )
        findings: List[Finding] = []
        reported = set()
        for state, sites in sorted(by_state.items()):
            if not any(s.kind == "write" for s in sites):
                continue
            main_side = [
                s
                for s in sites
                if "main" in model.contexts.get(s.qualname, ())
            ]
            async_side = [
                s
                for s in sites
                if "async" in model.contexts.get(s.qualname, ())
            ]
            for a_site in async_side:
                for m_site in main_side:
                    if a_site.kind == "read" and m_site.kind == "read":
                        continue
                    if a_site.locks & m_site.locks:
                        continue
                    key = (state, a_site.qualname, a_site.line)
                    if key in reported:
                        continue
                    reported.add(key)
                    hops = context_chain(
                        graph,
                        model.contexts,
                        a_site.qualname,
                        "async",
                        site_line=a_site.line,
                        site_note=f"{a_site.kind}s {state}",
                    )
                    hops.append(
                        ChainHop(
                            function=m_site.qualname,
                            path=m_site.path,
                            line=m_site.line,
                            note=(
                                f"conflicting {m_site.kind} from the main "
                                "context"
                            ),
                        )
                    )
                    findings.append(
                        Finding(
                            code=self.code,
                            path=a_site.path,
                            line=a_site.line,
                            col=0,
                            message=(
                                f"{a_site.kind} of shared state '{state}' "
                                "from an asyncio task races the "
                                f"{m_site.kind} in "
                                f"{short_name(m_site.qualname)} "
                                f"({m_site.path}:{m_site.line}) with no "
                                "common lock; guard both sides or move "
                                "the state into the task"
                            ),
                            chain=tuple(hops),
                        )
                    )
                    break
        return findings


class StoreRegionRule(RaceRule):
    """Every store-file append must happen inside an fcntl-guarded
    region -- held at the site or guaranteed by every caller (the
    must-hold entry meet), not merely reachable somewhere in the
    subtree as RPL103 checks."""

    code = "RPL202"
    name = "store-unguarded-region"
    summary = (
        "store-file appends execute inside an fcntl-guarded region "
        "(held at the site or on every call path)"
    )

    def check(self, model: RaceModel) -> List[Finding]:
        graph = model.graph
        findings: List[Finding] = []
        for qualname, race in sorted(graph.race.items()):
            node = graph.functions.get(qualname)
            if node is None or not node.path.startswith(SCOPE):
                continue
            for line, detail, locks in race.get("store_ops", ()):
                if "fcntl" in model.site_locks(qualname, locks):
                    continue
                hops = unlocked_chain(
                    graph, model.entry, model.call_locks, qualname, "fcntl"
                )
                hops.append(
                    ChainHop(
                        function=qualname,
                        path=node.path,
                        line=line,
                        note=f"{detail} outside any fcntl region",
                    )
                )
                findings.append(
                    Finding(
                        code=self.code,
                        path=node.path,
                        line=line,
                        col=0,
                        message=(
                            f"store write ({detail}) outside an "
                            "fcntl-guarded region: no lock is held at the "
                            "site and at least one call path never "
                            "acquires it; bracket the write with the "
                            "store lock"
                        ),
                        chain=tuple(hops),
                    )
                )
        return findings


class AsyncBlockingLockRule(RaceRule):
    """A blocking lock acquisition reachable from an asyncio context
    stalls every task on the loop (the micro-batching window timer
    included) until the lock frees -- starvation at best, deadlock if
    the holder needs the loop to progress."""

    code = "RPL203"
    name = "async-blocking-lock"
    summary = (
        "no blocking lock acquisition (fcntl or .acquire()) reachable "
        "from an asyncio context"
    )

    def check(self, model: RaceModel) -> List[Finding]:
        graph = model.graph
        findings: List[Finding] = []
        for qualname, race in sorted(graph.race.items()):
            node = graph.functions.get(qualname)
            if node is None or not node.path.startswith(SCOPE):
                continue
            if "async" not in model.contexts.get(qualname, ()):
                continue
            for acquire in race.get("acquires", ()):
                if not acquire["blocking"]:
                    continue
                token = acquire["token"]
                label = (
                    "the store fcntl lock"
                    if token == "fcntl"
                    else f"'{token.split(':', 1)[1]}'"
                )
                hops = context_chain(
                    graph,
                    model.contexts,
                    qualname,
                    "async",
                    site_line=acquire["line"],
                    site_note=f"blocking acquire of {label}",
                )
                findings.append(
                    Finding(
                        code=self.code,
                        path=node.path,
                        line=acquire["line"],
                        col=0,
                        message=(
                            f"blocking acquisition of {label} is reachable "
                            "from an asyncio task and stalls the event "
                            "loop; acquire non-blockingly, await an "
                            "asyncio.Lock, or move the work to an executor"
                        ),
                        chain=tuple(hops),
                    )
                )
        return findings


class SeedProvenanceRule(RaceRule):
    """Every RNG seed must flow from a seeded derivation root, and no
    two shards may derive the same constant stream."""

    code = "RPL204"
    name = "seed-provenance"
    summary = (
        "every RNG seed derives from a seeded root (no unreplayable "
        "entropy, no constant collisions between sibling sites)"
    )

    def check(self, model: RaceModel) -> List[Finding]:
        graph = model.graph
        underived, collisions = seed_findings(graph, model.members)
        findings: List[Finding] = []
        for site in underived:
            node = graph.functions[site["qualname"]]
            hop = ChainHop(
                function=site["qualname"],
                path=node.path,
                line=site["line"],
                note=f"seed expression '{site['expr']}': {site['reason']}",
            )
            findings.append(
                Finding(
                    code=self.code,
                    path=node.path,
                    line=site["line"],
                    col=0,
                    message=(
                        f"RNG seed '{site['expr']}' in "
                        f"{short_name(site['qualname'])} has "
                        f"{site['reason']}; derive it from a config seed "
                        "via stable_seed/derived_seed"
                    ),
                    chain=(hop,),
                )
            )
        for site in collisions:
            node = graph.functions[site["qualname"]]
            other_q, other_line = site["others"][0]
            other_node = graph.functions[other_q]
            hops = (
                ChainHop(
                    function=site["qualname"],
                    path=node.path,
                    line=site["line"],
                    note=f"constant seed derivation '{site['expr']}'",
                ),
                ChainHop(
                    function=other_q,
                    path=other_node.path,
                    line=other_line,
                    note="sibling site derives the identical constant",
                ),
            )
            findings.append(
                Finding(
                    code=self.code,
                    path=node.path,
                    line=site["line"],
                    col=0,
                    message=(
                        f"RNG seed '{site['expr']}' collides with the "
                        f"identical constant derivation in "
                        f"{short_name(other_q)} ({other_node.path}:"
                        f"{other_line}): sibling shards would replay the "
                        "same stream; salt the derivation per shard"
                    ),
                    chain=hops,
                )
            )
        return findings


ALL_RACE_RULES: Tuple[type, ...] = (
    UnguardedSharedStateRule,
    StoreRegionRule,
    AsyncBlockingLockRule,
    SeedProvenanceRule,
)


def race_rules_by_code() -> Dict[str, type]:
    return {rule.code: rule for rule in ALL_RACE_RULES}
