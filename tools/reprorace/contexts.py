"""Context inference: which execution contexts can reach each function.

The context lattice is a powerset over four atoms:

``main``
    The parent process, outside any event loop -- seeded at call-graph
    roots (functions with no recorded callers that are not coroutines
    and not handed across a process boundary).

``async``
    An asyncio task on the (single-threaded) serve event loop -- seeded
    at every ``async def``.

``worker``
    A forked ``WorkerPool`` worker running a payload function -- seeded
    at the targets of reproflow's worker-payload facts
    (``run_sharded(shared, fn, ...)`` / ``pool.map(shared, fn, tasks)``).

``child``
    A pool child immediately post-fork/spawn, inside the
    ``initializer=`` callback -- seeded at pool-initializer targets.

Contexts propagate *forward* along call edges (if ``f`` runs in context
``c`` and calls ``g``, then ``g`` can run in ``c``) with write-once
provenance exactly like reproflow's effect propagation: the first
derivation of a (function, context) pair is recorded as either
``("seed", line, detail)`` or ``("via", caller, line)`` and never
overwritten, so every context claim unwinds to a finite acyclic witness
chain.

Fork-isolation semantics live in the *pairing* logic (rules.py), not
here: ``worker`` and ``child`` are real contexts, but their module
globals are copy-on-write private, so accesses from them never pair
with anything across the fork boundary -- only pre-fork-shared channels
(the store file, guarded by RPL202, and returned payloads) can
conflict.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from tools.reprolint.engine import ChainHop
from tools.reproflow.effects import short_name
from tools.reproflow.graph import CallGraph

CONTEXTS = ("main", "async", "worker", "child")

#: (function, context) provenance: ("seed", line, detail) or
#: ("via", caller, line).
Provenance = Tuple
ContextMap = Dict[str, Dict[str, Provenance]]


def infer_contexts(graph: CallGraph) -> ContextMap:
    """Fixed-point forward propagation of context seeds along edges."""
    contexts: ContextMap = {q: {} for q in graph.functions}
    worklist: deque = deque()

    def seed(qualname: str, context: str, prov: Provenance) -> None:
        if qualname in contexts and context not in contexts[qualname]:
            contexts[qualname][context] = prov
            worklist.append(qualname)

    for qualname, node in graph.functions.items():
        if node.is_async:
            seed(
                qualname,
                "async",
                ("seed", node.line, f"async def {node.name}"),
            )

    boundary_targets = set()
    for caller, target, line, via in graph.payloads:
        boundary_targets.add(target)
        if target in graph.functions:
            node = graph.functions[target]
            caller_node = graph.functions.get(caller)
            where = f"{caller_node.path}:{line}" if caller_node else f"line {line}"
            seed(
                target,
                "worker",
                ("seed", node.line, f"worker payload via {via} ({where})"),
            )
    for caller, target, line, via in graph.initializers:
        boundary_targets.add(target)
        if target in graph.functions:
            node = graph.functions[target]
            caller_node = graph.functions.get(caller)
            where = f"{caller_node.path}:{line}" if caller_node else f"line {line}"
            seed(
                target,
                "child",
                ("seed", node.line, f"pool initializer ({where})"),
            )

    for qualname, node in graph.functions.items():
        if (
            not graph.callers.get(qualname)
            and not node.is_async
            and qualname not in boundary_targets
        ):
            seed(
                qualname,
                "main",
                ("seed", node.line, f"'{node.name}' is a call-graph root"),
            )

    while worklist:
        caller = worklist.popleft()
        for callee, line, _note in graph.edges.get(caller, ()):
            if callee not in contexts:
                continue
            changed = False
            for context in contexts[caller]:
                if context not in contexts[callee]:
                    contexts[callee][context] = ("via", caller, line)
                    changed = True
            if changed:
                worklist.append(callee)
    return contexts


def context_chain(
    graph: CallGraph,
    contexts: ContextMap,
    qualname: str,
    context: str,
    site_line: Optional[int] = None,
    site_note: Optional[str] = None,
) -> List[ChainHop]:
    """Witness chain from a context seed down to ``qualname``.

    Acyclic and finite by the write-once provenance: each hop moves to
    the caller that *first* derived the context.  Optionally append a
    final hop at the flagged site inside ``qualname``.
    """
    hops_up: List[ChainHop] = []
    current = qualname
    while True:
        prov = contexts.get(current, {}).get(context)
        if prov is None:  # pragma: no cover - defensive
            break
        node = graph.functions[current]
        if prov[0] == "seed":
            hops_up.append(
                ChainHop(
                    function=current,
                    path=node.path,
                    line=prov[1],
                    note=prov[2],
                )
            )
            break
        _, caller, line = prov
        caller_node = graph.functions[caller]
        hops_up.append(
            ChainHop(
                function=caller,
                path=caller_node.path,
                line=line,
                note=f"calls {short_name(current)}",
            )
        )
        current = caller
    hops = list(reversed(hops_up))
    if site_line is not None:
        node = graph.functions[qualname]
        hops.append(
            ChainHop(
                function=qualname,
                path=node.path,
                line=site_line,
                note=site_note or "",
            )
        )
    return hops
