"""Interprocedural lockset analysis: must-hold sets and witness chains.

The per-function region interpreter (:mod:`tools.reprorace.extract`)
records which lock tokens are syntactically held at every access, call
site, and store op.  This module does the two cross-file steps:

**Token canonicalization.**  ``"call:<expr>"`` tokens are symbolic --
``self._acquire_lock()`` *might* be a lock acquisition, but only the
graph knows.  A call token is canonicalized to ``"fcntl"`` iff the
caller has an edge to a function whose race facts record a direct
``fcntl`` acquire (``fcntl_acquire``); otherwise the token is dropped
(a helper named "acquire" that never locks guards nothing).

**Must-hold entry meet.**  The set of locks *guaranteed* held when a
function runs is the intersection over every call path:

    entry(f) = iimin over callers c of f:  entry(c) | held_at_callsite(c -> f)

with ``entry(root) = {}``.  This is a meet-over-all-paths fixed point
initialized at top (the universe of canonical locks) and iterated until
stable; sets only shrink, so it terminates.  A site is guarded iff the
lock is in ``site_locks | entry(function)``.

Witness chains for an *unguarded* site walk upward choosing, at each
step, a caller path on which the lock is not held -- by the meet's
definition at least one exists -- and stop at a root or a cycle,
yielding a finite root-first chain like reproflow's effect provenance.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from tools.reprolint.engine import ChainHop
from tools.reproflow.effects import short_name
from tools.reproflow.graph import CallGraph

from tools.reprorace.extract import call_token_base

EMPTY: FrozenSet[str] = frozenset()


def _resolves_to_fcntl(graph: CallGraph, caller: str, token: str) -> bool:
    text = token.split(":", 1)[1]
    leaf = text.rsplit(".", 1)[-1]
    for callee, _line, _note in graph.edges.get(caller, ()):
        if callee.rsplit(".", 1)[-1] == leaf and graph.race.get(callee, {}).get(
            "fcntl_acquire"
        ):
            return True
    return False


def canonicalize(
    graph: CallGraph, qualname: str, tokens
) -> FrozenSet[str]:
    """Resolve symbolic call tokens against the graph; drop dead ones."""
    out = set()
    for token in tokens:
        if token.startswith("call:"):
            if _resolves_to_fcntl(graph, qualname, token):
                out.add("fcntl")
        else:
            out.add(token)
    return frozenset(out)


def call_locks_map(graph: CallGraph) -> Dict[str, Dict[int, FrozenSet[str]]]:
    """Canonical held-lock sets at each call line, per function."""
    out: Dict[str, Dict[int, FrozenSet[str]]] = {}
    for qualname, race in graph.race.items():
        raw = race.get("call_locks")
        if not raw:
            continue
        out[qualname] = {
            int(line): canonicalize(graph, qualname, tokens)
            for line, tokens in raw.items()
        }
    return out


def entry_locks(
    graph: CallGraph, call_locks: Dict[str, Dict[int, FrozenSet[str]]]
) -> Dict[str, FrozenSet[str]]:
    """Meet-over-all-paths: locks guaranteed held at each function entry."""
    universe = set()
    for per_line in call_locks.values():
        for held in per_line.values():
            universe |= held
    top = frozenset(universe)

    # Boundary targets start fresh in their new process, whatever their
    # spawner held -- the lock fd does not cross the fork usefully.
    boundary = {
        target for _c, target, _l, _v in graph.payloads + graph.initializers
    }

    entry: Dict[str, FrozenSet[str]] = {}
    for qualname in graph.functions:
        if qualname in boundary or not graph.callers.get(qualname):
            entry[qualname] = EMPTY
        else:
            entry[qualname] = top

    changed = True
    while changed:
        changed = False
        for qualname in graph.functions:
            if qualname in boundary:
                continue
            callers = graph.callers.get(qualname)
            if not callers:
                continue
            new: Optional[FrozenSet[str]] = None
            for caller, line in callers:
                if caller not in graph.functions:
                    continue
                held = entry.get(caller, EMPTY) | call_locks.get(caller, {}).get(
                    line, EMPTY
                )
                new = held if new is None else (new & held)
            if new is None:
                new = EMPTY
            if new != entry[qualname]:
                entry[qualname] = new
                changed = True
    return entry


def unlocked_chain(
    graph: CallGraph,
    entry: Dict[str, FrozenSet[str]],
    call_locks: Dict[str, Dict[int, FrozenSet[str]]],
    qualname: str,
    lock: str,
) -> List[ChainHop]:
    """Root-first witness of one call path on which ``lock`` is unheld.

    At each step pick a caller whose own entry set plus the locks held
    at the call site do not include ``lock``; the entry meet guarantees
    one exists whenever ``lock not in entry[qualname]``.  A seen-set
    makes the walk finite on recursive graphs.
    """
    steps: List[ChainHop] = []
    seen = {qualname}
    current = qualname
    while True:
        callers = graph.callers.get(current)
        if not callers:
            break
        chosen = None
        for caller, line in sorted(callers):
            if caller in seen or caller not in graph.functions:
                continue
            held = entry.get(caller, EMPTY) | call_locks.get(caller, {}).get(
                line, EMPTY
            )
            if lock not in held:
                chosen = (caller, line)
                break
        if chosen is None:
            break
        caller, line = chosen
        steps.append(
            ChainHop(
                function=caller,
                path=graph.functions[caller].path,
                line=line,
                note=f"calls {short_name(current)} without the lock",
            )
        )
        seen.add(caller)
        current = caller
    steps.reverse()
    return steps
