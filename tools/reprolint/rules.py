"""The repro-lint rule registry: stable ``RPLxxx`` codes, one invariant each.

Every rule protects a reproducibility contract the repo's tests rely on
(see ``docs/linting.md`` for the catalog with rationale).  Rules are
stateless per run except the cross-file oracle-contract rule, which
collects during :meth:`Rule.check_file` and reports in
:meth:`Rule.finalize`.

All checks are AST-based: a string literal or docstring that merely
mentions ``time.sleep`` never trips a rule (the advantage over the
regex scan this framework supersedes).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.reprolint.engine import FileContext, Finding, Project

# -- shared AST helpers -------------------------------------------------------


class ImportMap:
    """Resolve names in one module back to the modules they came from.

    ``import numpy as np`` makes ``np`` an alias for ``numpy``;
    ``from time import sleep as zz`` makes ``zz`` an alias for
    ``time.sleep``.  :meth:`resolve` turns an expression like
    ``np.random.rand`` into the dotted name ``numpy.random.rand`` --
    and leaves names it cannot trace to an import unresolved, so a
    local variable that happens to be called ``random`` never
    false-positives.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.modules: Dict[str, str] = {}
        self.members: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.members[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted module path of an expression, or None if untraceable."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.members:
            root = self.members[base]
        elif base in self.modules:
            root = self.modules[base]
        else:
            return None
        return ".".join([root] + list(reversed(parts)))


def call_name(node: ast.Call, imports: ImportMap) -> Optional[str]:
    """The dotted import-resolved name a call targets, if traceable."""
    return imports.resolve(node.func)


def _iteration_sites(tree: ast.AST) -> List[Tuple[ast.AST, ast.expr]]:
    """Every ``for``-loop / comprehension iterable in the tree."""
    sites: List[Tuple[ast.AST, ast.expr]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            sites.append((node, node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                sites.append((node, generator.iter))
    return sites


# -- rule base ----------------------------------------------------------------


class Rule:
    """One invariant check.  Subclasses set the metadata and override
    :meth:`check_file` (per-file) and/or :meth:`finalize` (cross-file)."""

    code: str = "RPL999"
    name: str = "unnamed"
    summary: str = ""
    #: Path prefixes (repo-relative, posix) this rule scans.
    scope: Tuple[str, ...] = ("src/",)
    #: Exact repo-relative paths exempt from the rule (the sanctioned
    #: home of whatever the rule bans elsewhere).
    exempt: Tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        return any(rel.startswith(p) for p in self.scope) and rel not in self.exempt

    def check_file(self, ctx: FileContext) -> List[Finding]:
        return []

    def finalize(self, project: Project) -> List[Finding]:
        return []


# -- RPL001: wall-clock discipline --------------------------------------------


class WallClockRule(Rule):
    code = "RPL001"
    name = "wall-clock"
    summary = (
        "no wall-clock/sleep calls outside serve/clock.py; tests drive "
        "time through VirtualClock"
    )
    scope = ("src/", "tests/")
    exempt = ("src/repro/serve/clock.py",)

    BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "time.sleep",
            "time.localtime",
            "time.gmtime",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        imports = ImportMap(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = call_name(node, imports)
            if target in self.BANNED:
                where = (
                    "tests must advance a VirtualClock"
                    if ctx.rel.startswith("tests/")
                    else "library time flows through the injected clock "
                    "(repro.serve.clock)"
                )
                findings.append(
                    ctx.finding(
                        self.code,
                        node,
                        f"wall-clock call {target}(); {where}",
                    )
                )
        return findings


# -- RPL002: seeded randomness ------------------------------------------------


class UnseededRandomnessRule(Rule):
    code = "RPL002"
    name = "unseeded-randomness"
    summary = (
        "no random-module calls, legacy np.random API, or seedless "
        "default_rng() in the library"
    )
    scope = ("src/",)

    #: numpy.random attributes that are types/infrastructure, not the
    #: stateful legacy sampling API.
    NUMPY_OK = frozenset(
        {"Generator", "BitGenerator", "SeedSequence", "PCG64", "Philox", "MT19937", "SFC64"}
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        imports = ImportMap(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = call_name(node, imports)
            if target is None:
                continue
            if target.startswith("random."):
                findings.append(
                    ctx.finding(
                        self.code,
                        node,
                        f"{target}() uses the global stdlib RNG; take an "
                        "explicit seed/Generator via repro.utils.rng.ensure_rng",
                    )
                )
            elif target == "numpy.random.default_rng":
                if self._unseeded(node):
                    findings.append(
                        ctx.finding(
                            self.code,
                            node,
                            "default_rng() without a seed draws OS entropy; "
                            "results become unreproducible",
                        )
                    )
            elif target.startswith("numpy.random."):
                leaf = target.rsplit(".", 1)[1]
                if leaf not in self.NUMPY_OK:
                    findings.append(
                        ctx.finding(
                            self.code,
                            node,
                            f"legacy numpy.random.{leaf}() uses hidden global "
                            "state; use a seeded Generator",
                        )
                    )
        return findings

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        seeds = list(node.args) + [
            kw.value for kw in node.keywords if kw.arg in (None, "seed")
        ]
        if not seeds:
            return True
        first = seeds[0]
        return isinstance(first, ast.Constant) and first.value is None


# -- RPL003: deterministic iteration in hot paths -----------------------------


class SetIterationRule(Rule):
    code = "RPL003"
    name = "set-iteration"
    summary = (
        "no iteration over sets or unsorted dict keys()/values() in the "
        "decoder/graph/core hot paths"
    )
    scope = ("src/repro/decoders/", "src/repro/graph/", "src/repro/core/")

    def check_file(self, ctx: FileContext) -> List[Finding]:
        findings = []
        for scope_node in self._scopes(ctx.tree):
            set_names = self._set_names(scope_node)
            for holder, iterable in _iteration_sites(scope_node):
                if self._in_nested_scope(scope_node, holder):
                    continue
                if self._is_set_expr(iterable, set_names):
                    findings.append(
                        ctx.finding(
                            self.code,
                            iterable,
                            "iterating a set: hash order is not a "
                            "reproducibility contract (the PR 4 bug class); "
                            "sort first, or mark the aggregation-only site "
                            "with '# reprolint: disable=RPL003 -- why'",
                        )
                    )
                elif self._is_unsorted_dict_view(iterable):
                    findings.append(
                        ctx.finding(
                            self.code,
                            iterable,
                            "iterating dict .keys()/.values() unsorted in a "
                            "hot path; wrap in sorted() or mark the "
                            "order-independent site with "
                            "'# reprolint: disable=RPL003 -- why'",
                        )
                    )
        return findings

    # Scope handling: each function (and the module body) tracks its own
    # set-typed names; nested function bodies are scanned as their own
    # scopes, not their parent's.

    @staticmethod
    def _scopes(tree: ast.AST) -> List[ast.AST]:
        return [tree] + [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    @staticmethod
    def _in_nested_scope(scope_node: ast.AST, holder: ast.AST) -> bool:
        for node in ast.walk(scope_node):
            if node is scope_node:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(inner is holder for inner in ast.walk(node)):
                    return True
        return False

    def _set_names(self, scope_node: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(scope_node):
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and isinstance(node.target, ast.Name)
                and self._is_set_expr(node.value, names)
            ):
                names.add(node.target.id)
        return names

    def _is_set_expr(self, node: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_set_expr(node.func.value, set_names)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        return False

    @staticmethod
    def _is_unsorted_dict_view(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "values")
            and not node.args
            and not node.keywords
        )


# -- RPL004: knob discipline --------------------------------------------------


class KnobDisciplineRule(Rule):
    code = "RPL004"
    name = "knob-discipline"
    summary = (
        "os.environ/os.getenv confined to eval/knobs.py -- every tunable "
        "goes through the KnobRegistry precedence rule"
    )
    scope = ("src/",)
    exempt = ("src/repro/eval/knobs.py",)

    BANNED = frozenset({"os.environ", "os.getenv", "os.putenv", "os.unsetenv"})

    def check_file(self, ctx: FileContext) -> List[Finding]:
        imports = ImportMap(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Attribute, ast.Name)):
                target = imports.resolve(node)
                if target in self.BANNED:
                    findings.append(
                        ctx.finding(
                            self.code,
                            node,
                            f"direct {target} access; register the tunable "
                            "in repro.eval.knobs.CORE_KNOBS and resolve it "
                            "through the registry (CLI > env > spec > default)",
                        )
                    )
        return findings


# -- RPL005: store lock discipline --------------------------------------------


class StoreLockRule(Rule):
    code = "RPL005"
    name = "store-lock"
    summary = (
        "fcntl locking and append-mode writes confined to eval/store.py's "
        "locked helpers (multi-writer race detector)"
    )
    scope = ("src/",)
    exempt = ("src/repro/eval/store.py",)

    def check_file(self, ctx: FileContext) -> List[Finding]:
        imports = ImportMap(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "fcntl" or alias.name.startswith("fcntl."):
                        findings.append(
                            ctx.finding(
                                self.code,
                                node,
                                "fcntl outside the store: file locking "
                                "belongs to ExperimentStore's helpers",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "fcntl":
                    findings.append(
                        ctx.finding(
                            self.code,
                            node,
                            "fcntl outside the store: file locking belongs "
                            "to ExperimentStore's helpers",
                        )
                    )
            elif isinstance(node, ast.Call):
                findings.extend(self._check_open(ctx, node, imports))
        return findings

    def _check_open(
        self, ctx: FileContext, node: ast.Call, imports: ImportMap
    ) -> List[Finding]:
        target = call_name(node, imports)
        is_builtin_open = isinstance(node.func, ast.Name) and node.func.id == "open"
        is_method_open = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "open"
        )
        if is_builtin_open or target == "io.open" or is_method_open:
            mode = self._mode_argument(node, second=is_builtin_open or target == "io.open")
            if mode is not None and "a" in mode:
                return [
                    ctx.finding(
                        self.code,
                        node,
                        f"append-mode open ({mode!r}) outside the store: "
                        "concurrent writers need the fcntl-locked "
                        "ExperimentStore append path",
                    )
                ]
        if target == "os.open":
            for arg in ast.walk(node):
                if isinstance(arg, ast.Attribute) and arg.attr == "O_APPEND":
                    return [
                        ctx.finding(
                            self.code,
                            node,
                            "os.open(..., O_APPEND) outside the store: "
                            "concurrent appends need the locked store path",
                        )
                    ]
        return []

    @staticmethod
    def _mode_argument(node: ast.Call, second: bool) -> Optional[str]:
        position = 1 if second else 0
        if len(node.args) > position:
            candidate = node.args[position]
            if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
                return candidate.value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, str
            ):
                return kw.value.value
        return None


# -- RPL006: non-blocking event loop ------------------------------------------


class AsyncBlockingRule(Rule):
    code = "RPL006"
    name = "async-blocking"
    summary = (
        "no blocking calls (sleep, sync file I/O, subprocess, sync "
        "sockets) inside async def bodies"
    )
    scope = ("src/",)

    BANNED_EXACT = frozenset(
        {
            "time.sleep",
            "os.system",
            "os.popen",
            "os.wait",
            "socket.socket",
            "socket.create_connection",
        }
    )
    BANNED_PREFIX = ("subprocess.", "urllib.request.", "requests.", "os.spawn")
    BLOCKING_METHODS = frozenset(
        {"read_text", "write_text", "read_bytes", "write_bytes"}
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        imports = ImportMap(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for call in self._async_body_calls(node):
                    message = self._blocking_reason(call, imports)
                    if message:
                        findings.append(
                            ctx.finding(
                                self.code,
                                call,
                                f"{message} inside 'async def {node.name}' "
                                "blocks the serve event loop; use the "
                                "injected clock / asyncio APIs or hand off "
                                "to an executor",
                            )
                        )
        return findings

    @staticmethod
    def _async_body_calls(func: ast.AsyncFunctionDef) -> List[ast.Call]:
        """Calls lexically in this async body only: nested defs are
        skipped -- sync helpers may run in an executor, and nested async
        defs are visited as their own functions by the outer walk."""
        calls: List[ast.Call] = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(child, ast.Call):
                    calls.append(child)
                visit(child)

        visit(func)
        return calls

    def _blocking_reason(
        self, call: ast.Call, imports: ImportMap
    ) -> Optional[str]:
        target = call_name(call, imports)
        if target in self.BANNED_EXACT:
            return f"blocking call {target}()"
        if target and target.startswith(self.BANNED_PREFIX):
            return f"blocking call {target}()"
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            return "sync file open()"
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in self.BLOCKING_METHODS
        ):
            return f"sync file .{call.func.attr}()"
        return None


# -- RPL007: Reference* oracle contract ---------------------------------------


class OracleContractRule(Rule):
    code = "RPL007"
    name = "oracle-contract"
    summary = (
        "every class overriding decode_uniques/predecode_uniques needs a "
        "Reference* oracle (or the retained per-shot reference loop) and "
        "an equivalence test referencing both"
    )
    scope = ("src/",)
    #: The abstract interfaces *declare* the hooks; they are the
    #: contract, not an engine.
    DECLARING_FILE = "src/repro/decoders/base.py"
    HOOKS = frozenset({"decode_uniques", "predecode_uniques"})
    FALLBACK_ORACLE = "decode_batch_reference"

    def finalize(self, project: Project) -> List[Finding]:
        engines: List[Tuple[str, FileContext, ast.ClassDef]] = []
        oracles: Dict[str, str] = {}  # engine class name -> Reference class
        for ctx in project.by_prefix("src/"):
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = [b.id for b in node.bases if isinstance(b, ast.Name)] + [
                    b.attr for b in node.bases if isinstance(b, ast.Attribute)
                ]
                if node.name.startswith("Reference"):
                    for base in bases:
                        oracles[base] = node.name
                    continue
                methods = {
                    stmt.name
                    for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                if methods & self.HOOKS and ctx.rel != self.DECLARING_FILE:
                    engines.append((node.name, ctx, node))

        test_files = project.by_prefix("tests/")
        findings: List[Finding] = []
        for name, ctx, node in engines:
            oracle = oracles.get(name)
            required = oracle if oracle is not None else self.FALLBACK_ORACLE
            if oracle is None and not self._mentioned_together(
                test_files, name, required
            ):
                findings.append(
                    ctx.finding(
                        self.code,
                        node,
                        f"{name} overrides a vectorized *_uniques hook but "
                        "has no Reference* oracle subclass and no test "
                        f"checking it against {self.FALLBACK_ORACLE}(); add "
                        "the oracle or an equivalence test",
                    )
                )
            elif oracle is not None and not self._mentioned_together(
                test_files, name, oracle
            ):
                findings.append(
                    ctx.finding(
                        self.code,
                        node,
                        f"{name} has oracle {oracle} but no test file "
                        "references both; add an equivalence test asserting "
                        "element-wise identity",
                    )
                )
        return findings

    @staticmethod
    def _mentioned_together(
        test_files: Sequence[FileContext], first: str, second: str
    ) -> bool:
        first_re = re.compile(rf"\b{re.escape(first)}\b")
        second_re = re.compile(rf"\b{re.escape(second)}\b")
        return any(
            first_re.search(ctx.source) and second_re.search(ctx.source)
            for ctx in test_files
        )


# -- RPL008: exception hygiene ------------------------------------------------


class BroadExceptRule(Rule):
    code = "RPL008"
    name = "broad-except"
    summary = (
        "broad except handlers must re-raise or carry an explicit "
        "'# reprolint: broad-except -- why' annotation"
    )
    scope = ("src/",)

    BROAD = frozenset({"Exception", "BaseException"})
    ANNOTATION_RE = re.compile(r"reprolint:\s*broad-except|noqa:?\s*[\w,\s]*BLE001")

    def check_file(self, ctx: FileContext) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._reraises(node):
                continue
            if self.ANNOTATION_RE.search(ctx.line_text(node.lineno)):
                continue
            label = "bare except:" if node.type is None else "broad except"
            findings.append(
                ctx.finding(
                    self.code,
                    node,
                    f"{label} swallows everything silently; re-raise "
                    "CancelledError/KeyboardInterrupt explicitly and mark "
                    "the intentional catch with "
                    "'# reprolint: broad-except -- why'",
                )
            )
        return findings

    def _is_broad(self, type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Name):
            return type_node.id in self.BROAD
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(el) for el in type_node.elts)
        return False

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return (
            len(handler.body) >= 1
            and isinstance(handler.body[0], ast.Raise)
            and handler.body[0].exc is None
        )


# -- registry -----------------------------------------------------------------

ALL_RULES: Tuple[type, ...] = (
    WallClockRule,
    UnseededRandomnessRule,
    SetIterationRule,
    KnobDisciplineRule,
    StoreLockRule,
    AsyncBlockingRule,
    OracleContractRule,
    BroadExceptRule,
)


def rules_by_code() -> Dict[str, type]:
    return {rule.code: rule for rule in ALL_RULES}
