"""CI guard: the reprolint baseline may only ever shrink.

Compares the working-tree ``tools/reprolint/baseline.json`` against the
copy at a base git ref (default ``origin/main``) and fails if any *new*
fingerprint appeared.  Removing entries (paying down grandfathered
debt) is always fine; adding entries means a fresh violation was
baselined instead of fixed, which defeats the gate.

Usage::

    python tools/reprolint/check_baseline_shrink.py [--base-ref REF]

Exits 0 when the baseline is a subset of the base ref's (or when the
base ref / its baseline does not exist — first landing, shallow clone),
1 when new fingerprints appeared, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_REL = "tools/reprolint/baseline.json"


def _entries(payload: dict) -> dict:
    return {e["fingerprint"]: e for e in payload.get("entries", [])}


def load_current() -> dict:
    path = REPO_ROOT / BASELINE_REL
    if not path.exists():
        return {}
    return _entries(json.loads(path.read_text(encoding="utf-8")))


def load_at_ref(ref: str) -> dict | None:
    """Baseline entries at ``ref``, or None when unavailable."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{BASELINE_REL}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return _entries(json.loads(proc.stdout))
    except (json.JSONDecodeError, KeyError, TypeError):
        return None


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--base-ref",
        default="origin/main",
        help="git ref to compare against (default: origin/main)",
    )
    args = parser.parse_args(argv)

    current = load_current()
    base = load_at_ref(args.base_ref)
    if base is None:
        print(
            f"baseline-shrink: no baseline at {args.base_ref} "
            "(first landing or unavailable ref); skipping"
        )
        return 0

    grown = set(current) - set(base)
    if grown:
        print(
            f"baseline-shrink: {len(grown)} new baseline entr"
            f"{'ies' if len(grown) != 1 else 'y'} vs {args.base_ref} — "
            "the baseline may only shrink; fix or suppress the new "
            "finding instead:"
        )
        for fp in sorted(grown):
            entry = current[fp]
            print(
                f"  {entry.get('code', '?')} {entry.get('path', '?')}:"
                f"{entry.get('line', '?')} ({fp})"
            )
        return 1

    shrunk = len(base) - len(current)
    print(
        f"baseline-shrink: OK ({len(current)} entries, "
        f"{shrunk} paid down vs {args.base_ref})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
