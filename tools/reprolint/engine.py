"""repro-lint engine: file model, suppression comments, rule running.

The engine is deliberately small and stdlib-only: it parses every
Python file under the scanned roots once with :mod:`ast`, hands each
parse to the per-file rules, then hands the whole project to the
cross-file rules, and finally filters the findings through per-line
suppression comments.  Baseline filtering (grandfathered findings) is
layered on top by :mod:`tools.reprolint.baselines` and the CLI.

Suppression syntax
------------------
A finding is silenced by a comment *on its own line*::

    for row in merged_rows:  # reprolint: disable=RPL003 -- aggregation-only

Multiple codes separate with commas (``disable=RPL001,RPL003``).  The
free-text reason after the codes is not parsed but is strongly
encouraged -- a suppression without a why is just a hidden bug.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Roots scanned when the CLI is given no paths.  Benchmarks measure
#: real elapsed time on purpose and examples are narrative, so neither
#: is linted by default.
DEFAULT_PATHS: Tuple[str, ...] = ("src", "tests")

#: Engine-level code for files that fail to parse (not suppressible).
PARSE_ERROR_CODE = "RPL000"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)


@dataclass(frozen=True)
class ChainHop:
    """One hop of a witness call chain (interprocedural findings).

    ``function`` is the display qualname of the node reached, ``path``
    and ``line`` locate the call site (or, for the final hop, the
    effect site) and ``note`` says what the hop contributes ("calls
    time.sleep", "via decode_batch", ...).
    """

    function: str
    path: str
    line: int
    note: str = ""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``chain`` (cross-file rules only) is the witness call chain that
    proves reachability; it is display/provenance metadata and takes no
    part in equality, hashing, or baseline fingerprints.
    """

    code: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    chain: Optional[Tuple[ChainHop, ...]] = field(default=None, compare=False)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class FileContext:
    """One parsed source file plus its suppression map."""

    def __init__(self, root: Path, path: Path) -> None:
        self.root = root
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.source, filename=str(path))
        self.lines = self.source.splitlines()
        self.suppressions = parse_suppressions(self.source)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(
        self, code: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            code=code,
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class Project:
    """Every parsed file of one lint run, for cross-file rules."""

    root: Path
    files: List[FileContext] = field(default_factory=list)

    def by_prefix(self, *prefixes: str) -> List[FileContext]:
        return [
            ctx
            for ctx in self.files
            if any(ctx.rel.startswith(p) for p in prefixes)
        ]


@dataclass
class LintResult:
    """Outcome of one run: surviving findings plus bookkeeping."""

    findings: List[Finding]
    parse_errors: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> codes disabled on that line.

    Comments are found with :mod:`tokenize` so string literals that
    merely *mention* the marker (fixtures, docs) never register.
    """
    disabled: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = {c.strip() for c in match.group(1).split(",")}
            disabled.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenizeError:  # pragma: no cover - parse failed anyway
        pass
    return disabled


def iter_python_files(root: Path, paths: Sequence[str]) -> List[Path]:
    """Every ``*.py`` under ``root``-relative ``paths``, sorted."""
    found: List[Path] = []
    for entry in paths:
        target = (root / entry) if not Path(entry).is_absolute() else Path(entry)
        if target.is_file() and target.suffix == ".py":
            found.append(target)
            continue
        if not target.is_dir():
            continue
        for path in target.rglob("*.py"):
            parts = path.relative_to(root).parts
            if any(p.startswith(".") or p == "__pycache__" for p in parts):
                continue
            found.append(path)
    return sorted(set(found))


def load_project(
    root, paths: Optional[Sequence[str]] = None
) -> Tuple[Project, List[Finding]]:
    """Parse every Python file under ``paths`` into a :class:`Project`.

    Returns the project plus ``RPL000`` parse-error findings for files
    that fail to parse (they are excluded from the project).  Shared by
    :func:`run_lint` and the interprocedural analysis in
    :mod:`tools.reproflow`.
    """
    root = Path(root).resolve()
    project = Project(root=root)
    parse_errors: List[Finding] = []
    for path in iter_python_files(root, paths or DEFAULT_PATHS):
        try:
            project.files.append(FileContext(root, path))
        except (SyntaxError, ValueError) as error:
            parse_errors.append(
                Finding(
                    code=PARSE_ERROR_CODE,
                    path=path.relative_to(root).as_posix(),
                    line=getattr(error, "lineno", 1) or 1,
                    col=0,
                    message=f"file does not parse: {error.msg if isinstance(error, SyntaxError) else error}",
                )
            )
    return project, parse_errors


def apply_suppressions(
    project: Project, findings: Sequence[Finding]
) -> Tuple[List[Finding], int]:
    """Filter findings through per-line suppression comments.

    Returns ``(kept findings sorted, suppressed count)``.
    """
    suppressions = {ctx.rel: ctx.suppressions for ctx in project.files}
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        disabled = suppressions.get(finding.path, {}).get(finding.line, ())
        if finding.code in disabled:
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept, suppressed


def run_lint(
    root,
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint ``paths`` under ``root`` with the given rule classes.

    ``rules`` is a sequence of rule *classes* (fresh instances are made
    per run -- cross-file rules keep state); default: the full registry.
    ``select``/``ignore`` filter rules by code.  Suppression comments
    are applied here; baseline filtering is the caller's layer.
    """
    from tools.reprolint.rules import ALL_RULES

    root = Path(root).resolve()
    rule_classes = list(rules) if rules is not None else list(ALL_RULES)
    if select:
        wanted = set(select)
        rule_classes = [r for r in rule_classes if r.code in wanted]
    if ignore:
        unwanted = set(ignore)
        rule_classes = [r for r in rule_classes if r.code not in unwanted]
    instances = [cls() for cls in rule_classes]

    project, parse_errors = load_project(root, paths)

    raw: List[Finding] = []
    for ctx in project.files:
        for rule in instances:
            if rule.applies_to(ctx.rel):
                raw.extend(rule.check_file(ctx))
    for rule in instances:
        raw.extend(rule.finalize(project))

    kept, suppressed = apply_suppressions(project, raw)
    return LintResult(
        findings=kept,
        parse_errors=parse_errors,
        suppressed=suppressed,
        files_scanned=len(project.files),
    )
