"""repro-lint: AST-based invariant checks for the reproduction's contracts.

The repo's reproducibility guarantees -- seeded RNG everywhere, no
wall-clock outside the injected clock, knob access only through the
``KnobRegistry``, fcntl-locked store appends, a non-blocking serve event
loop, every vectorized engine shadowed by a ``Reference*`` oracle -- are
conventions a reviewer can miss.  This package machine-checks them:

* :mod:`tools.reprolint.engine` -- file model, suppression comments,
  rule running;
* :mod:`tools.reprolint.rules` -- the rule registry (stable ``RPLxxx``
  codes);
* :mod:`tools.reprolint.baselines` -- grandfathered-finding baseline
  (content-fingerprinted, line-number independent);
* :mod:`tools.reprolint.reporters` -- text and JSON output;
* ``python -m tools.reprolint`` (see :mod:`tools.reprolint.__main__`) --
  the CLI, also reachable as ``python -m repro lint``.

See ``docs/linting.md`` for the rule catalog and workflow.
"""

from tools.reprolint.engine import Finding, LintResult, run_lint  # noqa: F401
from tools.reprolint.rules import ALL_RULES, rules_by_code  # noqa: F401

__version__ = "1.0"
