"""Finding reporters: human text and machine JSON.

The JSON schema (version 1) is a stable contract for CI and the test
suite::

    {
      "version": 1,
      "tool": "reprolint",
      "status": "clean" | "findings",
      "files_scanned": <int>,
      "suppressed": <int>,
      "baselined": <int>,
      "stale_baseline": [<fingerprint>, ...],
      "counts": {"RPL001": <int>, ...},
      "findings": [
        {"code", "path", "line", "col", "message"}, ...
      ],
      "parse_errors": [same shape as findings]
    }

Interprocedural findings (``python -m tools.reprolint --deep``) add a
``"chain"`` key per finding -- the witness call chain as a list of
``{"function", "path", "line", "note"}`` hops -- and the payload grows
an additive ``"deep"`` section with analysis/cache statistics.  Both
are strictly additive: chainless findings keep the exact version-1
key set.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence

from tools.reprolint.engine import Finding, LintResult


def render_chain(finding: Finding) -> List[str]:
    """Indented witness-chain lines for text output (empty if none)."""
    if not finding.chain:
        return []
    lines: List[str] = []
    for hop in finding.chain:
        note = f": {hop.note}" if hop.note else ""
        lines.append(f"    -> {hop.function} ({hop.path}:{hop.line}){note}")
    return lines


def render_text(
    result: LintResult,
    baselined: int = 0,
    stale: Sequence[str] = (),
    extra: Optional[Dict] = None,
    show_chains: bool = False,
) -> str:
    lines: List[str] = []
    for finding in result.parse_errors + result.findings:
        lines.append(finding.render())
        if show_chains:
            lines.extend(render_chain(finding))
    total = len(result.findings) + len(result.parse_errors)
    summary = (
        f"reprolint: {total} finding{'s' if total != 1 else ''} "
        f"({result.files_scanned} files, {result.suppressed} suppressed, "
        f"{baselined} baselined)"
    )
    lines.append(summary)
    if extra:
        stats = ", ".join(f"{key}={value}" for key, value in extra.items())
        lines.append(f"reprolint deep: {stats}")
    if stale:
        lines.append(
            f"reprolint: {len(stale)} stale baseline entr"
            f"{'ies' if len(stale) != 1 else 'y'} -- the violations are "
            "gone; shrink tools/reprolint/baseline.json"
        )
    return "\n".join(lines)


def _finding_dict(finding: Finding) -> Dict:
    payload = {
        "code": finding.code,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }
    if finding.chain:
        payload["chain"] = [
            {
                "function": hop.function,
                "path": hop.path,
                "line": hop.line,
                "note": hop.note,
            }
            for hop in finding.chain
        ]
    return payload


def render_json(
    result: LintResult,
    baselined: int = 0,
    stale: Sequence[str] = (),
    extra: Optional[Dict] = None,
) -> str:
    payload = {
        "version": 1,
        "tool": "reprolint",
        "status": "clean" if result.clean else "findings",
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "baselined": baselined,
        "stale_baseline": list(stale),
        "counts": dict(Counter(f.code for f in result.findings)),
        "findings": [_finding_dict(f) for f in result.findings],
        "parse_errors": [_finding_dict(f) for f in result.parse_errors],
    }
    if extra:
        payload["deep"] = dict(extra)
    return json.dumps(payload, indent=2)
