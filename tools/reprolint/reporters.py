"""Finding reporters: human text and machine JSON.

The JSON schema (version 1) is a stable contract for CI and the test
suite::

    {
      "version": 1,
      "tool": "reprolint",
      "status": "clean" | "findings",
      "files_scanned": <int>,
      "suppressed": <int>,
      "baselined": <int>,
      "stale_baseline": [<fingerprint>, ...],
      "counts": {"RPL001": <int>, ...},
      "findings": [
        {"code", "path", "line", "col", "message"}, ...
      ],
      "parse_errors": [same shape as findings]
    }

Interprocedural findings (``python -m tools.reprolint --deep`` /
``--race``) add a ``"chain"`` key per finding -- the witness call chain
as a list of ``{"function", "path", "line", "note"}`` hops -- and the
payload grows additive top-level stats sections keyed by pass name
(``"deep"`` for the effect analysis, ``"race"`` for the concurrency
analysis), passed to the renderers as ``extra={"deep": {...}, ...}``.
All of it is strictly additive: chainless findings keep the exact
version-1 key set.

``render_sarif`` emits the same result set as SARIF 2.1.0 (one run,
one result per finding, witness chains as ``codeFlows``) so GitHub
code scanning can annotate PRs; it is shared by reprolint, reproflow,
and reprorace through the same ``--format sarif`` flag.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence

from tools.reprolint.engine import Finding, LintResult

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def render_chain(finding: Finding) -> List[str]:
    """Indented witness-chain lines for text output (empty if none)."""
    if not finding.chain:
        return []
    lines: List[str] = []
    for hop in finding.chain:
        note = f": {hop.note}" if hop.note else ""
        lines.append(f"    -> {hop.function} ({hop.path}:{hop.line}){note}")
    return lines


def render_text(
    result: LintResult,
    baselined: int = 0,
    stale: Sequence[str] = (),
    extra: Optional[Dict] = None,
    show_chains: bool = False,
) -> str:
    lines: List[str] = []
    for finding in result.parse_errors + result.findings:
        lines.append(finding.render())
        if show_chains:
            lines.extend(render_chain(finding))
    total = len(result.findings) + len(result.parse_errors)
    summary = (
        f"reprolint: {total} finding{'s' if total != 1 else ''} "
        f"({result.files_scanned} files, {result.suppressed} suppressed, "
        f"{baselined} baselined)"
    )
    lines.append(summary)
    for section, values in (extra or {}).items():
        stats = ", ".join(f"{key}={value}" for key, value in values.items())
        lines.append(f"reprolint {section}: {stats}")
    if stale:
        lines.append(
            f"reprolint: {len(stale)} stale baseline entr"
            f"{'ies' if len(stale) != 1 else 'y'} -- the violations are "
            "gone; shrink tools/reprolint/baseline.json"
        )
    return "\n".join(lines)


def _finding_dict(finding: Finding) -> Dict:
    payload = {
        "code": finding.code,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }
    if finding.chain:
        payload["chain"] = [
            {
                "function": hop.function,
                "path": hop.path,
                "line": hop.line,
                "note": hop.note,
            }
            for hop in finding.chain
        ]
    return payload


def render_json(
    result: LintResult,
    baselined: int = 0,
    stale: Sequence[str] = (),
    extra: Optional[Dict] = None,
) -> str:
    payload = {
        "version": 1,
        "tool": "reprolint",
        "status": "clean" if result.clean else "findings",
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "baselined": baselined,
        "stale_baseline": list(stale),
        "counts": dict(Counter(f.code for f in result.findings)),
        "findings": [_finding_dict(f) for f in result.findings],
        "parse_errors": [_finding_dict(f) for f in result.parse_errors],
    }
    for section, values in (extra or {}).items():
        payload[section] = dict(values)
    return json.dumps(payload, indent=2)


def _sarif_location(path: str, line: int, col: int = 0) -> Dict:
    region: Dict = {"startLine": max(line, 1)}
    if col:
        region["startColumn"] = col + 1  # SARIF columns are 1-based
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "SRCROOT"},
            "region": region,
        }
    }


def _sarif_result(finding: Finding, rule_index: Dict[str, int]) -> Dict:
    result: Dict = {
        "ruleId": finding.code,
        "ruleIndex": rule_index[finding.code],
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            _sarif_location(finding.path, finding.line, finding.col)
        ],
    }
    if finding.chain:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": dict(
                                    _sarif_location(hop.path, hop.line),
                                    message={
                                        "text": hop.note or hop.function
                                    },
                                )
                            }
                            for hop in finding.chain
                        ]
                    }
                ]
            }
        ]
    return result


def render_sarif(
    result: LintResult,
    baselined: int = 0,
    stale: Sequence[str] = (),
    extra: Optional[Dict] = None,
    rules: Sequence = (),
) -> str:
    """SARIF 2.1.0: one run, one result per finding/parse error.

    ``rules`` is the registry of rule objects (``code``/``name``/
    ``summary``) active for this invocation; codes that appear in
    findings but not in ``rules`` (defensive) still get a minimal
    reportingDescriptor so every result's ``ruleIndex`` resolves.
    """
    descriptors: List[Dict] = []
    rule_index: Dict[str, int] = {}
    for rule in rules:
        if rule.code in rule_index:
            continue
        rule_index[rule.code] = len(descriptors)
        descriptors.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.summary or rule.name},
            }
        )
    for finding in list(result.findings) + list(result.parse_errors):
        if finding.code not in rule_index:
            rule_index[finding.code] = len(descriptors)
            descriptors.append(
                {
                    "id": finding.code,
                    "name": finding.code,
                    "shortDescription": {"text": finding.code},
                }
            )
    properties: Dict = {
        "filesScanned": result.files_scanned,
        "suppressed": result.suppressed,
        "baselined": baselined,
        "staleBaseline": list(stale),
    }
    for section, values in (extra or {}).items():
        properties[section] = dict(values)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": descriptors,
                    }
                },
                "results": [
                    _sarif_result(f, rule_index)
                    for f in list(result.parse_errors) + list(result.findings)
                ],
                "properties": properties,
            }
        ],
    }
    return json.dumps(payload, indent=2)
