"""Finding reporters: human text and machine JSON.

The JSON schema (version 1) is a stable contract for CI and the test
suite::

    {
      "version": 1,
      "tool": "reprolint",
      "status": "clean" | "findings",
      "files_scanned": <int>,
      "suppressed": <int>,
      "baselined": <int>,
      "stale_baseline": [<fingerprint>, ...],
      "counts": {"RPL001": <int>, ...},
      "findings": [
        {"code", "path", "line", "col", "message"}, ...
      ],
      "parse_errors": [same shape as findings]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from tools.reprolint.engine import Finding, LintResult


def render_text(
    result: LintResult, baselined: int = 0, stale: Sequence[str] = ()
) -> str:
    lines: List[str] = []
    for finding in result.parse_errors + result.findings:
        lines.append(finding.render())
    total = len(result.findings) + len(result.parse_errors)
    summary = (
        f"reprolint: {total} finding{'s' if total != 1 else ''} "
        f"({result.files_scanned} files, {result.suppressed} suppressed, "
        f"{baselined} baselined)"
    )
    lines.append(summary)
    if stale:
        lines.append(
            f"reprolint: {len(stale)} stale baseline entr"
            f"{'ies' if len(stale) != 1 else 'y'} -- the violations are "
            "gone; shrink tools/reprolint/baseline.json"
        )
    return "\n".join(lines)


def _finding_dict(finding: Finding) -> Dict:
    return {
        "code": finding.code,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }


def render_json(
    result: LintResult, baselined: int = 0, stale: Sequence[str] = ()
) -> str:
    payload = {
        "version": 1,
        "tool": "reprolint",
        "status": "clean" if result.clean else "findings",
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "baselined": baselined,
        "stale_baseline": list(stale),
        "counts": dict(Counter(f.code for f in result.findings)),
        "findings": [_finding_dict(f) for f in result.findings],
        "parse_errors": [_finding_dict(f) for f in result.parse_errors],
    }
    return json.dumps(payload, indent=2)
