"""Grandfathered-finding baseline: content fingerprints, not line numbers.

A baseline entry pins one *existing* finding so the linter can gate on
new findings while old ones are burned down.  Entries are fingerprinted
by ``(code, path, stripped source line text, occurrence index)`` --
stable under unrelated edits that shift line numbers, invalidated the
moment the offending line itself changes (which is exactly when the
finding should be re-justified or fixed).

The checked-in file is ``tools/reprolint/baseline.json``.  CI asserts it
only ever shrinks (``check_baseline_shrink.py``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from tools.reprolint.engine import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _line_text(root: Path, finding: Finding, cache: Dict[str, List[str]]) -> str:
    lines = cache.get(finding.path)
    if lines is None:
        try:
            lines = (root / finding.path).read_text(encoding="utf-8").splitlines()
        except OSError:
            lines = []
        cache[finding.path] = lines
    if 1 <= finding.line <= len(lines):
        return lines[finding.line - 1].strip()
    return ""


def fingerprints(root: Path, findings: Sequence[Finding]) -> List[str]:
    """One stable fingerprint per finding (order matches input).

    Findings sharing (code, path, line text) are disambiguated by their
    occurrence index in path order, so two identical offending lines in
    one file get distinct prints.
    """
    cache: Dict[str, List[str]] = {}
    seen: Dict[Tuple[str, str, str], int] = {}
    prints: List[str] = []
    for finding in sorted(findings, key=Finding.sort_key):
        text = _line_text(root, finding, cache)
        key = (finding.code, finding.path, text)
        index = seen.get(key, 0)
        seen[key] = index + 1
        digest = hashlib.sha1(
            f"{finding.code}|{finding.path}|{text}|{index}".encode("utf-8")
        ).hexdigest()[:16]
        prints.append(digest)
    by_finding = dict(zip(sorted(findings, key=Finding.sort_key), prints))
    return [by_finding[f] for f in findings]


def load(path: Optional[Path] = None) -> Dict[str, dict]:
    """fingerprint -> entry dict; empty when the file is absent."""
    path = Path(path) if path is not None else DEFAULT_BASELINE
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    return {entry["fingerprint"]: entry for entry in data.get("entries", [])}


def write(path: Path, root: Path, findings: Sequence[Finding]) -> None:
    """Write every finding as a grandfathered entry (sorted, stable)."""
    ordered = sorted(findings, key=Finding.sort_key)
    prints = fingerprints(root, ordered)
    entries = [
        {
            "fingerprint": fp,
            "code": f.code,
            "path": f.path,
            "line": f.line,  # informational; the fingerprint is line-free
            "message": f.message,
        }
        for f, fp in zip(ordered, prints)
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def split(
    root: Path, findings: Sequence[Finding], baseline: Dict[str, dict]
) -> Tuple[List[Finding], int, List[str]]:
    """(new findings, baselined count, stale fingerprints).

    A stale fingerprint is a baseline entry no current finding matches:
    the violation was fixed (or its line edited), so the entry should be
    deleted -- CI's only-shrinks check makes that a one-way door.
    """
    prints = fingerprints(root, findings)
    fresh: List[Finding] = []
    matched: set = set()
    for finding, fp in zip(findings, prints):
        if fp in baseline:
            matched.add(fp)
        else:
            fresh.append(finding)
    stale = sorted(set(baseline) - matched)
    return fresh, len(matched), stale
