"""CLI: ``python -m tools.reprolint`` (also ``python -m repro lint``).

Exit status: 0 when the tree is clean (every finding suppressed or
baselined), 1 when non-baselined findings (or parse errors, or stale
baseline entries) remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

# Allow direct execution from anywhere inside the repo.
_REPO_ROOT = Path(__file__).resolve().parents[2]
if str(_REPO_ROOT) not in sys.path:  # pragma: no cover - import plumbing
    sys.path.insert(0, str(_REPO_ROOT))

from tools.reprolint import baselines
from tools.reprolint.engine import DEFAULT_PATHS, LintResult, run_lint
from tools.reprolint.reporters import render_json, render_sarif, render_text
from tools.reprolint.rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checker for the reproduction's "
            "determinism, clock, knob, lock, async, and oracle contracts "
            "(see docs/linting.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root for relative paths and rule scopes (default: "
        "the repo containing this tool)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif emits SARIF 2.1.0 "
        "for code-scanning upload",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of grandfathered findings (default: "
        "tools/reprolint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="also run the interprocedural effect analysis "
        "(tools.reproflow: RPL101-RPL104 over the whole src/ call "
        "graph); findings merge under the same baseline and exit code",
    )
    parser.add_argument(
        "--race", action="store_true",
        help="also run the concurrency/determinism analysis "
        "(tools.reprorace: RPL201-RPL204 -- execution contexts, "
        "locksets, seed provenance); findings merge under the same "
        "baseline and exit code",
    )
    parser.add_argument(
        "--explain-path", action="store_true",
        help="with --deep/--race: print each finding's witness chain",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="with --deep/--race: disable the content-hash facts cache",
    )
    return parser


def _codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        from tools.reproflow.rules import ALL_FLOW_RULES
        from tools.reprorace.rules import ALL_RACE_RULES

        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        for rule in ALL_FLOW_RULES:
            print(f"{rule.code}  {rule.name}: {rule.summary} [--deep]")
        for rule in ALL_RACE_RULES:
            print(f"{rule.code}  {rule.name}: {rule.summary} [--race]")
        print(
            f"{len(ALL_RULES)} rules registered "
            f"(+{len(ALL_FLOW_RULES)} flow rules with --deep, "
            f"+{len(ALL_RACE_RULES)} race rules with --race)"
        )
        return 0

    known = {rule.code for rule in ALL_RULES}
    if args.deep:
        from tools.reproflow.rules import ALL_FLOW_RULES

        known |= {rule.code for rule in ALL_FLOW_RULES}
    if args.race:
        from tools.reprorace.rules import ALL_RACE_RULES

        known |= {rule.code for rule in ALL_RACE_RULES}
    for flag in ("select", "ignore"):
        unknown = set(_codes(getattr(args, flag)) or ()) - known
        if unknown:
            parser.error(
                f"--{flag}: unknown rule code(s) {', '.join(sorted(unknown))} "
                f"(see --list-rules)"
            )

    root = Path(args.root).resolve() if args.root else _REPO_ROOT
    paths = args.paths or list(DEFAULT_PATHS)
    try:
        result = run_lint(
            root,
            paths=paths,
            select=_codes(args.select),
            ignore=_codes(args.ignore),
        )
    except FileNotFoundError as error:  # pragma: no cover - defensive
        print(f"reprolint: {error}", file=sys.stderr)
        return 2

    sections = {}
    if args.deep:
        from tools.reproflow.analysis import run_flow

        flow = run_flow(
            root,
            select=_codes(args.select),
            ignore=_codes(args.ignore),
            use_cache=not args.no_cache,
        )
        merged = sorted(
            result.findings + flow.findings, key=lambda f: f.sort_key()
        )
        result = LintResult(
            findings=merged,
            parse_errors=list(
                dict.fromkeys(result.parse_errors + flow.parse_errors)
            ),
            suppressed=result.suppressed + flow.suppressed,
            files_scanned=result.files_scanned,
        )
        sections["deep"] = flow.stats()
    if args.race:
        from tools.reprorace.analysis import run_race

        race = run_race(
            root,
            select=_codes(args.select),
            ignore=_codes(args.ignore),
            use_cache=not args.no_cache,
        )
        merged = sorted(
            result.findings + race.findings, key=lambda f: f.sort_key()
        )
        result = LintResult(
            findings=merged,
            parse_errors=list(
                dict.fromkeys(result.parse_errors + race.parse_errors)
            ),
            suppressed=result.suppressed + race.suppressed,
            files_scanned=result.files_scanned,
        )
        sections["race"] = race.stats()

    baseline_path = (
        Path(args.baseline) if args.baseline else baselines.DEFAULT_BASELINE
    )
    if args.write_baseline:
        baselines.write(baseline_path, root, result.findings)
        print(
            f"reprolint: wrote {len(result.findings)} baseline entr"
            f"{'ies' if len(result.findings) != 1 else 'y'} to {baseline_path}"
        )
        return 0

    baselined = 0
    stale: List[str] = []
    if not args.no_baseline:
        baseline = baselines.load(baseline_path)
        if baseline:
            fresh, baselined, stale = baselines.split(
                root, result.findings, baseline
            )
            result = LintResult(
                findings=fresh,
                parse_errors=result.parse_errors,
                suppressed=result.suppressed,
                files_scanned=result.files_scanned,
            )

    extra = sections or None
    if args.format == "json":
        print(render_json(result, baselined=baselined, stale=stale, extra=extra))
    elif args.format == "sarif":
        rules = list(ALL_RULES)
        if args.deep:
            from tools.reproflow.rules import ALL_FLOW_RULES

            rules.extend(cls() for cls in ALL_FLOW_RULES)
        if args.race:
            from tools.reprorace.rules import ALL_RACE_RULES

            rules.extend(cls() for cls in ALL_RACE_RULES)
        print(
            render_sarif(
                result, baselined=baselined, stale=stale, extra=extra,
                rules=rules,
            )
        )
    else:
        print(
            render_text(
                result, baselined=baselined, stale=stale, extra=extra,
                show_chains=args.explain_path,
            )
        )
    return 0 if result.clean and not stale else 1


if __name__ == "__main__":
    sys.exit(main())
