"""Repo tooling: link checker, repro-lint invariant checker."""
