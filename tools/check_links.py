#!/usr/bin/env python3
"""Link-check markdown docs: every intra-repo reference must resolve.

Scans the given markdown files (default: README.md and docs/*.md) for
inline links and validates the repo-relative ones:

* the target file or directory must exist (relative to the containing
  file's directory);
* a ``#fragment`` pointing into a markdown file must match one of its
  headings (GitHub-style slugs).

External links (http/https/mailto) are not fetched -- CI must not
depend on the network.  Exit status 1 when any reference is broken.
Stdlib only.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Inline markdown links, skipping images is unnecessary (same rules).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close enough for our docs)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown_path: Path) -> set:
    text = markdown_path.read_text(encoding="utf-8")
    text = CODE_FENCE_RE.sub("", text)
    return {github_slug(match) for match in HEADING_RE.findall(text)}


def check_file(markdown_path: Path) -> list:
    """All broken references in one markdown file."""
    errors = []
    text = markdown_path.read_text(encoding="utf-8")
    scannable = CODE_FENCE_RE.sub("", text)
    for target in LINK_RE.findall(scannable):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target_path, _, fragment = target.partition("#")
        if not target_path:  # same-file anchor
            resolved = markdown_path
        else:
            resolved = (markdown_path.parent / target_path).resolve()
            if not resolved.exists():
                errors.append(f"{markdown_path}: broken link -> {target}")
                continue
            if REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
                errors.append(f"{markdown_path}: link escapes repo -> {target}")
                continue
        if fragment and resolved.suffix == ".md":
            if fragment.lower() not in heading_slugs(resolved):
                errors.append(
                    f"{markdown_path}: missing anchor -> {target}"
                )
    return errors


def main(argv) -> int:
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [REPO_ROOT / "README.md"] + sorted(
            (REPO_ROOT / "docs").glob("*.md")
        )
    errors = []
    for markdown_path in files:
        if not markdown_path.exists():
            errors.append(f"{markdown_path}: file not found")
            continue
        errors.extend(check_file(markdown_path))
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"checked {len(files)} file(s): "
        + ("FAILED" if errors else "all intra-repo links resolve")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
