"""Symbol table + call graph linking: the cross-file half of repro-flow.

:func:`build_graph` consumes the per-file fact dicts from
:mod:`tools.reproflow.extract` and resolves every recorded call site to
the project functions it can reach:

* **dotted** calls (``store.append_line(...)``) resolve through the
  import maps, following re-export chains (``from repro.decoders import
  Decoder`` -> ``repro.decoders.base.Decoder``) with a cycle guard;
* **name** calls resolve lexically: nested defs of the caller, then the
  enclosing-def chain, then module-level functions, then imported
  members; resolving to a class adds an edge to its ``__init__``;
* **self/cls** calls dispatch through the MRO of the caller's class
  *and*, as a deliberate over-approximation, every transitive subclass
  override -- ``Decoder.decode_batch`` calling ``self.decode_uniques``
  reaches every decoder in the zoo, which is exactly what a
  reachability gate wants;
* **attr** calls (``Foo.bar(...)`` on a locally defined class) resolve
  the base name in module scope.

Calls on untyped values (``lane.decoder.decode_batch(...)``) resolve to
nothing; repro-flow is deliberately alias-free and under-approximates
there (documented in docs/static_analysis.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple


@dataclass
class FunctionNode:
    qualname: str
    name: str
    path: str
    line: int
    is_async: bool
    module: str
    cls: Optional[str]  # owning class qualname, or None
    parent: Optional[str]  # enclosing function qualname, or None


@dataclass
class ClassNode:
    qualname: str
    name: str
    path: str
    line: int
    module: str
    bases: List[str]  # raw dotted strings from extraction
    methods: Dict[str, str]  # method name -> function qualname
    resolved_bases: List[str] = field(default_factory=list)


#: One call edge: (callee qualname, call-site line, note for chains).
Edge = Tuple[str, int, str]


@dataclass
class CallGraph:
    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ClassNode] = field(default_factory=dict)
    edges: Dict[str, List[Edge]] = field(default_factory=dict)
    callers: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    #: Direct effects: qualname -> {effect: (line, detail)}.
    direct_effects: Dict[str, Dict[str, Tuple[int, str]]] = field(
        default_factory=dict
    )
    #: Worker payloads: (caller, payload fn qualname, line, via).
    payloads: List[Tuple[str, str, int, str]] = field(default_factory=list)
    #: Pool initializers: (caller, fn qualname, line, via) -- post-fork
    #: child entry points (seed the ``child`` context in repro-race).
    initializers: List[Tuple[str, str, int, str]] = field(default_factory=list)
    #: Per-function race facts (tools.reprorace.extract), by qualname.
    race: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Direct subclass map: class qualname -> set of direct subclasses.
    subclasses: Dict[str, Set[str]] = field(default_factory=dict)

    def add_edge(self, caller: str, callee: str, line: int, note: str) -> None:
        self.edges.setdefault(caller, []).append((callee, line, note))
        self.callers.setdefault(callee, []).append((caller, line))

    def mro(self, class_qualname: str) -> List[str]:
        """DFS linearization of a class and its resolved bases."""
        order: List[str] = []
        seen: Set[str] = set()

        def walk(cq: str) -> None:
            if cq in seen or cq not in self.classes:
                return
            seen.add(cq)
            order.append(cq)
            for base in self.classes[cq].resolved_bases:
                walk(base)

        walk(class_qualname)
        return order

    def lookup_method(self, class_qualname: str, name: str) -> Optional[str]:
        for cq in self.mro(class_qualname):
            method = self.classes[cq].methods.get(name)
            if method is not None:
                return method
        return None

    def transitive_subclasses(self, class_qualname: str) -> List[str]:
        found: List[str] = []
        seen: Set[str] = {class_qualname}
        queue = sorted(self.subclasses.get(class_qualname, ()))
        while queue:
            sub = queue.pop(0)
            if sub in seen:
                continue
            seen.add(sub)
            found.append(sub)
            queue.extend(sorted(self.subclasses.get(sub, ())))
        return found

    def override_methods(self, class_qualname: str, name: str) -> List[str]:
        """Every subclass's own definition of ``name`` (dynamic dispatch)."""
        found: List[str] = []
        for sub in self.transitive_subclasses(class_qualname):
            method = self.classes[sub].methods.get(name)
            if method is not None:
                found.append(method)
        return found


class _Linker:
    def __init__(self, all_facts: Sequence[Dict[str, Any]]) -> None:
        self.graph = CallGraph()
        self.modules: Set[str] = set()
        self.members: Dict[str, Dict[str, str]] = {}
        self._resolving: Set[str] = set()
        self._facts = list(all_facts)

    def run(self) -> CallGraph:
        for facts in self._facts:
            self._register(facts)
        self._resolve_bases()
        for facts in self._facts:
            self._link(facts)
        return self.graph

    # -- registration --------------------------------------------------

    def _register(self, facts: Dict[str, Any]) -> None:
        module, path = facts["module"], facts["path"]
        self.modules.add(module)
        self.members[module] = dict(facts["imports"]["members"])
        for fn in facts["functions"]:
            self.graph.functions[fn["qualname"]] = FunctionNode(
                qualname=fn["qualname"],
                name=fn["name"],
                path=path,
                line=fn["line"],
                is_async=fn["is_async"],
                module=module,
                cls=fn["cls"],
                parent=fn["parent"],
            )
            if fn["effects"]:
                self.graph.direct_effects[fn["qualname"]] = {
                    effect: (line, detail)
                    for effect, (line, detail) in fn["effects"].items()
                }
            if fn.get("race"):
                self.graph.race[fn["qualname"]] = fn["race"]
        for cls in facts["classes"]:
            self.graph.classes[cls["qualname"]] = ClassNode(
                qualname=cls["qualname"],
                name=cls["name"],
                path=path,
                line=cls["line"],
                module=module,
                bases=list(cls["bases"]),
                methods=dict(cls["methods"]),
            )

    def _resolve_bases(self) -> None:
        for node in self.graph.classes.values():
            for raw in node.bases:
                resolved = self._resolve_class_name(node.module, raw)
                if resolved is not None:
                    node.resolved_bases.append(resolved)
        for node in self.graph.classes.values():
            for base in node.resolved_bases:
                self.graph.subclasses.setdefault(base, set()).add(node.qualname)

    def _resolve_class_name(self, module: str, raw: str) -> Optional[str]:
        resolved = self.resolve_symbol(raw)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        if "." not in raw:
            local = self.resolve_symbol(f"{module}.{raw}")
            if local is not None and local[0] == "class":
                return local[1]
        return None

    # -- symbol resolution ---------------------------------------------

    def resolve_symbol(self, dotted: str) -> Optional[Tuple[str, str]]:
        """Resolve a dotted name to ``("func"|"class", qualname)``.

        Follows re-export chains through module import maps and method
        access through class qualnames; a cycle guard stops pathological
        mutually-re-exporting modules.
        """
        if dotted in self._resolving:
            return None
        if dotted in self.graph.functions:
            return ("func", dotted)
        if dotted in self.graph.classes:
            return ("class", dotted)
        prefix, _, leaf = dotted.rpartition(".")
        if not prefix:
            return None
        self._resolving.add(dotted)
        try:
            if prefix in self.modules:
                target = self.members.get(prefix, {}).get(leaf)
                if target is not None:
                    return self.resolve_symbol(target)
                return None
            base = self.resolve_symbol(prefix)
            if base is not None and base[0] == "class":
                method = self.graph.lookup_method(base[1], leaf)
                if method is not None:
                    return ("func", method)
            return None
        finally:
            self._resolving.discard(dotted)

    def _resolve_in_scope(
        self, caller: FunctionNode, name: str
    ) -> Optional[Tuple[str, str]]:
        """Lexical resolution of a bare-name call inside ``caller``."""
        scope: Optional[str] = caller.qualname
        while scope is not None:
            nested = f"{scope}.{name}"
            if nested in self.graph.functions:
                return ("func", nested)
            scope = self.graph.functions[scope].parent if scope in self.graph.functions else None
        module_level = f"{caller.module}.{name}"
        resolved = self.resolve_symbol(module_level)
        if resolved is not None:
            return resolved
        imported = self.members.get(caller.module, {}).get(name)
        if imported is not None:
            return self.resolve_symbol(imported)
        return None

    # -- edge linking --------------------------------------------------

    def _link(self, facts: Dict[str, Any]) -> None:
        for fn in facts["functions"]:
            caller = self.graph.functions[fn["qualname"]]
            for call in fn["calls"]:
                self._link_call(caller, call)
            for payload in fn["payloads"]:
                self._link_payload(caller, payload)
            for init in fn.get("initializers", ()):
                self._link_initializer(caller, init)

    def _edge_to(
        self,
        caller: FunctionNode,
        resolved: Tuple[str, str],
        line: int,
        note: str,
    ) -> None:
        kind, qualname = resolved
        if kind == "func":
            self.graph.add_edge(caller.qualname, qualname, line, note)
        else:  # instantiation reaches the constructor
            init = self.graph.lookup_method(qualname, "__init__")
            if init is not None:
                self.graph.add_edge(
                    caller.qualname, init, line, f"{note} (constructor)"
                )

    def _link_call(self, caller: FunctionNode, call: Dict[str, Any]) -> None:
        line = call["line"]
        if call["kind"] == "dotted":
            resolved = self.resolve_symbol(call["dotted"])
            if resolved is not None:
                self._edge_to(caller, resolved, line, "")
        elif call["kind"] == "name":
            resolved = self._resolve_in_scope(caller, call["name"])
            if resolved is not None:
                self._edge_to(caller, resolved, line, "")
        elif call["kind"] == "self":
            self._link_self(caller, call["attr"], line)
        elif call["kind"] == "attr":
            self._link_attr(caller, call["parts"], line)

    def _link_self(self, caller: FunctionNode, attr: str, line: int) -> None:
        if caller.cls is None:
            return
        primary = self.graph.lookup_method(caller.cls, attr)
        if primary is not None:
            self.graph.add_edge(caller.qualname, primary, line, "self dispatch")
        for override in self.graph.override_methods(caller.cls, attr):
            if override != primary:
                owner = override.rsplit(".", 2)[-2]
                self.graph.add_edge(
                    caller.qualname, override, line, f"via {owner} override"
                )

    def _link_attr(
        self, caller: FunctionNode, parts: List[str], line: int
    ) -> None:
        if len(parts) != 2:
            return
        resolved = self._resolve_in_scope(caller, parts[0])
        if resolved is not None and resolved[0] == "class":
            method = self.graph.lookup_method(resolved[1], parts[1])
            if method is not None:
                self.graph.add_edge(caller.qualname, method, line, "")

    def _link_payload(
        self, caller: FunctionNode, payload: Dict[str, Any]
    ) -> None:
        if payload["kind"] == "name":
            resolved = self._resolve_in_scope(caller, payload["name"])
        else:
            resolved = self.resolve_symbol(payload["dotted"])
        if resolved is not None and resolved[0] == "func":
            self.graph.payloads.append(
                (caller.qualname, resolved[1], payload["line"], payload["via"])
            )

    def _link_initializer(
        self, caller: FunctionNode, init: Dict[str, Any]
    ) -> None:
        if init["kind"] == "name":
            resolved = self._resolve_in_scope(caller, init["name"])
        else:
            resolved = self.resolve_symbol(init["dotted"])
        if resolved is not None and resolved[0] == "func":
            self.graph.initializers.append(
                (caller.qualname, resolved[1], init["line"], init["via"])
            )


def build_graph(all_facts: Sequence[Dict[str, Any]]) -> CallGraph:
    """Link per-file facts into the project call graph."""
    return _Linker(all_facts).run()
