"""repro-flow: interprocedural effect analysis over the call graph.

Where :mod:`tools.reprolint` checks one function at a time, repro-flow
builds a project-wide symbol table and call graph, infers a per-function
**effect summary** (does this function block? read the clock? draw
unseeded randomness? append to the store? ...), propagates the
summaries to a fixed point over the call graph, and then checks
cross-file reachability rules (RPL101-RPL104) that per-file AST rules
cannot see: a ``time.sleep`` is a violation not because of where it is
written but because of *what can reach it*.

Layers (see docs/static_analysis.md):

    extract.py   per-file facts: functions, classes, calls, direct
                 effects -- JSON-safe and content-hash cacheable
    graph.py     symbol table + call graph linking (imports,
                 re-exports, self/cls dispatch, subclass overrides)
    effects.py   the effect lattice and fixed-point propagation,
                 with provenance for witness call chains
    cache.py     content-hash-keyed facts cache for incremental runs
    rules.py     the RPL1xx flow rules
    analysis.py  orchestration (run_flow)
    __main__.py  ``python -m tools.reproflow`` (also reachable as
                 ``python -m repro lint --deep``)

Everything is stdlib-only, like reprolint.
"""

#: Bump when extraction schema or effect semantics change: stale cache
#: entries are invalidated by version, not just content hash.
#: 2: per-function race facts + pool initializers (tools.reprorace).
ANALYSIS_VERSION = 2
