"""CLI: ``python -m tools.reproflow`` -- the deep pass, standalone.

Same exit-code contract as reprolint: 0 clean, 1 findings (or stale
baseline entries), 2 usage errors.  ``python -m tools.reprolint
--deep`` (and thus ``python -m repro lint --deep``) runs the same
analysis merged with the per-file rules under one baseline; this
standalone entry point adds the debugging modes: ``--summary FUNC``
dumps a function's inferred effects with provenance, ``--explain-path``
prints every finding's witness call chain.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

# Allow direct execution from anywhere inside the repo.
_REPO_ROOT = Path(__file__).resolve().parents[2]
if str(_REPO_ROOT) not in sys.path:  # pragma: no cover - import plumbing
    sys.path.insert(0, str(_REPO_ROOT))

from tools.reprolint import baselines
from tools.reprolint.engine import LintResult
from tools.reprolint.reporters import render_json, render_sarif, render_text
from tools.reproflow.analysis import FlowResult, find_functions, run_flow
from tools.reproflow.effects import EFFECTS, format_chain, witness_chain
from tools.reproflow.rules import ALL_FLOW_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reproflow",
        description=(
            "interprocedural effect analysis over the call graph: "
            "transitive async-blocking, hot-path purity, store-lock and "
            "worker-boundary reachability gates (see "
            "docs/static_analysis.md)"
        ),
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root (default: the repo containing this tool); the "
        "analysis always covers the whole src/ tree under it",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif emits SARIF 2.1.0 "
        "for code-scanning upload",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated flow rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="comma-separated flow rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered flow rules and exit",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-hash facts cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="facts cache directory (default: <root>/.reproflow_cache)",
    )
    parser.add_argument(
        "--summary", default=None, metavar="FUNC",
        help="print the inferred effect summary of FUNC (qualname, "
        "dotted suffix, or bare name) and exit",
    )
    parser.add_argument(
        "--explain-path", action="store_true",
        help="print each finding's witness call chain (text format)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of grandfathered findings (default: "
        "tools/reprolint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; report every finding",
    )
    return parser


def _codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def _print_summaries(result: FlowResult, needle: str) -> int:
    matches = find_functions(result, needle)
    if not matches:
        print(f"reproflow: no function matches {needle!r}", file=sys.stderr)
        return 2
    for qualname in matches:
        node = result.graph.functions[qualname]
        kind = "async def" if node.is_async else "def"
        print(f"{qualname}  ({kind}, {node.path}:{node.line})")
        summary = result.summaries.get(qualname, {})
        if not summary:
            print("    no effects")
            continue
        for effect in EFFECTS:
            if effect not in summary:
                continue
            hops, _ = witness_chain(
                result.graph, result.summaries, qualname, effect
            )
            print(f"    {effect:<22}{format_chain(hops)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_FLOW_RULES:
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        print(f"{len(ALL_FLOW_RULES)} flow rules registered")
        return 0

    known = {rule.code for rule in ALL_FLOW_RULES}
    for flag in ("select", "ignore"):
        unknown = set(_codes(getattr(args, flag)) or ()) - known
        if unknown:
            parser.error(
                f"--{flag}: unknown flow rule code(s) "
                f"{', '.join(sorted(unknown))} (see --list-rules)"
            )

    root = Path(args.root).resolve() if args.root else _REPO_ROOT
    result = run_flow(
        root,
        select=_codes(args.select),
        ignore=_codes(args.ignore),
        use_cache=not args.no_cache,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
    )

    if args.summary:
        return _print_summaries(result, args.summary)

    baseline_path = (
        Path(args.baseline) if args.baseline else baselines.DEFAULT_BASELINE
    )
    findings = result.findings
    baselined = 0
    stale: List[str] = []
    if not args.no_baseline:
        baseline = baselines.load(baseline_path)
        if baseline:
            # Deep findings share reprolint's baseline; entries for the
            # per-file rules simply never match a flow finding, so they
            # are not reported stale from here.
            findings, baselined, stale_entries = baselines.split(
                root, findings, baseline
            )
            del stale_entries

    lint_view = LintResult(
        findings=findings,
        parse_errors=result.parse_errors,
        suppressed=result.suppressed,
        files_scanned=result.files_scanned,
    )
    extra = {"deep": result.stats()}
    if args.format == "json":
        print(
            render_json(
                lint_view, baselined=baselined, stale=stale, extra=extra
            )
        )
    elif args.format == "sarif":
        print(
            render_sarif(
                lint_view, baselined=baselined, stale=stale, extra=extra,
                rules=[cls() for cls in ALL_FLOW_RULES],
            )
        )
    else:
        print(
            render_text(
                lint_view, baselined=baselined, stale=stale,
                extra=extra, show_chains=args.explain_path,
            )
        )
    return 0 if lint_view.clean else 1


if __name__ == "__main__":
    sys.exit(main())
