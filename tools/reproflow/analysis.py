"""Orchestration: parse -> facts (cached) -> graph -> fixed point -> rules.

:func:`run_flow` is the single entry point used by both CLIs
(``python -m tools.reproflow`` and ``python -m tools.reprolint --deep``).
It always analyzes the whole ``src/`` tree -- reachability is a
whole-program property, so there is no per-path mode -- and reuses the
reprolint engine's project loader, suppression filter, and
:class:`~tools.reprolint.engine.Finding` type so deep findings ride the
existing reporter/baseline/exit-code contract unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from tools.reprolint.engine import (
    Finding,
    apply_suppressions,
    load_project,
)
from tools.reproflow.cache import CACHE_DIR_NAME, FactsCache, source_digest
from tools.reproflow.effects import Summaries, propagate
from tools.reproflow.extract import extract_module_facts
from tools.reproflow.graph import CallGraph, build_graph
from tools.reproflow.rules import ALL_FLOW_RULES

#: Reachability is whole-program: the deep pass always scans src/.
FLOW_PATHS: Sequence[str] = ("src",)


@dataclass
class FlowResult:
    """Outcome of one deep run: findings plus the analysis artifacts."""

    findings: List[Finding]
    parse_errors: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    graph: Optional[CallGraph] = None
    summaries: Optional[Summaries] = None
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def stats(self) -> Dict[str, int]:
        """The additive ``"deep"`` section of the JSON payload."""
        edges = sum(len(v) for v in self.graph.edges.values()) if self.graph else 0
        return {
            "functions": len(self.graph.functions) if self.graph else 0,
            "edges": edges,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


def gather_facts(
    root,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
    paths: Optional[Sequence[str]] = None,
):
    """Parse + extract (cache-backed) the facts both deep passes share.

    Returns ``(project, parse_errors, all_facts, cache_hits,
    cache_misses)``; used by :func:`run_flow` here and by
    :func:`tools.reprorace.analysis.run_race`.
    """
    root = Path(root).resolve()
    project, parse_errors = load_project(root, paths or FLOW_PATHS)

    cache = (
        FactsCache(cache_dir or (root / CACHE_DIR_NAME)) if use_cache else None
    )
    all_facts = []
    for ctx in project.files:
        digest = source_digest(ctx.source)
        facts = cache.get(ctx.rel, digest) if cache is not None else None
        if facts is None:
            facts = extract_module_facts(ctx.rel, ctx.tree)
            if cache is not None:
                cache.put(ctx.rel, digest, facts)
        all_facts.append(facts)
    if cache is not None:
        cache.save()
    hits = cache.hits if cache is not None else 0
    misses = cache.misses if cache is not None else 0
    return project, parse_errors, all_facts, hits, misses


def run_flow(
    root,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
    paths: Optional[Sequence[str]] = None,
) -> FlowResult:
    """Run the interprocedural analysis over ``src/`` under ``root``."""
    project, parse_errors, all_facts, hits, misses = gather_facts(
        root, use_cache=use_cache, cache_dir=cache_dir, paths=paths
    )

    graph = build_graph(all_facts)
    summaries = propagate(graph)

    rule_classes = list(ALL_FLOW_RULES)
    if select:
        wanted = set(select)
        rule_classes = [r for r in rule_classes if r.code in wanted]
    if ignore:
        unwanted = set(ignore)
        rule_classes = [r for r in rule_classes if r.code not in unwanted]

    raw: List[Finding] = []
    for cls in rule_classes:
        raw.extend(cls().check(graph, summaries))
    # Distinct roots can independently derive the same (code, path,
    # line) finding; chains are excluded from equality, so dedup here.
    raw = list(dict.fromkeys(raw))
    kept, suppressed = apply_suppressions(project, raw)

    return FlowResult(
        findings=kept,
        parse_errors=parse_errors,
        suppressed=suppressed,
        files_scanned=len(project.files),
        graph=graph,
        summaries=summaries,
        cache_hits=hits,
        cache_misses=misses,
    )


def find_functions(result: FlowResult, needle: str) -> List[str]:
    """Qualnames matching ``needle`` (exact, suffix, or bare name)."""
    if result.graph is None:
        return []
    matches = []
    for qualname, node in sorted(result.graph.functions.items()):
        if (
            qualname == needle
            or qualname.endswith(f".{needle}")
            or node.name == needle
        ):
            matches.append(qualname)
    return matches
