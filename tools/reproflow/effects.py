"""Effect lattice, fixed-point propagation, and witness chains.

A summary maps each function to the set of effects it can reach, and
each effect to its **provenance**:

    ("direct", line, detail)   the effect happens in this body
    ("call", callee, line)     acquired from ``callee`` at a call site

Propagation is a standard worklist least-fixed-point over the reversed
call graph: when a function's summary grows, its callers are re-queued.
Provenance is written exactly once, when an effect first enters a
summary -- at that moment the callee already carried the effect, so
following provenance hops strictly rewinds acquisition order and the
resulting witness chain is acyclic *by construction* (recursion cannot
loop a chain, it just converges the fixed point).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from tools.reprolint.engine import ChainHop
from tools.reproflow.graph import CallGraph

#: The full effect vocabulary, in display order.
EFFECTS: Tuple[str, ...] = (
    "blocks",
    "sleeps",
    "reads_clock",
    "reads_env",
    "unseeded_rng",
    "unordered_iteration",
    "takes_store_lock",
    "store_write",
    "mutates_module_state",
)

#: qualname -> {effect: provenance}.
Summaries = Dict[str, Dict[str, Tuple]]


def propagate(graph: CallGraph) -> Summaries:
    """Least fixed point of effect summaries over the call graph."""
    summaries: Summaries = {q: {} for q in graph.functions}
    worklist: deque = deque()
    for qualname, effects in graph.direct_effects.items():
        if qualname not in summaries:
            continue
        for effect, (line, detail) in effects.items():
            summaries[qualname][effect] = ("direct", line, detail)
        worklist.append(qualname)

    while worklist:
        callee = worklist.popleft()
        for caller, line in graph.callers.get(callee, ()):
            if caller not in summaries:
                continue
            grown = False
            for effect in summaries[callee]:
                if effect not in summaries[caller]:
                    summaries[caller][effect] = ("call", callee, line)
                    grown = True
            if grown:
                worklist.append(caller)
    return summaries


def short_name(qualname: str) -> str:
    """Last two dotted components: ``pool.run_sharded``, ``C.method``."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def witness_chain(
    graph: CallGraph, summaries: Summaries, qualname: str, effect: str
) -> Tuple[List[ChainHop], List[str]]:
    """The provenance chain of ``effect`` starting at ``qualname``.

    Returns ``(hops, qualnames)`` where the final hop carries the
    direct-effect detail and every earlier hop names the call it took.
    """
    hops: List[ChainHop] = []
    quals: List[str] = []
    current = qualname
    while True:
        provenance = summaries[current].get(effect)
        node = graph.functions[current]
        quals.append(current)
        if provenance is None:  # pragma: no cover - defensive
            break
        if provenance[0] == "direct":
            hops.append(
                ChainHop(
                    function=current,
                    path=node.path,
                    line=provenance[1],
                    note=provenance[2],
                )
            )
            break
        _, callee, line = provenance
        hops.append(
            ChainHop(
                function=current,
                path=node.path,
                line=line,
                note=f"calls {short_name(callee)}",
            )
        )
        current = callee
    return hops, quals


def format_chain(hops: List[ChainHop]) -> str:
    """Terse one-line chain: ``f -> g -> h: h calls time.sleep()``."""
    if not hops:
        return ""
    names = " -> ".join(short_name(h.function) for h in hops)
    return f"{names}: {hops[-1].note}"
