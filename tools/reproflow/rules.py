"""The repro-flow rule registry: cross-file ``RPL1xx`` reachability gates.

Flow rules consume the linked call graph plus the fixed-point effect
summaries and report findings whose locations are *definitions or call
sites* -- the place a maintainer can act -- while the attached witness
chain (``Finding.chain``) proves how the offending effect is reached.
Per-line suppressions and the shrink-only baseline apply exactly as for
the per-file RPL0xx rules.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from tools.reprolint.engine import Finding
from tools.reproflow.effects import (
    Summaries,
    format_chain,
    short_name,
    witness_chain,
)
from tools.reproflow.graph import CallGraph


class FlowRule:
    """One cross-file reachability invariant."""

    code: str = "RPL199"
    name: str = "unnamed"
    summary: str = ""

    def check(self, graph: CallGraph, summaries: Summaries) -> List[Finding]:
        raise NotImplementedError


class TransitiveAsyncBlockingRule(FlowRule):
    """RPL006 sees a blocking call lexically inside an ``async def``;
    this rule sees one reachable through any chain of *sync* helpers.
    A chain that passes through another ``async def`` is skipped -- that
    coroutine gets its own finding, closer to the offending call."""

    code = "RPL101"
    name = "transitive-async-blocking"
    summary = (
        "no blocking effect reachable through sync helpers from an "
        "async def in serve/ (interprocedural RPL006)"
    )
    SCOPE = "src/repro/serve/"

    def check(self, graph: CallGraph, summaries: Summaries) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in sorted(graph.functions):
            node = graph.functions[qualname]
            if not node.is_async or not node.path.startswith(self.SCOPE):
                continue
            provenance = summaries[qualname].get("blocks")
            if provenance is None or provenance[0] == "direct":
                continue  # the direct case is RPL006's (per-file) job
            hops, quals = witness_chain(graph, summaries, qualname, "blocks")
            if any(graph.functions[q].is_async for q in quals[1:]):
                continue
            findings.append(
                Finding(
                    code=self.code,
                    path=node.path,
                    line=node.line,
                    col=0,
                    message=(
                        f"'async def {node.name}' transitively blocks the "
                        f"event loop: {format_chain(hops)}; hand the sync "
                        "work to an executor or use the injected clock"
                    ),
                    chain=tuple(hops),
                )
            )
        return findings


class HotPathPurityRule(FlowRule):
    """Nothing reachable from a decode hot hook may read the
    environment or the clock, touch the store, or draw unseeded
    randomness -- the bitwise-reproducibility contract, enforced
    transitively across the whole decoder zoo."""

    code = "RPL102"
    name = "hot-path-purity"
    summary = (
        "nothing reachable from decode_uniques/predecode_uniques/"
        "decode_batch overrides may carry env/clock/store/unseeded-RNG "
        "effects"
    )
    HOT_HOOKS = frozenset({"decode_uniques", "predecode_uniques", "decode_batch"})
    BANNED: Tuple[str, ...] = (
        "reads_env",
        "reads_clock",
        "store_write",
        "takes_store_lock",
        "unseeded_rng",
    )

    def check(self, graph: CallGraph, summaries: Summaries) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in sorted(graph.functions):
            node = graph.functions[qualname]
            if (
                node.cls is None
                or node.name not in self.HOT_HOOKS
                or not node.path.startswith("src/")
            ):
                continue
            for effect in self.BANNED:
                if effect not in summaries[qualname]:
                    continue
                hops, _ = witness_chain(graph, summaries, qualname, effect)
                findings.append(
                    Finding(
                        code=self.code,
                        path=node.path,
                        line=node.line,
                        col=0,
                        message=(
                            f"hot path {short_name(qualname)} reaches "
                            f"{effect}: {format_chain(hops)}; resolve it at "
                            "construction time, not per decode"
                        ),
                        chain=tuple(hops),
                    )
                )
        return findings


class StoreLockReachabilityRule(FlowRule):
    """Every function that append-writes must acquire the store lock
    itself or via something it calls -- RPL005 polices *where* appends
    live; this rule proves each writer actually reaches ``fcntl``."""

    code = "RPL103"
    name = "store-lock-reachability"
    summary = (
        "append-writes must reach a lock acquisition (fcntl) in their "
        "own call subtree -- the store's multi-writer discipline"
    )

    def check(self, graph: CallGraph, summaries: Summaries) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in sorted(graph.direct_effects):
            if "store_write" not in graph.direct_effects.get(qualname, {}):
                continue
            node = graph.functions.get(qualname)
            if node is None or not node.path.startswith("src/"):
                continue
            if "takes_store_lock" in summaries[qualname]:
                continue
            line, detail = graph.direct_effects[qualname]["store_write"]
            hops, _ = witness_chain(graph, summaries, qualname, "store_write")
            findings.append(
                Finding(
                    code=self.code,
                    path=node.path,
                    line=node.line,
                    col=0,
                    message=(
                        f"{short_name(qualname)} append-writes "
                        f"({detail}, line {line}) without acquiring the "
                        "store lock anywhere in its call subtree; route "
                        "the write through the locked store helpers"
                    ),
                    chain=tuple(hops),
                )
            )
        return findings


class WorkerBoundaryRule(FlowRule):
    """A function shipped to a :class:`WorkerPool` runs in a forked
    child: mutating module state there silently diverges from the
    parent.  Flags payloads whose call subtree assigns globals or
    module attributes."""

    code = "RPL104"
    name = "worker-boundary"
    summary = (
        "no module-state mutation reachable from WorkerPool task "
        "payloads (run_sharded / pool.map worker functions)"
    )

    def check(self, graph: CallGraph, summaries: Summaries) -> List[Finding]:
        findings: List[Finding] = []
        for caller, target, line, via in sorted(graph.payloads):
            if target not in summaries:
                continue
            if "mutates_module_state" not in summaries[target]:
                continue
            caller_node = graph.functions[caller]
            if not caller_node.path.startswith("src/"):
                continue
            hops, _ = witness_chain(
                graph, summaries, target, "mutates_module_state"
            )
            findings.append(
                Finding(
                    code=self.code,
                    path=caller_node.path,
                    line=line,
                    col=0,
                    message=(
                        f"worker payload {short_name(target)} (via {via}) "
                        f"mutates module state: {format_chain(hops)}; "
                        "pass state through the shared-context argument "
                        "instead"
                    ),
                    chain=tuple(hops),
                )
            )
        return findings


ALL_FLOW_RULES: Tuple[type, ...] = (
    TransitiveAsyncBlockingRule,
    HotPathPurityRule,
    StoreLockReachabilityRule,
    WorkerBoundaryRule,
)


def flow_rules_by_code() -> Dict[str, type]:
    return {rule.code: rule for rule in ALL_FLOW_RULES}
