"""Per-file fact extraction: the cacheable half of repro-flow.

One call to :func:`extract_module_facts` turns a parsed module into a
JSON-safe dict of *local* facts -- every function and class defined in
the file, each function's direct effects, and each call site classified
just far enough (``name`` / ``self`` / ``dotted`` / ``attr``) for the
cross-file linker in :mod:`tools.reproflow.graph` to resolve later.
Nothing here looks outside the file, which is what makes the output
safe to key by content hash (:mod:`tools.reproflow.cache`).

Effect vocabulary (the lattice is just "set of effect names"):

    blocks                any RPL006-blocking call (sleep, sync file
                          I/O, subprocess, sync sockets)
    sleeps                time.sleep specifically (subset of blocks)
    reads_clock           wall-clock reads (time.time, monotonic, ...)
    reads_env             os.environ / os.getenv access
    unseeded_rng          stdlib random.*, legacy numpy.random.*, or
                          seedless default_rng()
    unordered_iteration   iterating a set or unsorted dict view
    takes_store_lock      fcntl.* call (the store's flock discipline)
    store_write           append-mode open / os.open(O_APPEND)
    mutates_module_state  assignment to a ``global`` name or a module
                          attribute

The banned-name sets are imported from the reprolint rules so the two
tools can never drift on what counts as, say, a clock read.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Tuple

from tools.reprolint.rules import (
    AsyncBlockingRule,
    ImportMap,
    KnobDisciplineRule,
    SetIterationRule,
    UnseededRandomnessRule,
    WallClockRule,
    _iteration_sites,
)
from tools.reprorace.extract import (
    RaceExtractor,
    module_class_names,
    module_state_names,
)

#: Clock *reads* -- RPL001's banned set minus the sleep (which is a
#: block, not a read).
CLOCK_READS = frozenset(WallClockRule.BANNED - {"time.sleep"})
ENV_ACCESS = KnobDisciplineRule.BANNED
SLEEP_CALLS = frozenset({"time.sleep"})

#: Worker-payload call shapes (RPL104): ``run_sharded(shared, fn, ...)``
#: and ``pool.map(shared, fn, tasks)`` pass ``fn`` into child processes.
PAYLOAD_BY_NAME = {"run_sharded": 1}
PAYLOAD_METHOD = ("map", 3, 1)  # (attr, exact positional argc, payload index)


def module_name(rel: str) -> str:
    """Dotted module path of a repo-relative file (``src/`` stripped)."""
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)


def _attribute_parts(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None if the base is not a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _own_body_nodes(func: ast.AST) -> List[ast.AST]:
    """Every AST node of a def's body, *excluding* nested defs/classes.

    Nested functions are separate call-graph nodes: their effects reach
    the parent only if the parent actually calls them by name, so an
    executor handoff (``run_in_executor(None, helper)``) never leaks
    the helper's blocking effect into the async caller.
    """
    nodes: List[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            nodes.append(child)
            visit(child)

    for stmt in func.body:
        nodes.append(stmt)
        visit(stmt)
    return nodes


class _Extractor:
    def __init__(self, rel: str, tree: ast.AST) -> None:
        self.rel = rel
        self.module = module_name(rel)
        self.imports = ImportMap(tree)
        self.functions: List[Dict[str, Any]] = []
        self.classes: List[Dict[str, Any]] = []
        self._set_rule = SetIterationRule()
        self.state_names = module_state_names(tree)
        self._race = RaceExtractor(
            self.imports,
            self.module,
            self.state_names,
            module_class_names(tree),
        )

    def run(self, tree: ast.AST) -> Dict[str, Any]:
        self._visit_block(tree, prefix=self.module, cls=None, parent=None)
        return {
            "path": self.rel,
            "module": self.module,
            "imports": {
                "modules": dict(self.imports.modules),
                "members": dict(self.imports.members),
            },
            "module_state": sorted(self.state_names),
            "functions": self.functions,
            "classes": self.classes,
        }

    # -- structure walk ------------------------------------------------

    def _visit_block(
        self,
        node: ast.AST,
        prefix: str,
        cls: Optional[str],
        parent: Optional[str],
    ) -> None:
        """Find defs/classes in a statement block (through if/try/with)."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(child, prefix, cls, parent)
            elif isinstance(child, ast.ClassDef):
                self._class(child, prefix)
            elif not isinstance(child, ast.expr):
                self._visit_block(child, prefix, cls, parent)

    def _class(self, node: ast.ClassDef, prefix: str) -> None:
        qualname = f"{prefix}.{node.name}"
        bases: List[str] = []
        for base in node.bases:
            resolved = self.imports.resolve(base)
            if resolved is None:
                parts = _attribute_parts(base)
                resolved = ".".join(parts) if parts else None
            if resolved is not None:
                bases.append(resolved)
        methods: Dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[stmt.name] = f"{qualname}.{stmt.name}"
                self._function(stmt, qualname, cls=qualname, parent=None)
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt, qualname)
        self.classes.append(
            {
                "qualname": qualname,
                "name": node.name,
                "line": node.lineno,
                "bases": bases,
                "methods": methods,
            }
        )

    def _function(
        self,
        node: ast.AST,
        prefix: str,
        cls: Optional[str],
        parent: Optional[str],
    ) -> None:
        qualname = f"{prefix}.{node.name}"
        body = _own_body_nodes(node)
        effects = self._direct_effects(node, body)
        calls, payloads = self._calls(body)
        record = {
            "qualname": qualname,
            "name": node.name,
            "line": node.lineno,
            "is_async": isinstance(node, ast.AsyncFunctionDef),
            "cls": cls,
            "parent": parent,
            "effects": effects,
            "calls": calls,
            "payloads": payloads,
        }
        initializers = self._initializers(body)
        if initializers:
            record["initializers"] = initializers
        race = self._race.function_facts(node)
        if race:
            record["race"] = race
        self.functions.append(record)
        # Nested defs keep the enclosing method's class binding: their
        # ``self.m()`` calls still dispatch on the enclosing class.
        self._visit_nested(node, qualname, cls)

    def _visit_nested(
        self, func: ast.AST, qualname: str, cls: Optional[str]
    ) -> None:
        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._function(child, qualname, cls, parent=qualname)
                elif isinstance(child, ast.ClassDef):
                    self._class(child, qualname)
                else:
                    visit(child)

        for stmt in func.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, qualname, cls, parent=qualname)
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt, qualname)
            else:
                visit(stmt)

    # -- direct effects ------------------------------------------------

    def _direct_effects(
        self, func: ast.AST, body: List[ast.AST]
    ) -> Dict[str, List[Any]]:
        effects: Dict[str, List[Any]] = {}

        def add(effect: str, node: ast.AST, detail: str) -> None:
            if effect not in effects:
                effects[effect] = [getattr(node, "lineno", 1), detail]

        global_names: set = set()
        for node in body:
            if isinstance(node, ast.Global):
                global_names.update(node.names)

        for node in body:
            if isinstance(node, ast.Call):
                self._call_effects(node, add)
            elif isinstance(node, (ast.Attribute, ast.Name)):
                target = self.imports.resolve(node)
                if target in ENV_ACCESS:
                    add("reads_env", node, f"reads {target}")
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in global_names:
                        add(
                            "mutates_module_state",
                            node,
                            f"assigns global {target.id}",
                        )
                    elif isinstance(target, ast.Attribute):
                        dotted = self.imports.resolve(target)
                        if dotted is not None:
                            add(
                                "mutates_module_state",
                                node,
                                f"assigns module attribute {dotted}",
                            )

        set_names = self._set_rule._set_names(func)
        for holder, iterable in _iteration_sites(func):
            if self._set_rule._in_nested_scope(func, holder):
                continue
            if self._set_rule._is_set_expr(iterable, set_names):
                add("unordered_iteration", iterable, "iterates a set")
            elif self._set_rule._is_unsorted_dict_view(iterable):
                add(
                    "unordered_iteration",
                    iterable,
                    "iterates an unsorted dict view",
                )
        return effects

    def _call_effects(self, call: ast.Call, add) -> None:
        dotted = self.imports.resolve(call.func)
        if dotted is not None:
            if dotted in SLEEP_CALLS:
                add("sleeps", call, f"calls {dotted}()")
                add("blocks", call, f"calls {dotted}()")
            elif dotted in CLOCK_READS:
                add("reads_clock", call, f"calls {dotted}()")
            if dotted in AsyncBlockingRule.BANNED_EXACT or dotted.startswith(
                AsyncBlockingRule.BANNED_PREFIX
            ):
                add("blocks", call, f"calls {dotted}()")
            if dotted.startswith("random."):
                add("unseeded_rng", call, f"calls {dotted}() (global stdlib RNG)")
            elif dotted == "numpy.random.default_rng":
                if UnseededRandomnessRule._unseeded(call):
                    add("unseeded_rng", call, "calls default_rng() without a seed")
            elif dotted.startswith("numpy.random."):
                leaf = dotted.rsplit(".", 1)[1]
                if leaf not in UnseededRandomnessRule.NUMPY_OK:
                    add(
                        "unseeded_rng",
                        call,
                        f"calls legacy {dotted}() (hidden global state)",
                    )
            if dotted.startswith("fcntl."):
                add("takes_store_lock", call, f"calls {dotted}()")
            if dotted == "os.open":
                for arg in ast.walk(call):
                    if isinstance(arg, ast.Attribute) and arg.attr == "O_APPEND":
                        add("store_write", call, "os.open(..., O_APPEND)")
                        break
        is_builtin_open = (
            isinstance(call.func, ast.Name) and call.func.id == "open"
        )
        is_method_open = (
            isinstance(call.func, ast.Attribute) and call.func.attr == "open"
        )
        if is_builtin_open or dotted == "io.open" or is_method_open:
            mode = self._mode_argument(call, second=is_builtin_open or dotted == "io.open")
            if mode is not None and "a" in mode:
                add("store_write", call, f"append-mode open ({mode!r})")
        if is_builtin_open:
            add("blocks", call, "sync file open()")
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in AsyncBlockingRule.BLOCKING_METHODS
        ):
            add("blocks", call, f"sync file .{call.func.attr}()")

    @staticmethod
    def _mode_argument(node: ast.Call, second: bool) -> Optional[str]:
        position = 1 if second else 0
        if len(node.args) > position:
            candidate = node.args[position]
            if isinstance(candidate, ast.Constant) and isinstance(
                candidate.value, str
            ):
                return candidate.value
        for kw in node.keywords:
            if (
                kw.arg == "mode"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                return kw.value.value
        return None

    # -- call sites ----------------------------------------------------

    def _calls(
        self, body: List[ast.AST]
    ) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
        calls: List[Dict[str, Any]] = []
        payloads: List[Dict[str, Any]] = []
        for node in body:
            if not isinstance(node, ast.Call):
                continue
            record = self._classify_call(node)
            if record is not None:
                calls.append(record)
            payload = self._classify_payload(node)
            if payload is not None:
                payloads.append(payload)
        return calls, payloads

    def _classify_call(self, call: ast.Call) -> Optional[Dict[str, Any]]:
        line = call.lineno
        dotted = self.imports.resolve(call.func)
        if dotted is not None:
            return {"kind": "dotted", "dotted": dotted, "line": line}
        func = call.func
        if isinstance(func, ast.Name):
            return {"kind": "name", "name": func.id, "line": line}
        if isinstance(func, ast.Attribute):
            parts = _attribute_parts(func)
            if parts is None:
                return None
            if parts[0] in ("self", "cls") and len(parts) == 2:
                return {"kind": "self", "attr": parts[1], "line": line}
            return {"kind": "attr", "parts": parts, "line": line}
        return None

    def _classify_payload(self, call: ast.Call) -> Optional[Dict[str, Any]]:
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        index = None
        via = None
        if name in PAYLOAD_BY_NAME and len(call.args) > PAYLOAD_BY_NAME[name]:
            index, via = PAYLOAD_BY_NAME[name], name
        elif (
            isinstance(func, ast.Attribute)
            and name == PAYLOAD_METHOD[0]
            and len(call.args) == PAYLOAD_METHOD[1]
        ):
            index, via = PAYLOAD_METHOD[2], f".{name}"
        if index is None:
            return None
        target = call.args[index]
        if isinstance(target, ast.Name):
            return {"kind": "name", "name": target.id, "line": call.lineno, "via": via}
        dotted = self.imports.resolve(target)
        if dotted is not None:
            return {"kind": "dotted", "dotted": dotted, "line": call.lineno, "via": via}
        return None

    def _initializers(self, body: List[ast.AST]) -> List[Dict[str, Any]]:
        """``Pool(..., initializer=fn)`` targets: post-fork child entry
        points.  Kept separate from ``payloads`` -- an initializer is
        *expected* to mutate child globals (that is its whole job), so
        RPL104 must not fire on it; it only seeds the ``child`` context
        in repro-race."""
        found: List[Dict[str, Any]] = []
        for node in body:
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != "initializer":
                    continue
                target = kw.value
                if isinstance(target, ast.Name):
                    found.append(
                        {
                            "kind": "name",
                            "name": target.id,
                            "line": node.lineno,
                            "via": "initializer",
                        }
                    )
                else:
                    dotted = self.imports.resolve(target)
                    if dotted is not None:
                        found.append(
                            {
                                "kind": "dotted",
                                "dotted": dotted,
                                "line": node.lineno,
                                "via": "initializer",
                            }
                        )
        return found


def extract_module_facts(rel: str, tree: ast.AST) -> Dict[str, Any]:
    """All local facts of one parsed module, as a JSON-safe dict."""
    return _Extractor(rel, tree).run(tree)
