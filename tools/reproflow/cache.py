"""Content-hash-keyed facts cache for incremental deep runs.

The expensive per-file step -- AST fact extraction -- is pure in the
file's source text, so its output is cached under
``<root>/.reproflow_cache/facts.json`` keyed by ``sha256(source)`` and
:data:`tools.reproflow.ANALYSIS_VERSION`.  Cross-file linking and
fixed-point propagation are always recomputed (they are cheap and
depend on the whole file set).  CI runs the deep pass twice and asserts
``cache_hits > 0`` on the second run.

Hygiene: :meth:`FactsCache.save` prunes entries that this run never
touched (files deleted or renamed since the entry was written) and
entries carrying a superseded ``ANALYSIS_VERSION`` -- without it the
index only ever grows, accreting dead keys across schema bumps and
refactors.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from tools.reproflow import ANALYSIS_VERSION

CACHE_DIR_NAME = ".reproflow_cache"


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class FactsCache:
    """One JSON index mapping rel path -> (digest, version, facts)."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "facts.json"
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._touched: set = set()
        self._data: Dict[str, Dict[str, Any]] = {}
        try:
            loaded = json.loads(self.path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict):
                self._data = loaded
        except (OSError, ValueError):
            self._data = {}

    def get(self, rel: str, digest: str) -> Optional[Dict[str, Any]]:
        self._touched.add(rel)
        entry = self._data.get(rel)
        if (
            entry is not None
            and entry.get("digest") == digest
            and entry.get("version") == ANALYSIS_VERSION
        ):
            self.hits += 1
            return entry["facts"]
        self.misses += 1
        return None

    def put(self, rel: str, digest: str, facts: Dict[str, Any]) -> None:
        self._touched.add(rel)
        self._data[rel] = {
            "digest": digest,
            "version": ANALYSIS_VERSION,
            "facts": facts,
        }
        self._dirty = True

    def _prune(self) -> None:
        """Drop entries for files this run never saw and entries from
        superseded analysis versions."""
        stale = [
            rel
            for rel, entry in self._data.items()
            if rel not in self._touched
            or entry.get("version") != ANALYSIS_VERSION
        ]
        for rel in stale:
            del self._data[rel]
            self._dirty = True

    def save(self) -> None:
        self._prune()
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self._data), encoding="utf-8")
        os.replace(tmp, self.path)
        self._dirty = False
