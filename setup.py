"""Setuptools shim for environments without the ``wheel`` package.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-build-isolation --no-use-pep517`` works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Promatch: adaptive predecoding for real-time "
        "quantum error correction (ASPLOS 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.8", "networkx>=2.8"],
)
