#!/usr/bin/env python
"""Decoder shoot-out: the paper's Table 2 in miniature.

Evaluates every configuration of the paper (idealized MWPM, Astrea-G,
Promatch+Astrea, Smith+Astrea, Clique+Astrea and the parallel combos) on
a *shared* workload using the paper's Eq. (1) importance estimator, then
prints a Table-2-style comparison.

Scaled for a coffee break (d=9, modest shots); crank the constants for
sharper numbers, or run the full benchmark:

    pytest benchmarks/bench_table2_ler.py --benchmark-only -s

Run:  python examples/compare_decoders.py
"""

from repro import build_workbench
from repro.eval.ler import estimate_ler_suite
from repro.eval.reporting import format_ratio, format_scientific, format_table

DISTANCE = 9
P = 1e-4
SHOTS_PER_K = 120
K_MAX = 14


def main() -> None:
    bench = build_workbench(distance=DISTANCE, p=P, rng=11)
    components = {
        name: bench.decoders[name]
        for name in ("MWPM", "Promatch+Astrea", "Astrea-G", "Smith+Astrea",
                     "Clique+Astrea")
    }
    parallel = {
        "Promatch || AG": ("Promatch+Astrea", "Astrea-G"),
        "Smith || AG": ("Smith+Astrea", "Astrea-G"),
    }
    print(f"Estimating LER via Eq. (1): d={DISTANCE}, p={P}, "
          f"{SHOTS_PER_K} shots x k=1..{K_MAX} ...")
    results = estimate_ler_suite(
        components, parallel, bench.dem, P,
        k_max=K_MAX, shots_per_k=SHOTS_PER_K, rng=3,
    )

    baseline = results["MWPM"].ler
    rows = []
    for name in ("MWPM", "Promatch || AG", "Promatch+Astrea", "Astrea-G",
                 "Smith || AG", "Smith+Astrea", "Clique+Astrea"):
        r = results[name]
        rows.append([
            name,
            format_scientific(r.ler),
            format_ratio(r.ler, baseline) if r.ler else "-",
            f"<= {format_scientific(r.ler_high)}",
        ])
    print()
    print(format_table(
        ["Decoder", "LER (Eq. 1)", "vs MWPM", "95% upper"],
        rows,
        title=f"Decoder comparison, d={DISTANCE}, p={P}",
    ))
    print("\nPer-k failure profile (Astrea-G):")
    for k, po, estimate in results["Astrea-G"].per_k:
        if estimate.rate > 0:
            print(f"  k={k:2d}  P_o={po:.2e}  P_f={estimate}")


if __name__ == "__main__":
    main()
