#!/usr/bin/env python
"""The paper's core insight, step by step (Figures 7 and 9).

Builds the exact error patterns from the paper on a synthetic decoding
graph and walks through what a naive weight-greedy matcher does versus
what Promatch's singleton-avoidance rule does, printing every round.

Run:  python examples/complex_patterns.py
"""

from repro.core import PromatchPredecoder
from repro.core.steps import find_edge_candidates
from repro.graph.decoding_graph import DecodingGraph, GraphEdge
from repro.graph.subgraph import DecodingSubgraph
from repro.utils.bits import weight_to_probability


def make_graph(n_nodes, edges, boundary_weight=50.0):
    graph_edges = [
        GraphEdge(u=u, v=v, probability=weight_to_probability(w),
                  weight=w, observable_mask=0)
        for u, v, w in edges
    ]
    graph_edges += [
        GraphEdge(u=u, v=-1, probability=weight_to_probability(boundary_weight),
                  weight=boundary_weight, observable_mask=0)
        for u in range(n_nodes)
    ]
    return DecodingGraph(n_nodes=n_nodes, edges=graph_edges)


def figure7() -> None:
    print("=" * 64)
    print("Figure 7: the 4-chain  1 -- 2 -- 3 -- 4")
    print("  edge weights: (1,2)=2.0  (2,3)=1.5  (3,4)=2.0")
    print("  The middle edge is the *cheapest*, but matching it strands")
    print("  bits 1 and 4 as singletons: total cost 1.5 + 2x50 boundary.")
    print()
    graph = make_graph(4, [(0, 1, 2.0), (1, 2, 1.5), (2, 3, 2.0)])
    subgraph = DecodingSubgraph(graph, [0, 1, 2, 3])

    candidates = find_edge_candidates(subgraph)
    for step, candidate in candidates.items():
        if candidate:
            print(f"  step {step}: edge ({candidate.i}, {candidate.j}) "
                  f"weight {candidate.weight}")
    print()
    promatch = PromatchPredecoder(graph, main_capability=0)
    report = promatch.predecode((0, 1, 2, 3))
    print(f"  Promatch matched {report.pairs} "
          f"(deepest step: {report.steps_used}, "
          f"total weight {report.weight:.1f})")
    print("  -> the correct (1,2)+(3,4) pairing at weight 4.0, not the")
    print("     greedy middle match that would cost ~101.5.")


def figure9() -> None:
    print()
    print("=" * 64)
    print("Figure 9: bit a with three dependents b, c, d; e backed by f")
    print()
    graph = make_graph(
        6,
        [(0, 1, 1.0), (0, 2, 1.2), (0, 3, 1.4), (0, 4, 1.6), (4, 5, 1.1)],
    )
    subgraph = DecodingSubgraph(graph, [0, 1, 2, 3, 4, 5])
    names = "abcdef"
    for i in range(6):
        print(f"  bit {names[i]}: degree {subgraph.degree[i]}, "
              f"#dependent {subgraph.dependent[i]}")
    print()
    print("  Matching (a, b) would strand c and d -> Promatch refuses it;")
    print("  the only safe degree-1 match is (e, f):")
    candidates = find_edge_candidates(subgraph)
    best = candidates["2.1"]
    print(f"  step 2.1 candidate: ({names[best.i]}, {names[best.j]}) "
          f"weight {best.weight}")


def main() -> None:
    figure7()
    figure9()
    print()
    print("=" * 64)
    print("This locality-aware rule is Section 3 of the paper in action:")
    print("matching decisions that avoid creating singletons keep every")
    print("remaining bit matchable at chain length 1 -- the cheap, likely")
    print("corrections -- and break complex patterns into simple ones.")


if __name__ == "__main__":
    main()
