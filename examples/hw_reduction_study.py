#!/usr/bin/env python
"""Coverage study: what does each predecoder leave behind?

Reproduces the paper's Figures 16/17 in miniature: sample syndromes with
Hamming weight above Astrea's limit, run each predecoder, and histogram
the residual Hamming weight.  The punchline:

* Promatch adapts: residuals land at 10 (or 8/6 under time pressure),
  never above -- Astrea always finishes.
* Smith sweeps blindly: residuals scatter from 0 (over-coverage, wasted
  accuracy) to above 10 (coverage failure, guaranteed real-time loss).
* Clique is all-or-nothing: almost every high-HW syndrome passes through
  untouched.

Run:  python examples/hw_reduction_study.py
"""

from repro import build_workbench
from repro.core import PromatchPredecoder
from repro.decoders import CliquePredecoder, SmithPredecoder
from repro.eval.experiments import hw_reduction_census
from repro.eval.reporting import format_histogram

DISTANCE = 11
P = 1e-4


def main() -> None:
    bench = build_workbench(distance=DISTANCE, p=P, rng=31)
    print(f"Sampling HW > 10 syndromes at d={DISTANCE}, p={P} ...")
    batch = bench.sample_high_hw(shots_per_k=120, k_max=16)
    print(f"  {batch.shots} syndromes "
          f"(total occurrence probability {batch.weights.sum():.2e})\n")

    histograms = hw_reduction_census(
        bench.graph,
        batch,
        {
            "Promatch": PromatchPredecoder(bench.graph),
            "Smith": SmithPredecoder(bench.graph),
            "Clique": CliquePredecoder(bench.graph),
        },
        n_bins=36,
    )

    for name in ("before", "Promatch", "Smith", "Clique"):
        print(format_histogram(
            histograms[name],
            title=f"Residual Hamming weight -- {name}",
        ))
        above = sum(histograms[name][11:])
        print(f"  mass above Astrea's HW=10 limit: {above:.3e}\n")

    promatch_above = sum(histograms["Promatch"][11:])
    smith_above = sum(histograms["Smith"][11:])
    print("Conclusion: Promatch leaves", promatch_above, "probability mass "
          "above the real-time limit;")
    print("Smith leaves", f"{smith_above:.3e}", "-- every bit of it is a "
          "guaranteed decoding failure.")


if __name__ == "__main__":
    main()
