#!/usr/bin/env python
"""Watch Promatch think: a round-by-round trace on real syndromes.

Samples a high-Hamming-weight distance-11 syndrome and prints every
predecoding round -- subgraph size, step engaged, pairs committed,
cycles charged -- followed by the hand-off to Astrea.  The adaptive stop
is visible directly: the trace ends the moment the residual Hamming
weight (and the remaining time) fits the main decoder.

Run:  python examples/predecoding_trace.py
"""

from repro import build_workbench
from repro.core import PromatchPredecoder
from repro.decoders import AstreaDecoder
from repro.eval.reporting import format_table
from repro.hardware.latency import astrea_cycles, cycles_to_ns

DISTANCE = 11
P = 1e-4


def trace_one(bench, events) -> None:
    promatch = PromatchPredecoder(bench.graph, collect_trace=True)
    report = promatch.predecode(events)
    print(f"Syndrome: HW {len(events)} -> residual HW {len(report.remaining)}"
          f" in {report.rounds} round(s), {report.cycles:.0f} cycles "
          f"({cycles_to_ns(report.cycles):.0f} ns)")
    rows = [
        [
            str(t.round_index),
            str(t.hamming_weight),
            str(t.n_edges),
            t.step or "-",
            ", ".join(f"({u},{v})" for u, v in t.committed) or "-",
            f"{t.cycles:.0f}",
        ]
        for t in report.trace
    ]
    print(format_table(
        ["round", "HW", "edges", "step", "committed pairs", "cycles"], rows
    ))
    astrea = AstreaDecoder(bench.graph)
    main_cycles = astrea_cycles(len(report.remaining))
    result = astrea.decode(
        report.remaining, budget_cycles=promatch.budget_cycles - report.cycles
    )
    print(f"Hand-off: Astrea decodes HW {len(report.remaining)} in "
          f"{main_cycles} cycles ({cycles_to_ns(main_cycles):.0f} ns) -> "
          f"{'OK' if result.success else 'FAIL'}; total "
          f"{cycles_to_ns(report.cycles + main_cycles):.0f} ns of 960 ns budget")
    print()


def main() -> None:
    bench = build_workbench(distance=DISTANCE, p=P, rng=97)
    print(f"Sampling high-HW syndromes (d={DISTANCE}, p={P}) ...\n")
    batch = bench.sample_high_hw(shots_per_k=60, k_max=14)
    # Show a few syndromes of increasing Hamming weight.
    by_weight = sorted(batch.events, key=len)
    shown = [by_weight[0], by_weight[len(by_weight) // 2], by_weight[-1]]
    for events in shown:
        trace_one(bench, events)


if __name__ == "__main__":
    main()
