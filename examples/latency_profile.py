#!/usr/bin/env python
"""Real-time budget analysis: where do the 960 nanoseconds go?

Profiles Promatch's predecoding rounds and Astrea's search on
high-Hamming-weight syndromes at distance 11 (the paper's Tables 4-6),
using the cycle-accurate hardware model: 250 MHz, edge-scans per round,
involution-sized brute-force search.

Run:  python examples/latency_profile.py
"""

from repro import build_workbench
from repro.core import PromatchPredecoder
from repro.decoders import AstreaDecoder
from repro.eval.experiments import latency_census, step_usage_census
from repro.eval.reporting import format_table
from repro.hardware.latency import BUDGET_CYCLES, astrea_cycles, cycles_to_ns

DISTANCE = 11
P = 1e-4


def main() -> None:
    bench = build_workbench(distance=DISTANCE, p=P, rng=23)
    promatch = PromatchPredecoder(bench.graph)
    astrea = AstreaDecoder(bench.graph)

    print("Astrea's search cost by Hamming weight (the capability cliff):")
    rows = [
        [str(hw), str(astrea_cycles(hw)), f"{cycles_to_ns(astrea_cycles(hw)):.0f}",
         "yes" if astrea_cycles(hw) <= BUDGET_CYCLES else "NO"]
        for hw in (2, 4, 6, 8, 10, 12)
    ]
    print(format_table(["HW", "cycles", "ns", "fits 960 ns?"], rows))
    print("\n=> HW 12 cannot fit: this is why high-HW syndromes need a "
          "predecoder.\n")

    print(f"Sampling high-HW syndromes at d={DISTANCE}, p={P} ...")
    batch = bench.sample_high_hw(shots_per_k=120, k_max=16)
    print(f"  {batch.shots} syndromes with HW > 10 "
          f"(max HW {batch.hamming_weights().max()})")

    census = latency_census(bench.graph, batch, promatch, astrea)
    print(format_table(
        ["Phase", "avg (ns)", "max (ns)"],
        [
            ["Promatch predecode", f"{census.predecode_avg_ns:.1f}",
             f"{census.predecode_max_ns:.0f}"],
            ["predecode + Astrea", f"{census.total_avg_ns:.1f}",
             f"{census.total_max_ns:.0f}"],
        ],
        title="Latency on HW>10 syndromes (paper Tables 4/5)",
    ))
    print(f"  deadline misses: probability "
          f"{census.deadline_miss_probability:.2e} (paper: ~1e-17)")

    usage = step_usage_census(batch, promatch)
    print()
    print(format_table(
        ["Promatch step", "fraction of syndromes"],
        [[f"Step {s}", f"{frac:.3e}"] for s, frac in usage.items()],
        title="Deepest step engaged (paper Table 6)",
    ))


if __name__ == "__main__":
    main()
