#!/usr/bin/env python
"""Quickstart: decode surface-code syndromes with Promatch in ~40 lines.

Builds the full stack for a distance-5 code, samples noisy syndromes,
decodes them with Promatch+Astrea, and reports accuracy and latency --
the 60-second tour of the library.

Run:  python examples/quickstart.py
"""

from repro import build_workbench
from repro.eval.ler import count_failures


def main() -> None:
    # One call wires everything: code -> noisy circuit -> detector error
    # model (cached on disk) -> decoding graph -> decoder zoo.
    bench = build_workbench(distance=5, p=3e-3, rng=7)
    print(f"Built workbench: d={bench.distance}, p={bench.p}")
    print(f"  decoding graph: {bench.graph}")

    # Sample 2000 noisy memory-experiment shots.
    batch = bench.sample(2000)
    weights = batch.hamming_weights()
    print(f"  sampled {batch.shots} syndromes, mean Hamming weight "
          f"{weights.mean():.2f}, max {weights.max()}")

    # Decode one syndrome by hand to see the moving parts.
    events = next(e for e in batch.events if len(e) >= 4)
    decoder = bench.decoders["Promatch+Astrea"]
    result = decoder.decode(events)
    print(f"\nOne syndrome: detection events {events}")
    print(f"  matched pairs     : {result.pairs}")
    print(f"  boundary matches  : {result.boundary}")
    print(f"  predicted logical : {result.observable_mask}")
    print(f"  latency           : {result.latency_ns:.0f} ns "
          f"(budget: 960 ns)")

    # Score the real-time decoder against idealized MWPM on the batch.
    for name in ("MWPM", "Promatch+Astrea", "Astrea-G"):
        failures, shots = count_failures(bench.decoders[name], batch)
        print(f"  {name:16s} logical error rate ~ {failures / shots:.4f}")


if __name__ == "__main__":
    main()
