"""Tests for the FPGA resource and storage models (Tables 7/8)."""

import pytest

from repro.eval.cache import load_or_build_dem
from repro.codes import RotatedSurfaceCode
from repro.graph import build_decoding_graph
from repro.hardware.resources import (
    estimate_fpga_utilization,
    estimate_storage,
)
from repro.noise import CircuitNoiseModel


@pytest.fixture(scope="module")
def graphs():
    out = {}
    for d in (11, 13):
        dem = load_or_build_dem(RotatedSurfaceCode(d), d, CircuitNoiseModel())
        out[d] = build_decoding_graph(dem, 1e-4)
    return out


class TestStorage:
    def test_path_table_matches_paper(self, graphs):
        """Path table = n^2 x 2 bits: 129 KB (d=11) and 345 KB (d=13)."""
        est11 = estimate_storage(graphs[11])
        est13 = estimate_storage(graphs[13])
        assert est11.path_table_kb == pytest.approx(129, rel=0.05)
        assert est13.path_table_kb == pytest.approx(345, rel=0.05)

    def test_edge_table_same_scale_as_paper(self, graphs):
        """Edge table: 3.6 KB (d=11) and 6 KB (d=13) at one byte/edge."""
        est11 = estimate_storage(graphs[11])
        est13 = estimate_storage(graphs[13])
        assert est11.edge_table_kb == pytest.approx(3.6, rel=0.35)
        assert est13.edge_table_kb == pytest.approx(6.0, rel=0.35)

    def test_detector_counts(self, graphs):
        assert estimate_storage(graphs[11]).n_detectors == 60 * 12
        assert estimate_storage(graphs[13]).n_detectors == 84 * 14


class TestUtilization:
    def test_matches_table7(self):
        """Table 7: ~3% LUTs, ~1% FFs at 250 MHz on the KU5P."""
        util = estimate_fpga_utilization()
        assert util.lut_percent == pytest.approx(3.0, abs=0.5)
        assert util.ff_percent == pytest.approx(1.0, abs=0.3)
        assert util.clock_mhz == 250

    def test_scales_with_slots(self):
        small = estimate_fpga_utilization(edge_slots=10)
        large = estimate_fpga_utilization(edge_slots=100)
        assert large.luts == 10 * small.luts
