"""Tests for the cycle-accurate latency model."""

import pytest

from repro.hardware.latency import (
    ASTREA_MATCHINGS_PER_CYCLE,
    BUDGET_CYCLES,
    CYCLE_NS,
    DEADLINE_NS,
    PARALLEL_COMPARE_CYCLES,
    astrea_cycles,
    astrea_fits_budget,
    cycles_to_ns,
    ns_to_cycles,
)


class TestConstants:
    def test_clock_maths(self):
        assert CYCLE_NS == pytest.approx(4.0)
        assert BUDGET_CYCLES == 240  # 960 ns, Section 6.4
        assert DEADLINE_NS - PARALLEL_COMPARE_CYCLES * CYCLE_NS == pytest.approx(960.0)

    def test_conversions_roundtrip(self):
        assert cycles_to_ns(240) == pytest.approx(960.0)
        assert ns_to_cycles(960.0) == 240
        assert ns_to_cycles(cycles_to_ns(114)) == 114


class TestAstreaCycles:
    def test_hw10_matches_paper_latency(self):
        """Astrea's published latency is ~456 ns for a full HW=10 search."""
        assert cycles_to_ns(astrea_cycles(10)) == pytest.approx(456, abs=8)

    def test_search_space_scaling(self):
        assert astrea_cycles(10) == -(-9496 // ASTREA_MATCHINGS_PER_CYCLE)

    def test_minimum_one_cycle(self):
        assert astrea_cycles(0) == 1
        assert astrea_cycles(1) == 1

    def test_monotone(self):
        values = [astrea_cycles(h) for h in range(12)]
        assert values == sorted(values)

    def test_hw10_fits_budget(self):
        assert astrea_fits_budget(10, BUDGET_CYCLES)
        assert not astrea_fits_budget(10, 50)

    def test_hw12_blows_realtime_budget(self):
        """The reason predecoding exists: HW 12 brute force cannot finish."""
        assert not astrea_fits_budget(12, BUDGET_CYCLES)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            astrea_cycles(-1)
