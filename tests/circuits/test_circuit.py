"""Tests for the circuit container."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit, DetectorSpec, ObservableSpec
from repro.circuits.ops import NoiseClass, OpKind


def tiny_circuit() -> Circuit:
    circuit = Circuit(n_qubits=3)
    circuit.append(OpKind.RESET, [0, 1, 2])
    circuit.append(OpKind.H, [2])
    circuit.append(OpKind.CX, [0, 1])
    circuit.append(OpKind.DEPOLARIZE1, [0], NoiseClass.DATA_DEPOLARIZE)
    circuit.append(OpKind.MEASURE, [0, 1])
    return circuit


class TestCircuit:
    def test_target_validation(self):
        circuit = Circuit(n_qubits=2)
        with pytest.raises(ValueError):
            circuit.append(OpKind.H, [5])

    def test_measurement_count(self):
        assert tiny_circuit().n_measurements == 2

    def test_mechanism_count(self):
        circuit = tiny_circuit()
        assert circuit.noise_mechanism_count() == 3  # one DEPOLARIZE1 target
        circuit.append(OpKind.DEPOLARIZE2, [0, 1, 1, 2], NoiseClass.GATE2_DEPOLARIZE)
        assert circuit.noise_mechanism_count() == 3 + 30
        circuit.append(OpKind.MEASURE_FLIP, [0], NoiseClass.MEASUREMENT_FLIP)
        assert circuit.noise_mechanism_count() == 34

    def test_detector_matrix(self):
        circuit = tiny_circuit()
        circuit.detectors.append(
            DetectorSpec(measurements=(0, 1), coord=(0, 0, 0), basis="Z")
        )
        matrix = circuit.detector_matrix()
        assert matrix.shape == (1, 2)
        assert matrix.all()

    def test_observable_matrix(self):
        circuit = tiny_circuit()
        circuit.observables.append(ObservableSpec(measurements=(1,)))
        matrix = circuit.observable_matrix()
        assert matrix.tolist() == [[False, True]]

    def test_validate_catches_bad_record(self):
        circuit = tiny_circuit()
        circuit.detectors.append(
            DetectorSpec(measurements=(9,), coord=(0, 0, 0), basis="Z")
        )
        with pytest.raises(AssertionError):
            circuit.validate()

    def test_op_counts(self):
        counts = tiny_circuit().op_counts()
        assert counts["CX"] == 1
        assert counts["M"] == 2
        assert counts["R"] == 3
