"""Tests for the memory-experiment builder."""

import numpy as np
import pytest

from repro.circuits import build_memory_circuit
from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.noise import CircuitNoiseModel, CodeCapacityNoiseModel
from repro.sim import FrameSimulator


class TestStructure:
    @pytest.mark.parametrize("d,rounds", [(3, 3), (5, 5), (5, 2)])
    def test_detector_count(self, d, rounds):
        code = RotatedSurfaceCode(d)
        exp = build_memory_circuit(code, rounds=rounds, noise=CircuitNoiseModel())
        n_plq = len(code.z_plaquettes)
        assert exp.circuit.n_detectors == n_plq * (rounds + 1)
        assert exp.n_detector_layers == rounds + 1

    def test_detector_id_layout(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
        n_plq = len(code.z_plaquettes)
        for layer in range(4):
            for index in range(n_plq):
                det = exp.detector_id(index, layer)
                assert exp.circuit.detectors[det].coord[2] == layer

    def test_detector_membership_sizes(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
        for det in exp.circuit.detectors:
            layer = det.coord[2]
            if layer == 0:
                assert len(det.measurements) == 1
            elif layer < exp.rounds:
                assert len(det.measurements) == 2
            else:  # closure layer: last ancilla + 2 or 4 data measurements
                assert len(det.measurements) in (3, 5)

    def test_observable_support_is_logical(self):
        code = RotatedSurfaceCode(5)
        exp = build_memory_circuit(code, rounds=5, noise=CircuitNoiseModel())
        obs = exp.circuit.observables[0]
        expected = {exp.final_data_record(q) for q in code.logical_z}
        assert set(obs.measurements) == expected

    def test_measurement_total(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
        assert exp.circuit.n_measurements == code.n_ancilla * 3 + code.n_data

    def test_rejects_bad_args(self):
        code = RotatedSurfaceCode(3)
        with pytest.raises(ValueError):
            build_memory_circuit(code, rounds=0, noise=CircuitNoiseModel())
        with pytest.raises(ValueError):
            build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel(), basis="Y")

    def test_repetition_code_builds(self):
        code = RepetitionCode(5)
        exp = build_memory_circuit(code, rounds=2, noise=CircuitNoiseModel())
        assert exp.circuit.n_detectors == 4 * 3


class TestDeterminism:
    """Detectors must never fire in a noiseless run (the defining property)."""

    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_noiseless_run_all_detectors_quiet(self, basis):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(
            code, rounds=3, noise=CircuitNoiseModel(), basis=basis
        )
        samples = FrameSimulator(exp.circuit, p=0.0, rng=1).sample(64)
        assert not samples.detectors.any()
        assert not samples.observables.any()

    def test_noiseless_code_capacity_quiet(self):
        code = RotatedSurfaceCode(5)
        exp = build_memory_circuit(code, rounds=1, noise=CodeCapacityNoiseModel())
        samples = FrameSimulator(exp.circuit, p=0.0, rng=1).sample(16)
        assert not samples.detectors.any()

    def test_code_capacity_has_only_data_noise(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=1, noise=CodeCapacityNoiseModel())
        # 3 mechanisms per data qubit and nothing else.
        assert exp.circuit.noise_mechanism_count() == 3 * code.n_data
