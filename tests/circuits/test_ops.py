"""Tests for the circuit op layer and noise classes."""

import pytest

from repro.circuits.ops import NoiseClass, Op, OpKind


class TestNoiseClass:
    def test_members_are_distinct(self):
        # Enum members with equal values silently alias; guard against it.
        assert len(NoiseClass) == 5

    def test_multipliers(self):
        assert NoiseClass.DATA_DEPOLARIZE.multiplier == pytest.approx(1 / 3)
        assert NoiseClass.GATE1_DEPOLARIZE.multiplier == pytest.approx(1 / 3)
        assert NoiseClass.GATE2_DEPOLARIZE.multiplier == pytest.approx(1 / 15)
        assert NoiseClass.MEASUREMENT_FLIP.multiplier == pytest.approx(1.0)
        assert NoiseClass.RESET_FLIP.multiplier == pytest.approx(1.0)

    def test_component_probability(self):
        assert NoiseClass.GATE2_DEPOLARIZE.component_probability(0.15) == pytest.approx(
            0.01
        )


class TestOp:
    def test_noise_requires_class(self):
        with pytest.raises(ValueError):
            Op(kind=OpKind.DEPOLARIZE1, targets=(0,))

    def test_gate_rejects_class(self):
        with pytest.raises(ValueError):
            Op(kind=OpKind.H, targets=(0,), noise_class=NoiseClass.RESET_FLIP)

    def test_two_qubit_parity(self):
        with pytest.raises(ValueError):
            Op(kind=OpKind.CX, targets=(0, 1, 2))

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            Op(kind=OpKind.H, targets=())

    def test_pairs(self):
        op = Op(kind=OpKind.CX, targets=(0, 1, 2, 3))
        assert op.pairs == ((0, 1), (2, 3))

    def test_is_noise(self):
        assert OpKind.DEPOLARIZE2.is_noise
        assert OpKind.MEASURE_FLIP.is_noise
        assert not OpKind.MEASURE.is_noise
        assert not OpKind.RESET.is_noise
