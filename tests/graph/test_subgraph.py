"""Tests for the Promatch decoding subgraph."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import figure7_graph, figure9_graph, make_graph, make_path_graph  # noqa: E402

from repro.graph.subgraph import DecodingSubgraph


class TestConstruction:
    def test_only_flipped_edges_kept(self):
        graph = make_path_graph(6)
        sub = DecodingSubgraph(graph, [0, 1, 4])
        assert sub.n_nodes == 3
        assert sub.n_edges == 1  # only (0, 1); 4 has no flipped neighbor
        assert sub.degree == [1, 1, 0]

    def test_duplicate_events_rejected(self):
        graph = make_path_graph(4)
        with pytest.raises(ValueError):
            DecodingSubgraph(graph, [1, 1])

    def test_node_id_mapping(self):
        graph = make_path_graph(6)
        sub = DecodingSubgraph(graph, [5, 2, 0])
        assert [sub.node_id(i) for i in range(3)] == [0, 2, 5]


class TestStructuralQueries:
    def test_singletons(self):
        graph = make_path_graph(8)
        sub = DecodingSubgraph(graph, [0, 1, 5])
        assert sub.singletons() == [2]

    def test_isolated_pairs(self):
        graph = make_path_graph(8)
        sub = DecodingSubgraph(graph, [0, 1, 4, 5])
        pairs = sub.isolated_pairs()
        assert {(e.i, e.j) for e in pairs} == {(0, 1), (2, 3)}

    def test_chain_has_no_isolated_pairs(self):
        graph = make_path_graph(8)
        sub = DecodingSubgraph(graph, [2, 3, 4])
        assert sub.isolated_pairs() == []

    def test_dependent_counts_figure9(self):
        """Figure 9: node a has three dependents (b, c, d); e has none."""
        sub = DecodingSubgraph(figure9_graph(), [0, 1, 2, 3, 4, 5])
        a = 0
        assert sub.degree[a] == 4
        assert sub.dependent[a] == 3  # b, c, d (e has f as backup)
        e = 4
        assert sub.dependent[e] == 1  # f depends on e


class TestCreatesSingleton:
    def test_figure9_matching_ab_creates_singletons(self):
        sub = DecodingSubgraph(figure9_graph(), [0, 1, 2, 3, 4, 5])
        edge_ab = next(e for e in sub.edges if {e.i, e.j} == {0, 1})
        assert sub.creates_singleton(edge_ab)

    def test_figure9_matching_ef_safe(self):
        sub = DecodingSubgraph(figure9_graph(), [0, 1, 2, 3, 4, 5])
        edge_ef = next(e for e in sub.edges if {e.i, e.j} == {4, 5})
        # Matching e-f leaves a with b, c, d still matchable via a.
        assert not sub.creates_singleton(edge_ef)

    def test_figure7_middle_edge_risky(self):
        sub = DecodingSubgraph(figure7_graph(), [0, 1, 2, 3])
        middle = next(e for e in sub.edges if {e.i, e.j} == {1, 2})
        outer = next(e for e in sub.edges if {e.i, e.j} == {0, 1})
        assert sub.creates_singleton(middle)
        assert not sub.creates_singleton(outer)

    def test_triangle_hardware_vs_exact(self):
        """A degree-2 node adjacent to both endpoints: the hardware test
        (Figure 11) misses it; the exact check catches it."""
        graph = make_graph(
            n_nodes=3,
            edges=[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)],
            boundary=[(0, 9.0), (1, 9.0), (2, 9.0)],
        )
        sub = DecodingSubgraph(graph, [0, 1, 2])
        edge01 = next(e for e in sub.edges if {e.i, e.j} == {0, 1})
        assert not sub.creates_singleton(edge01, exact=False)
        assert sub.creates_singleton(edge01, exact=True)


class TestWithoutNodes:
    def test_removal_rebuilds(self):
        graph = make_path_graph(6)
        sub = DecodingSubgraph(graph, [0, 1, 2, 3])
        smaller = sub.without_nodes([0, 1])
        assert smaller.nodes == [2, 3]
        assert smaller.n_edges == 1


def _live_state(sub):
    """Live-projected (degree, dependent) by global id plus live edges."""
    state = {
        sub.node_id(i): (sub.degree[i], sub.dependent[i])
        for i in sub.live_locals()
    }
    edges = sorted(
        (sub.node_id(e.i), sub.node_id(e.j), e.weight, e.observable_mask)
        for e in sub.edges
    )
    return state, edges


class TestColumnarConstruction:
    """`from_columnar` must be indistinguishable from the per-node walk."""

    def test_matches_plain_constructor(self, d3_stack):
        import numpy as np

        _exp, _dem, graph = d3_stack
        rng = np.random.default_rng(3)
        for _ in range(30):
            k = int(rng.integers(0, 12))
            events = sorted(
                map(int, rng.choice(graph.n_nodes, size=k, replace=False))
            )
            walk = DecodingSubgraph(graph, events)
            columnar = DecodingSubgraph.from_columnar(graph, events)
            assert columnar.nodes == walk.nodes
            assert columnar.degree == walk.degree
            assert columnar.dependent == walk.dependent
            assert columnar.edges == walk.edges  # values AND order
            assert columnar.adjacency == walk.adjacency
            assert columnar.n_edges == walk.n_edges

    def test_duplicate_events_rejected(self):
        graph = make_path_graph(4)
        with pytest.raises(ValueError):
            DecodingSubgraph.from_columnar(graph, [1, 1])

    def test_empty(self, d3_stack):
        _exp, _dem, graph = d3_stack
        sub = DecodingSubgraph.from_columnar(graph, [])
        assert sub.n_nodes == 0 and sub.n_edges == 0
        assert sub.singletons() == [] and sub.isolated_pairs() == []


class TestIncrementalRemoval:
    """`remove_nodes` must track the full-rebuild state exactly."""

    def test_matches_rebuild_after_each_removal(self):
        import numpy as np

        graph = figure9_graph()
        rng = np.random.default_rng(17)
        for _ in range(60):
            k = int(rng.integers(0, graph.n_nodes + 1))
            events = sorted(
                map(int, rng.choice(graph.n_nodes, size=k, replace=False))
            )
            sub = DecodingSubgraph.from_columnar(graph, events)
            while sub.n_nodes > 0:
                live = sub.live_locals()
                m = int(rng.integers(1, min(4, len(live)) + 1))
                sub.remove_nodes(
                    sorted(map(int, rng.choice(live, size=m, replace=False)))
                )
                fresh = DecodingSubgraph(graph, sub.live_node_ids())
                state, edges = _live_state(sub)
                fresh_state, fresh_edges = _live_state(fresh)
                assert state == fresh_state
                assert edges == fresh_edges
                assert sub.n_nodes == fresh.n_nodes
                assert sub.n_edges == fresh.n_edges
                assert sorted(sub.singletons(), key=sub.node_id) == [
                    sub._local_index[fresh.node_id(s)]
                    for s in fresh.singletons()
                ]

    def test_isolated_pair_dies_together(self):
        graph = make_path_graph(8)
        sub = DecodingSubgraph.from_columnar(graph, [0, 1, 4, 5])
        sub.remove_nodes([0, 1])
        assert sub.n_nodes == 2
        assert sub.live_node_ids() == [4, 5]
        assert sub.n_edges == 1
        assert [(e.i, e.j) for e in sub.isolated_pairs()] == [
            (sub._local_index[4], sub._local_index[5])
        ]

    def test_removal_updates_dependent_counts(self):
        sub = DecodingSubgraph.from_columnar(
            figure9_graph(), [0, 1, 2, 3, 4, 5]
        )
        a = 0
        assert sub.dependent[a] == 3
        sub.remove_nodes([4, 5])  # e-f match: a loses nothing dependent
        assert sub.dependent[a] == 3
        sub.remove_nodes([1])  # b gone: a has two dependents left
        assert sub.dependent[a] == 2

    def test_double_removal_rejected(self):
        graph = make_path_graph(6)
        sub = DecodingSubgraph.from_columnar(graph, [0, 1, 2])
        sub.remove_nodes([0])
        with pytest.raises(ValueError):
            sub.remove_nodes([0])
        with pytest.raises(ValueError):
            sub.remove_nodes([1, 1])

    def test_local_indices_stay_stable(self):
        graph = make_path_graph(8)
        sub = DecodingSubgraph.from_columnar(graph, [1, 2, 5, 6])
        assert sub.node_id(3) == 6
        sub.remove_nodes([0, 1])
        assert sub.node_id(3) == 6  # unchanged after removal
        assert sub.live_locals() == [2, 3]
        assert sub.live_node_ids() == [5, 6]
