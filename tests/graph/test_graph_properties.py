"""Property-based tests on decoding-graph invariants (hypothesis)."""

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_graph  # noqa: E402

from repro.graph.subgraph import DecodingSubgraph


@st.composite
def random_graph(draw):
    """A random connected-ish synthetic decoding graph."""
    n = draw(st.integers(min_value=2, max_value=10))
    possible_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(
        st.lists(
            st.sampled_from(possible_edges),
            min_size=1,
            max_size=len(possible_edges),
            unique=True,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=20.0),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    edges = [(u, v, w) for (u, v), w in zip(chosen, weights)]
    boundary_nodes = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=1, unique=True)
    )
    boundary = [(u, draw(st.floats(min_value=0.5, max_value=20.0))) for u in boundary_nodes]
    return make_graph(n, edges, boundary), edges, boundary


@settings(max_examples=40, deadline=None)
@given(random_graph())
def test_distance_bounded_by_direct_edge(data):
    graph, edges, _boundary = data
    for u, v, w in edges:
        assert graph.distance(u, v) <= w + 1e-9


@settings(max_examples=40, deadline=None)
@given(random_graph())
def test_distance_symmetric_and_triangle(data):
    graph, edges, _boundary = data
    n = graph.n_nodes
    for u in range(n):
        for v in range(n):
            duv = graph.distance(u, v)
            assert duv == pytest.approx(graph.distance(v, u))
    # Triangle inequality through the first edge's endpoints.
    u, v, _w = edges[0]
    for w_node in range(n):
        assert graph.distance(u, w_node) <= (
            graph.distance(u, v) + graph.distance(v, w_node) + 1e-9
        )


@settings(max_examples=40, deadline=None)
@given(random_graph())
def test_path_weight_equals_distance(data):
    graph, edges, _boundary = data
    u, v, _w = edges[0]
    if not np.isfinite(graph.distance(u, v)):
        return
    nodes = graph.path_nodes(u, v)
    total = 0.0
    for a, b in zip(nodes, nodes[1:]):
        step = graph.direct_edge_weight(a, b)
        assert step is not None
        total += step
    assert total == pytest.approx(graph.distance(u, v))


@settings(max_examples=40, deadline=None)
@given(random_graph(), st.data())
def test_subgraph_degree_sum(data, rng_data):
    graph, _edges, _boundary = data
    n = graph.n_nodes
    events = rng_data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=0,
            max_size=n,
            unique=True,
        )
    )
    sub = DecodingSubgraph(graph, events)
    # Handshake lemma.
    assert sum(sub.degree) == 2 * sub.n_edges
    # Dependents are a subset of neighbors.
    for i in range(sub.n_nodes):
        assert 0 <= sub.dependent[i] <= sub.degree[i]
    # Isolated pairs and singletons are disjoint categories.
    singleton_set = set(sub.singletons())
    for edge in sub.isolated_pairs():
        assert edge.i not in singleton_set
        assert edge.j not in singleton_set
