"""Tests for decoding-graph construction and shortest-path machinery."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_graph, make_path_graph  # noqa: E402

from repro.circuits.ops import NoiseClass
from repro.dem.model import DetectorErrorModel, Mechanism, NOISE_CLASS_ORDER, class_index
from repro.graph.decoding_graph import (
    BOUNDARY_SENTINEL,
    build_decoding_graph,
    _pair_singleton_partitions,
)


def mech(dets, obs=0, n=1):
    counts = [0] * len(NOISE_CLASS_ORDER)
    counts[class_index(NoiseClass.MEASUREMENT_FLIP)] = n
    return Mechanism(tuple(dets), obs, tuple(counts))


class TestBuildFromDem:
    def test_basic_edges(self):
        dem = DetectorErrorModel(
            n_detectors=3,
            n_observables=1,
            mechanisms=[mech((0,)), mech((0, 1)), mech((1, 2), obs=1)],
            detector_coords=[(0, 0, 0)] * 3,
        )
        graph = build_decoding_graph(dem, 0.01)
        assert graph.n_nodes == 3
        assert graph.boundary_edge(0) is not None
        assert graph.boundary_edge(1) is None
        assert graph.edge_observable(1, 2) == 1
        assert graph.edge_observable(0, 1) == 0

    def test_parallel_mechanisms_xor_combine(self):
        dem = DetectorErrorModel(
            n_detectors=2,
            n_observables=1,
            mechanisms=[mech((0, 1), n=1), mech((0, 1), n=2)],
            detector_coords=[(0, 0, 0)] * 2,
        )
        # merge_raw would have combined these, but build must also cope
        # with separate mechanisms sharing endpoints.
        graph = build_decoding_graph(dem, 0.01)
        edges = [e for e in graph.edges if not e.is_boundary]
        assert len(edges) == 1
        p1 = dem.mechanisms[0].probability(0.01)
        p2 = dem.mechanisms[1].probability(0.01)
        expected = p1 * (1 - p2) + p2 * (1 - p1)
        assert edges[0].probability == pytest.approx(expected)

    def test_multi_detector_decomposition(self):
        # Mechanism {0,1,2,3} decomposes onto existing edges (0,1) + (2,3).
        dem = DetectorErrorModel(
            n_detectors=4,
            n_observables=1,
            mechanisms=[
                mech((0, 1)),
                mech((2, 3)),
                mech((0, 1, 2, 3)),
            ],
            detector_coords=[(0, 0, 0)] * 4,
        )
        graph = build_decoding_graph(dem, 0.01)
        assert graph.decomposition_stats["multi_mechanisms"] == 1
        assert graph.decomposition_stats["undecomposable"] == 0
        edge01 = [e for e in graph.edges if (e.u, e.v) == (0, 1)][0]
        single = dem.mechanisms[0].probability(0.01)
        multi = dem.mechanisms[2].probability(0.01)
        assert edge01.probability == pytest.approx(
            single * (1 - multi) + multi * (1 - single)
        )

    def test_undecomposable_counted(self):
        dem = DetectorErrorModel(
            n_detectors=4,
            n_observables=1,
            mechanisms=[mech((0, 1, 2, 3))],  # no elementary edges exist
            detector_coords=[(0, 0, 0)] * 4,
        )
        graph = build_decoding_graph(dem, 0.01)
        assert graph.decomposition_stats["undecomposable"] == 1


class TestShortestPaths:
    def test_line_distances(self):
        graph = make_path_graph(5, weight=2.0)
        # Ends of the line connect more cheaply through the boundary
        # (2 + 2) than along the line (4 edges x 2): routing through the
        # boundary is equivalent to two boundary matches and is allowed.
        assert graph.distance(0, 4) == pytest.approx(4.0)
        assert graph.distance(0, 1) == pytest.approx(2.0)  # direct edge wins
        assert graph.distance(2, 2) == 0.0
        assert graph.boundary_distance(0) == pytest.approx(2.0)
        # middle node reaches boundary through either end: 2 hops + exit
        assert graph.boundary_distance(2) == pytest.approx(6.0)

    def test_distance_symmetry(self, d3_stack):
        _exp, _dem, graph = d3_stack
        graph.ensure_distances()
        rng = np.random.default_rng(3)
        for _ in range(20):
            u, v = rng.integers(0, graph.n_nodes, 2)
            assert graph.distance(int(u), int(v)) == pytest.approx(
                graph.distance(int(v), int(u))
            )

    def test_path_nodes_are_connected(self, d3_stack):
        _exp, _dem, graph = d3_stack
        nodes = graph.path_nodes(0, graph.n_nodes - 1)
        assert nodes[0] == 0 and nodes[-1] == graph.n_nodes - 1
        for a, b in zip(nodes, nodes[1:]):
            assert graph.direct_edge_weight(a, b) is not None

    def test_path_length_edges(self):
        graph = make_path_graph(6)
        assert graph.path_length_edges(0, 3) == 3
        assert graph.path_length_edges(2, 2) == 0

    def test_path_observable_accumulates(self):
        graph = make_graph(
            n_nodes=3,
            edges=[(0, 1, 1.0), (1, 2, 1.0)],
            boundary=[(0, 1.0), (2, 1.0)],
            observables={(0, 1): 1, (1, 2): 1},
        )
        assert graph.path_observable(0, 1) == 1
        assert graph.path_observable(0, 2) == 0  # two flips cancel

    def test_boundary_sentinel_alias(self):
        graph = make_path_graph(4)
        assert graph.distance(1, BOUNDARY_SENTINEL) == graph.boundary_distance(1)

    def test_disconnected_raises(self):
        graph = make_graph(n_nodes=2, edges=[], boundary=[(0, 1.0)])
        with pytest.raises(ValueError):
            graph.path_nodes(0, 1)

    def test_event_distance_matrix(self):
        graph = make_path_graph(5)
        pair, boundary = graph.event_distance_matrix([0, 2, 4])
        assert pair.shape == (3, 3)
        assert pair[0, 1] == pytest.approx(2.0)
        assert boundary.tolist() == pytest.approx([1.0, 3.0, 1.0])


class TestPartitions:
    def test_partition_counts(self):
        # 3 elements: 4 partitions into blocks of size <= 2;
        # 4 elements: 10.
        assert len(list(_pair_singleton_partitions([1, 2, 3]))) == 4
        assert len(list(_pair_singleton_partitions([1, 2, 3, 4]))) == 10

    def test_partition_blocks_cover(self):
        for partition in _pair_singleton_partitions([1, 2, 3, 4]):
            flat = sorted(x for block in partition for x in block)
            assert flat == [1, 2, 3, 4]
