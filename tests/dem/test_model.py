"""Tests for the detector-error-model data structures."""

import pytest

from repro.circuits.ops import NoiseClass
from repro.dem.model import (
    NOISE_CLASS_ORDER,
    DetectorErrorModel,
    Mechanism,
    class_index,
    merge_raw_mechanisms,
)
from repro.utils.bits import xor_combine_probabilities


def make_mechanism(dets, obs=0, **class_counts):
    counts = [0] * len(NOISE_CLASS_ORDER)
    for name, n in class_counts.items():
        counts[class_index(NoiseClass[name])] = n
    return Mechanism(detectors=tuple(dets), observable_mask=obs, class_counts=tuple(counts))


class TestMechanism:
    def test_probability_single_class(self):
        m = make_mechanism((0, 1), MEASUREMENT_FLIP=1)
        assert m.probability(0.01) == pytest.approx(0.01)

    def test_probability_xor_combination(self):
        m = make_mechanism((0,), DATA_DEPOLARIZE=2)
        p = 0.03
        expected = xor_combine_probabilities([p / 3, p / 3])
        assert m.probability(p) == pytest.approx(expected)

    def test_probability_mixed_classes(self):
        m = make_mechanism((0,), GATE2_DEPOLARIZE=3, MEASUREMENT_FLIP=1)
        p = 0.01
        expected = xor_combine_probabilities([p / 15] * 3 + [p])
        assert m.probability(p) == pytest.approx(expected)

    def test_zero_rate(self):
        m = make_mechanism((0,), RESET_FLIP=5)
        assert m.probability(0.0) == 0.0


class TestMerge:
    def test_identical_signatures_merge(self):
        sigs = [((0, 1), 0), ((0, 1), 0), ((0, 1), 1)]
        classes = [
            NoiseClass.DATA_DEPOLARIZE,
            NoiseClass.MEASUREMENT_FLIP,
            NoiseClass.DATA_DEPOLARIZE,
        ]
        merged = merge_raw_mechanisms(sigs, classes)
        assert len(merged) == 2
        by_obs = {m.observable_mask: m for m in merged}
        assert by_obs[0].class_counts[class_index(NoiseClass.DATA_DEPOLARIZE)] == 1
        assert by_obs[0].class_counts[class_index(NoiseClass.MEASUREMENT_FLIP)] == 1

    def test_empty_signatures_dropped(self):
        merged = merge_raw_mechanisms([((), 0)], [NoiseClass.RESET_FLIP])
        assert merged == []

    def test_detectors_sorted(self):
        merged = merge_raw_mechanisms([((5, 2), 0)], [NoiseClass.RESET_FLIP])
        assert merged[0].detectors == (2, 5)


class TestValidation:
    def test_rejects_undetectable_logical(self):
        dem = DetectorErrorModel(
            n_detectors=2,
            n_observables=1,
            mechanisms=[make_mechanism((), obs=1, RESET_FLIP=1)],
            detector_coords=[(0, 0, 0), (0, 1, 0)],
        )
        with pytest.raises(AssertionError):
            dem.validate()

    def test_rejects_out_of_range_detector(self):
        dem = DetectorErrorModel(
            n_detectors=1,
            n_observables=1,
            mechanisms=[make_mechanism((5,), RESET_FLIP=1)],
            detector_coords=[(0, 0, 0)],
        )
        with pytest.raises(AssertionError):
            dem.validate()

    def test_histogram(self):
        dem = DetectorErrorModel(
            n_detectors=3,
            n_observables=1,
            mechanisms=[
                make_mechanism((0,), RESET_FLIP=1),
                make_mechanism((0, 1), RESET_FLIP=1),
                make_mechanism((1, 2), RESET_FLIP=1),
            ],
            detector_coords=[(0, 0, 0)] * 3,
        )
        assert dem.mechanism_size_histogram() == {1: 1, 2: 2}
