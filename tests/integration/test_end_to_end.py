"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import build_workbench
from repro.circuits import build_memory_circuit
from repro.codes import RotatedSurfaceCode
from repro.decoders import MWPMDecoder
from repro.eval.ler import count_failures, estimate_ler_direct
from repro.graph import build_decoding_graph
from repro.noise import CircuitNoiseModel
from repro.sim import DemSampler, FrameSimulator, build_detector_error_model


class TestErrorSuppression:
    """The defining property of a working QEC stack: LER falls with d and p."""

    def test_ler_improves_with_distance(self):
        results = {}
        for d in (3, 5):
            bench = build_workbench(distance=d, p=1e-3, rng=42)
            out = estimate_ler_direct(
                {"MWPM": bench.decoders["MWPM"]}, bench.dem, 1e-3,
                shots=40000, rng=9,
            )
            results[d] = out["MWPM"].ler
        assert results[5] < results[3] / 1.8

    def test_ler_improves_with_rate(self):
        bench_high = build_workbench(distance=3, p=3e-3, rng=1)
        bench_low = build_workbench(distance=3, p=1e-3, rng=1)
        high = estimate_ler_direct(
            {"MWPM": bench_high.decoders["MWPM"]}, bench_high.dem, 3e-3,
            shots=20000, rng=2,
        )["MWPM"].ler
        low = estimate_ler_direct(
            {"MWPM": bench_low.decoders["MWPM"]}, bench_low.dem, 1e-3,
            shots=20000, rng=2,
        )["MWPM"].ler
        assert low < high

    def test_mwpm_beats_no_correction(self):
        bench = build_workbench(distance=3, p=3e-3, rng=5)
        batch = bench.sample(20000)
        failures, shots = count_failures(bench.decoders["MWPM"], batch)
        baseline = int((batch.observables & 1).sum())
        assert failures < baseline / 2


class TestSamplerConsistency:
    def test_frame_and_dem_sampler_agree_on_observable_rate(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
        dem = build_detector_error_model(exp.circuit)
        p, shots = 8e-3, 50000
        frame = FrameSimulator(exp.circuit, p, rng=3).sample(shots)
        demsam = DemSampler(dem, p, rng=4).sample(shots)
        frame_rate = frame.observables.mean()
        dem_rate = (demsam.observables & 1).mean()
        assert dem_rate == pytest.approx(frame_rate, rel=0.1)


class TestXBasisMemory:
    def test_x_memory_full_stack(self):
        """The X-basis experiment must decode just as well (symmetry)."""
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(
            code, rounds=3, noise=CircuitNoiseModel(), basis="X"
        )
        dem = build_detector_error_model(exp.circuit)
        graph = build_decoding_graph(dem, 3e-3)
        decoder = MWPMDecoder(graph)
        batch = DemSampler(dem, 3e-3, rng=6).sample(5000)
        failures, shots = count_failures(decoder, batch)
        assert failures / shots < 0.05

    def test_x_memory_single_faults_correctable(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(
            code, rounds=3, noise=CircuitNoiseModel(), basis="X"
        )
        dem = build_detector_error_model(exp.circuit)
        graph = build_decoding_graph(dem, 1e-3)
        decoder = MWPMDecoder(graph)
        for mechanism in dem.mechanisms:
            result = decoder.decode(mechanism.detectors)
            assert result.observable_mask == mechanism.observable_mask


class TestFullZoo:
    def test_all_decoders_run_on_shared_workload(self):
        bench = build_workbench(distance=5, p=6e-3, rng=8)
        batch = bench.sample(150)
        for name, decoder in bench.decoders.items():
            for events, obs in zip(batch.events, batch.observables):
                result = decoder.decode(events)
                assert result is not None
                if result.success:
                    assert result.observable_mask in (0, 1)
