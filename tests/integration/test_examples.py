"""Smoke tests: the lightweight example scripts must run end to end.

Only the fast examples are executed (the d=11 studies belong to the
benchmark tier); this catches API drift between the library and its
documented entry points.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize("script", ["complex_patterns.py"])
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert "Promatch" in output


def test_quickstart_runs(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "logical error rate" in output
    assert "latency" in output


def test_examples_exist_and_are_documented():
    """Every example is runnable python with a module docstring."""
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 5
    for script in scripts:
        source = script.read_text()
        assert source.lstrip().startswith(('"""', "#!")), script.name
        assert "Run:" in source, f"{script.name} lacks a Run: line"
