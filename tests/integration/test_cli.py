"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.distance == 5
        assert args.p == 1e-3

    def test_ler_options(self):
        args = build_parser().parse_args(
            ["ler", "--method", "eq1", "--shots-per-k", "50", "--k-max", "6"]
        )
        assert args.method == "eq1"
        assert args.shots_per_k == 50

    def test_sweep_options(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--distances", "3,5",
                "--ps", "1e-3,3e-3",
                "--min-rel-precision", "0.3",
                "--store", "s.jsonl",
                "--resume",
            ]
        )
        assert args.distances == "3,5"
        assert args.min_rel_precision == 0.3
        assert args.resume


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--distance", "3", "--p", "2e-3"]) == 0
        out = capsys.readouterr().out
        assert "detectors" in out
        assert "Astrea capability" in out
        assert "HW <= 10" in out

    def test_ler_direct(self, capsys):
        code = main(
            [
                "ler",
                "--distance", "3",
                "--p", "5e-3",
                "--shots", "2000",
                "--decoders", "MWPM,Promatch+Astrea",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MWPM" in out and "Promatch+Astrea" in out

    def test_ler_eq1(self, capsys):
        code = main(
            [
                "ler",
                "--distance", "3",
                "--p", "2e-3",
                "--method", "eq1",
                "--shots-per-k", "40",
                "--k-max", "4",
                "--decoders", "MWPM",
            ]
        )
        assert code == 0
        assert "Eq. (1)" in capsys.readouterr().out

    def test_ler_unknown_decoder(self):
        with pytest.raises(SystemExit):
            main(["ler", "--distance", "3", "--decoders", "NotADecoder"])

    def test_sweep_with_store_resume_and_artifact(self, capsys, tmp_path):
        store = tmp_path / "grid.jsonl"
        argv = [
            "sweep",
            "--distances", "3",
            "--ps", "2e-3,4e-3",
            "--decoders", "MWPM",
            "--shots-per-k", "30",
            "--k-max", "3",
            "--store", str(store),
            "--out", str(tmp_path / "first.json"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sweep (eq1) | d=3" in out
        assert "usable trials in store" in out
        assert store.exists()

        argv[-1] = str(tmp_path / "second.json")
        assert main(argv + ["--resume"]) == 0
        capsys.readouterr()
        import json

        first = json.loads((tmp_path / "first.json").read_text())
        second = json.loads((tmp_path / "second.json").read_text())
        first.pop("stats")
        second.pop("stats")
        assert first == second

    def test_sweep_unknown_decoder(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["sweep", "--distances", "3", "--ps", "2e-3",
                 "--decoders", "NotADecoder", "--shots-per-k", "10",
                 "--k-max", "3"]
            )

    def test_steps(self, capsys):
        code = main(
            ["steps", "--distance", "5", "--p", "3e-3",
             "--shots-per-k", "20", "--k-max", "10"]
        )
        assert code == 0
        assert "step 1" in capsys.readouterr().out

    def test_decode_trace(self, capsys):
        code = main(["decode", "--distance", "5", "--p", "5e-3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "syndrome HW" in out
        assert "Astrea" in out


class TestStoreCommand:
    """``python -m repro store info/prune``: store inspection and GC."""

    def _seed_store(self, tmp_path):
        from repro.eval.store import ExperimentStore, SliceRecord

        path = tmp_path / "store.jsonl"
        store = ExperimentStore(path)
        for config, k in (("live", 1), ("live", 2), ("stale", 1)):
            store.append(
                SliceRecord(
                    config=config, kind="eq1", k=k, seed=7, run=0,
                    shots=50, counts={"MWPM": (1, 50)},
                )
            )
        return path

    def test_info_lists_configs(self, capsys, tmp_path):
        path = self._seed_store(tmp_path)
        assert main(["store", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "live" in out and "stale" in out and "100" in out

    def test_prune_drops_stale_configs(self, capsys, tmp_path):
        path = self._seed_store(tmp_path)
        assert main(["store", "prune", str(path), "--keep", "live"]) == 0
        assert "dropped 1" in capsys.readouterr().out
        content = path.read_text()
        assert "stale" not in content and content.count("live") == 2

    def test_prune_dry_run_leaves_store_untouched(self, capsys, tmp_path):
        path = self._seed_store(tmp_path)
        before = path.read_text()
        assert main(["store", "prune", str(path), "--keep", "live",
                     "--dry-run"]) == 0
        assert "would drop 1" in capsys.readouterr().out
        assert path.read_text() == before

    def test_prune_missing_store_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "prune", str(tmp_path / "nope.jsonl"),
                  "--keep", "live"])

    def test_prune_requires_keep_keys(self, tmp_path):
        path = self._seed_store(tmp_path)
        with pytest.raises(SystemExit):
            main(["store", "prune", str(path), "--keep", " , "])

    def test_prune_refuses_unknown_keep_keys(self, tmp_path):
        """A typo'd keep key must refuse, not silently empty the store."""
        path = self._seed_store(tmp_path)
        before = path.read_text()
        with pytest.raises(SystemExit, match="not present in the store"):
            main(["store", "prune", str(path), "--keep", "typo0123"])
        assert path.read_text() == before
        with pytest.raises(SystemExit, match="typo0123"):
            main(["store", "prune", str(path), "--keep", "live,typo0123"])
        assert path.read_text() == before


class TestCampaignCommand:
    """``python -m repro campaign run/status/explain`` + store info."""

    def _write_spec(self, tmp_path):
        spec = tmp_path / "tiny.toml"
        spec.write_text(
            "[campaign]\n"
            'name = "tiny"\n'
            f'store = "{tmp_path / "store.jsonl"}"\n'
            "\n"
            "[[steps]]\n"
            'name = "mc"\n'
            'kind = "direct"\n'
            "distances = [3]\n"
            "error_rates = [5e-3]\n"
            'decoders = ["MWPM"]\n'
            "shots = 200\n"
        )
        return spec

    def test_parser_options(self):
        args = build_parser().parse_args(
            ["campaign", "run", "spec.toml", "--shots-per-k", "40",
             "--distances", "3,5", "--out", "o.json"]
        )
        assert args.campaign_command == "run"
        assert args.shots_per_k == 40
        assert args.out == "o.json"

    def test_missing_spec_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no campaign spec"):
            main(["campaign", "status", str(tmp_path / "ghost.toml")])

    def test_invalid_spec_exits(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text('[campaign]\nname = "x"\n')  # no steps
        with pytest.raises(SystemExit, match="invalid campaign spec"):
            main(["campaign", "explain", str(bad)])

    def test_run_then_cached_rerun(self, capsys, tmp_path):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "tiny.json"

        assert main(["campaign", "explain", str(spec)]) == 0
        assert "residual trials" in capsys.readouterr().out

        assert main(["campaign", "run", str(spec), "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "executed 1 steps, skipped 0 cached steps" in text
        first = out.read_bytes()

        assert main(["campaign", "status", str(spec)]) == 0
        assert "1/1 steps fully covered" in capsys.readouterr().out

        assert main(["campaign", "run", str(spec), "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "executed 0 steps, skipped 1 cached steps" in text
        assert "pool forks 0" in text
        assert out.read_bytes() == first

    def test_store_info_campaign_coverage(self, capsys, tmp_path):
        spec = self._write_spec(tmp_path)
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", str(spec)]) == 0
        capsys.readouterr()
        assert main(["store", "info", str(store), "--campaign", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "1/1 steps fully covered" in out
