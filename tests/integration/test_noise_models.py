"""Integration tests across the three noise-model variants.

The paper uses the full circuit-level model; the weaker models exist as
validation substrates.  These tests pin the relationships between them:
the same decoder stack must work under all three, and their severity
must order correctly (code capacity < phenomenological < circuit level
in both detector activity and logical error rate at fixed p).
"""

import numpy as np
import pytest

from repro.circuits import build_memory_circuit
from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.decoders import MWPMDecoder
from repro.eval.ler import count_failures
from repro.graph import build_decoding_graph
from repro.noise import (
    CircuitNoiseModel,
    CodeCapacityNoiseModel,
    PhenomenologicalNoiseModel,
)
from repro.sim import DemSampler, build_detector_error_model


def build_stack(noise, d=3, rounds=None, p=2e-3):
    code = RotatedSurfaceCode(d)
    rounds = rounds if rounds is not None else d
    exp = build_memory_circuit(code, rounds=rounds, noise=noise)
    dem = build_detector_error_model(exp.circuit)
    graph = build_decoding_graph(dem, p)
    return exp, dem, graph


class TestModelSeverityOrdering:
    def test_mechanism_counts_order(self):
        stacks = {
            "cc": build_stack(CodeCapacityNoiseModel()),
            "ph": build_stack(PhenomenologicalNoiseModel()),
            "cl": build_stack(CircuitNoiseModel()),
        }
        counts = {k: len(dem.mechanisms) for k, (_e, dem, _g) in stacks.items()}
        assert counts["cc"] < counts["ph"] < counts["cl"]

    def test_expected_fault_count_order(self):
        p = 2e-3
        expectations = {}
        for key, noise in (
            ("cc", CodeCapacityNoiseModel()),
            ("ph", PhenomenologicalNoiseModel()),
            ("cl", CircuitNoiseModel()),
        ):
            _exp, dem, _graph = build_stack(noise, p=p)
            expectations[key] = dem.expected_fault_count(p)
        assert expectations["cc"] < expectations["ph"] < expectations["cl"]

    def test_ler_ordering_at_fixed_p(self):
        """More noise channels at the same p => more logical errors."""
        p = 8e-3
        shots = 12000
        lers = {}
        for key, noise in (
            ("cc", CodeCapacityNoiseModel()),
            ("cl", CircuitNoiseModel()),
        ):
            _exp, dem, graph = build_stack(noise, p=p)
            batch = DemSampler(dem, p, rng=5).sample(shots)
            failures, _ = count_failures(MWPMDecoder(graph), batch)
            lers[key] = failures / shots
        assert lers["cc"] < lers["cl"]


class TestPhenomenologicalStructure:
    def test_no_gate_mechanisms(self):
        _exp, dem, _graph = build_stack(PhenomenologicalNoiseModel())
        from repro.circuits.ops import NoiseClass
        from repro.dem.model import class_index

        gate2 = class_index(NoiseClass.GATE2_DEPOLARIZE)
        for mechanism in dem.mechanisms:
            assert mechanism.class_counts[gate2] == 0

    def test_measurement_errors_make_time_edges(self):
        """Phenomenological graphs must contain time-like edges (same
        plaquette, adjacent layers) -- that is their defining feature."""
        _exp, dem, graph = build_stack(PhenomenologicalNoiseModel(), d=3)
        coords = graph.node_coords
        time_edges = [
            e
            for e in graph.edges
            if not e.is_boundary
            and coords[e.u][:2] == coords[e.v][:2]
            and abs(coords[e.u][2] - coords[e.v][2]) == 1
        ]
        assert time_edges

    def test_single_faults_decodable(self):
        _exp, dem, graph = build_stack(PhenomenologicalNoiseModel(), d=3)
        decoder = MWPMDecoder(graph)
        for mechanism in dem.mechanisms:
            result = decoder.decode(mechanism.detectors)
            assert result.observable_mask == mechanism.observable_mask


class TestRepetitionCodeAcrossModels:
    @pytest.mark.parametrize(
        "noise",
        [CodeCapacityNoiseModel(), PhenomenologicalNoiseModel(), CircuitNoiseModel()],
    )
    def test_full_stack_runs(self, noise):
        code = RepetitionCode(5)
        exp = build_memory_circuit(code, rounds=3, noise=noise)
        dem = build_detector_error_model(exp.circuit)
        graph = build_decoding_graph(dem, 5e-3)
        decoder = MWPMDecoder(graph)
        batch = DemSampler(dem, 5e-3, rng=1).sample(1000)
        failures, shots = count_failures(decoder, batch)
        assert failures / shots < 0.05
