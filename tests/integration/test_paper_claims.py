"""Integration tests pinned to specific claims in the paper's text."""

import numpy as np
import pytest

from repro import build_workbench
from repro.core import PromatchPredecoder
from repro.decoders import AstreaDecoder, SmithPredecoder
from repro.decoders.astrea import ASTREA_MAX_HAMMING_WEIGHT
from repro.eval.experiments import chain_length_census, step_usage_census
from repro.hardware.latency import BUDGET_CYCLES, astrea_cycles, cycles_to_ns
from repro.matching.exact import involution_count


@pytest.fixture(scope="module")
def bench11():
    return build_workbench(distance=11, p=1e-4, rng=101)


@pytest.fixture(scope="module")
def high_hw_11(bench11):
    return bench11.sample_high_hw(shots_per_k=25, k_max=14)


class TestSection2Claims:
    def test_945_perfect_matchings_at_hw10(self):
        """'The number of possible matchings for syndromes of Hamming
        weight 10 is 945' -- perfect matchings without boundary."""
        double_factorial = 1
        for odd in range(1, 10, 2):
            double_factorial *= odd
        assert double_factorial == 945
        # With boundary fallbacks the space is the involution number.
        assert involution_count(10) == 9496

    def test_astrea_capability_window(self):
        """Astrea handles HW <= 10 within the real-time budget; HW 12+
        cannot fit, which is the entire motivation for predecoding."""
        assert astrea_cycles(ASTREA_MAX_HAMMING_WEIGHT) <= BUDGET_CYCLES
        assert astrea_cycles(12) > BUDGET_CYCLES


class TestSection3Claims:
    def test_most_chains_have_length_one(self, bench11, high_hw_11):
        """Figure 5: 'More than 90% of error chains ... has length of 1'
        (d=13 in the paper; d=11 here for test runtime, same physics)."""
        histogram = chain_length_census(bench11.graph, high_hw_11)
        assert histogram[1] > 0.80


class TestSection4Claims:
    def test_promatch_coverage_guarantee(self, bench11, high_hw_11):
        """Figures 16/17: 'Promatch consistently lowers syndrome Hamming
        weight to 10 or less'."""
        promatch = PromatchPredecoder(bench11.graph)
        for events in high_hw_11.events:
            report = promatch.predecode(events)
            if not report.aborted:
                assert len(report.remaining) <= ASTREA_MAX_HAMMING_WEIGHT

    def test_step1_dominates(self, bench11, high_hw_11):
        """Table 6: at d=11, ~99.6% of high-HW samples need only Step 1."""
        usage = step_usage_census(high_hw_11, PromatchPredecoder(bench11.graph))
        assert usage[1] > 0.95

    def test_latency_within_budget(self, bench11, high_hw_11):
        """Tables 4/5: predecode+decode fits 960 ns on (almost) all
        high-HW syndromes; misses are measured at ~1e-17 probability."""
        promatch = PromatchPredecoder(bench11.graph)
        astrea = AstreaDecoder(bench11.graph)
        misses = 0
        for events in high_hw_11.events:
            report = promatch.predecode(events)
            if report.aborted:
                misses += 1
                continue
            result = astrea.decode(
                report.remaining,
                budget_cycles=promatch.budget_cycles - report.cycles,
            )
            if not result.success:
                misses += 1
        assert misses / max(1, high_hw_11.shots) < 0.02

    def test_smith_lacks_coverage_guarantee(self, bench11):
        """Section 6.3: Smith 'cannot guarantee enough coverage' -- on
        syndromes made of mutually non-adjacent events it matches nothing."""
        smith = SmithPredecoder(bench11.graph)
        spread = []
        for node in range(bench11.graph.n_nodes):
            if all(
                bench11.graph.direct_edge_weight(node, other) is None
                for other in spread
            ):
                spread.append(node)
            if len(spread) == 12:
                break
        report = smith.predecode(tuple(spread))
        assert len(report.remaining) == 12
