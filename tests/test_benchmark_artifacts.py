"""Checked-in benchmark artifacts stay real.

``.gitignore`` hides ``benchmarks/results/*`` and re-includes the
artifacts that ship with the repo via ``!`` negations.  PR 4's
``afs_unionfind_batch.json`` was cited in CHANGES.md but silently
missing because its negation was never added -- gitignore swallowed it.
These tests pin the contract: every negated artifact exists, parses,
and is actually produced by a ``save_results`` call in a
``benchmarks/*.py`` driver; and the artifacts the changelog cites are
among the negations.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
_NEGATION = re.compile(r"^!benchmarks/results/([\w.-]+\.json)$")

#: Artifacts cited as checked-in by CHANGES.md / ROADMAP.md.
CITED = {
    "promatch_predecode_batch.json",
    "serve_microbatch.json",
    "afs_unionfind_batch.json",
}


def negated_artifacts() -> list:
    names = []
    for line in (REPO / ".gitignore").read_text(encoding="utf-8").splitlines():
        match = _NEGATION.match(line.strip())
        if match:
            names.append(match.group(1))
    return names


def test_cited_artifacts_have_negations():
    assert CITED <= set(negated_artifacts())


@pytest.mark.parametrize("name", negated_artifacts())
def test_negated_artifact_exists_and_parses(name):
    path = REPO / "benchmarks" / "results" / name
    assert path.exists(), (
        f"{name} is re-included by .gitignore but missing from "
        "benchmarks/results/ -- regenerate it with its driver"
    )
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert isinstance(payload, dict) and payload


@pytest.mark.parametrize("name", negated_artifacts())
def test_negated_artifact_has_a_producing_driver(name):
    stem = name[: -len(".json")]
    drivers = "\n".join(
        path.read_text(encoding="utf-8")
        for path in sorted(REPO.glob("benchmarks/*.py"))
    )
    assert (
        f'save_results("{stem}"' in drivers
        or f"save_results('{stem}'" in drivers
    ), f"no benchmarks/*.py driver calls save_results({stem!r})"
