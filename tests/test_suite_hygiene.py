"""Suite hygiene: no wall-clock timing in tests, no blocking in the library.

The serving layer introduced a shared virtual clock
(:class:`repro.serve.clock.VirtualClock`) precisely so time-dependent
behavior — windows, timeouts, retries, arrival schedules — can be tested
deterministically.  These checks keep the suite that way: a test that
calls real sleep/clock functions is timing-dependent and flaky by
construction, and library code that sleeps blocks the serving event
loop.  (Benchmarks measure real elapsed time on purpose and are exempt.)

Since PR 8 the checks run on the repro-lint engine
(``tools/reprolint``) rather than a private regex scan, so this file and
``python -m tools.reprolint`` share one source of truth for the
clock/sleep bans: rule RPL001 (wall-clock discipline) and rule RPL006
(no blocking calls on the serve event loop).  Being AST-based, the scan
also stopped flagging mentions of banned names inside strings and
docstrings — only real call sites count.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
if str(REPO) not in sys.path:  # standalone safety; conftest also adds it
    sys.path.insert(0, str(REPO))

from tools.reprolint.engine import run_lint
from tools.reprolint.rules import AsyncBlockingRule, WallClockRule


def _render(findings) -> str:
    return "\n".join(f.render() for f in findings)


def test_tests_never_touch_the_wall_clock():
    result = run_lint(REPO, paths=["tests"], rules=[WallClockRule])
    assert not result.parse_errors, _render(result.parse_errors)
    assert not result.findings, (
        "tests must drive time through repro.serve.clock.VirtualClock "
        "(deterministic, zero real sleeps), not the wall clock:\n"
        + _render(result.findings)
    )


def test_library_never_touches_the_wall_clock():
    result = run_lint(REPO, paths=["src"], rules=[WallClockRule])
    assert not result.parse_errors, _render(result.parse_errors)
    assert not result.findings, (
        "library code must route time through the injected clock "
        "(repro.serve.clock); wall-clock calls break deterministic "
        "replay:\n" + _render(result.findings)
    )


def test_library_never_blocks_the_event_loop():
    result = run_lint(REPO, paths=["src"], rules=[AsyncBlockingRule])
    assert not result.parse_errors, _render(result.parse_errors)
    assert not result.findings, (
        "async bodies must not block the serve event loop; await the "
        "injected clock's sleep / asyncio APIs instead:\n"
        + _render(result.findings)
    )
