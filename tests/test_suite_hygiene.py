"""Suite hygiene: no wall-clock timing in tests, no sleeps in the library.

The serving layer introduced a shared virtual clock
(:class:`repro.serve.clock.VirtualClock`) precisely so time-dependent
behavior — windows, timeouts, retries, arrival schedules — can be tested
deterministically.  These checks keep the suite that way: a test that
calls real sleep/clock functions is timing-dependent and flaky by
construction, and library code that sleeps blocks the serving event
loop.  (Benchmarks measure real elapsed time on purpose and are exempt.)
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: Wall-clock call sites banned from tests.  Assembled so this file's
#: own source does not trip the scan.
_TIME = "time"
BANNED_IN_TESTS = [
    re.compile(rf"\b{_TIME}\.{name}\s*\(")
    for name in ("sleep", "monotonic", "perf_counter", "process_" + _TIME)
] + [re.compile(rf"\b{_TIME}\.{_TIME}\s*\(")]

#: Blocking sleeps banned from the library (they would stall the asyncio
#: event loop the decode service runs on).
BANNED_IN_SRC = [re.compile(rf"\b{_TIME}\.sleep\s*\(")]

SELF = Path(__file__).resolve()


def _scan(root: Path, patterns) -> list:
    offenders = []
    for path in sorted(root.rglob("*.py")):
        if path.resolve() == SELF:
            continue
        text = path.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            for pattern in patterns:
                if pattern.search(line):
                    offenders.append(f"{path.relative_to(REPO)}:{lineno}: "
                                     f"{line.strip()}")
    return offenders


def test_tests_never_touch_the_wall_clock():
    offenders = _scan(REPO / "tests", BANNED_IN_TESTS)
    assert not offenders, (
        "tests must drive time through repro.serve.clock.VirtualClock "
        "(deterministic, zero real sleeps), not the wall clock:\n"
        + "\n".join(offenders)
    )


def test_library_never_blocks_on_sleep():
    offenders = _scan(REPO / "src", BANNED_IN_SRC)
    assert not offenders, (
        "library code must not block the event loop; await an injected "
        "clock's sleep instead:\n" + "\n".join(offenders)
    )
