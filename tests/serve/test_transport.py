"""TCP JSON-lines transport: round trips, typed errors, out-of-order replies.

The server binds port 0 (ephemeral) on loopback; all timing is the
service's own window on the real event-loop clock, but nothing here
sleeps — requests resolve as their micro-batches flush.
"""

import asyncio

import pytest

from repro.serve import DecodeService, DecoderPool
from repro.serve.transport import RemoteDecodeError, ServeClient, start_server


def run(coro):
    return asyncio.run(coro)


async def served(decoder, key="cfg", **service_kwargs):
    pool = DecoderPool()
    pool.register(key, decoder, warm=False)
    service_kwargs.setdefault("window", 1e-3)
    service = DecodeService(pool, **service_kwargs)
    server = await start_server(service, port=0)
    port = server.sockets[0].getsockname()[1]
    client = await ServeClient.connect("127.0.0.1", port)
    return service, server, client


async def teardown(service, server, client):
    await client.aclose()
    server.close()
    await server.wait_closed()
    await service.close()


def test_round_trip_matches_local_decode(counting_decoder):
    async def main():
        service, server, client = await served(counting_decoder)
        result = await client.decode("cfg", (1, 2))
        expected = counting_decoder.decode((1, 2))
        assert result.success == expected.success
        assert result.observable_mask == expected.observable_mask
        assert result.weight == expected.weight
        assert result.cycles == expected.cycles
        await teardown(service, server, client)

    run(main())


def test_configs_lists_registered_keys(counting_decoder):
    async def main():
        service, server, client = await served(counting_decoder)
        assert await client.configs() == ["cfg"]
        await teardown(service, server, client)

    run(main())


def test_unknown_config_forwards_typed_kind(counting_decoder):
    async def main():
        service, server, client = await served(counting_decoder)
        with pytest.raises(RemoteDecodeError) as excinfo:
            await client.decode("nope", (1,))
        assert excinfo.value.kind == "unknown-config"
        await teardown(service, server, client)

    run(main())


def test_concurrent_requests_coalesce_into_one_batch(counting_decoder):
    # Many in-flight requests over one connection land in the same
    # micro-batch server-side; replies are matched by id regardless of
    # completion order.
    async def main():
        service, server, client = await served(
            counting_decoder, max_batch=8
        )
        events = [(i,) for i in range(8)]
        results = await asyncio.gather(
            *[client.decode("cfg", ev) for ev in events]
        )
        assert [r.weight for r in results] == [1.0] * 8
        assert service.batches_flushed == 1
        await teardown(service, server, client)

    run(main())


def test_malformed_line_reports_bad_request(counting_decoder):
    async def main():
        service, server, client = await served(counting_decoder)
        # Bypass the client's encoder and send garbage; the server must
        # answer (id null) instead of dropping the connection.
        waiter = asyncio.get_running_loop().create_future()
        client._waiting[None] = waiter
        client._writer.write(b"this is not json\n")
        await client._writer.drain()
        message = await waiter
        assert message["ok"] is False
        assert message["kind"] == "bad-request"
        # The connection survives: a well-formed request still works.
        result = await client.decode("cfg", (3,))
        assert result.success
        await teardown(service, server, client)

    run(main())
