"""DecodeService behavior: windows, coalescing, backpressure, faults.

Everything runs on a :class:`VirtualClock` — no real time passes, every
flush and timeout is driven explicitly, and the tests are exact (no
"slow machine" tolerances).
"""

import asyncio

import pytest

from repro.serve import (
    BackpressureError,
    DecodeService,
    DecoderPool,
    FaultyDecoder,
    FlakyTransport,
    InjectedFault,
    RequestTimeoutError,
    ServiceClosedError,
    TransportError,
    UnknownConfigError,
    VirtualClock,
    submit_with_retry,
)


def run(coro):
    return asyncio.run(coro)


def make_service(decoder, key="cfg", **kwargs):
    pool = DecoderPool()
    pool.register(key, decoder, warm=False)
    clock = VirtualClock()
    kwargs.setdefault("window", 1e-3)
    return DecodeService(pool, clock=clock, **kwargs), clock


def test_trickle_flushes_on_window_deadline(counting_decoder):
    # One lonely request must be served one window after admission, not
    # wait for company.
    async def main():
        service, clock = make_service(counting_decoder)
        task = asyncio.ensure_future(service.submit("cfg", (1, 2)))
        await clock.advance(0.0)
        assert not task.done()
        await clock.advance(0.5e-3)
        assert not task.done()  # mid-window: still coalescing
        await clock.advance(0.5e-3)
        result = await task
        assert result.success and result.weight == 2.0
        assert service.batches_flushed == 1
        await service.close()

    run(main())


def test_max_batch_flushes_early(counting_decoder):
    # A flood hits max_batch before the window deadline and flushes
    # immediately: no simulated time passes at all.
    async def main():
        service, clock = make_service(counting_decoder, max_batch=4)
        tasks = [
            asyncio.ensure_future(service.submit("cfg", (i,)))
            for i in range(4)
        ]
        await clock.advance(0.0)
        results = await asyncio.gather(*tasks)
        assert all(r.success for r in results)
        assert clock.now() == 0.0
        assert service.batches_flushed == 1
        await service.close()

    run(main())


def test_cross_client_coalescing_dedups(counting_decoder):
    # Three clients, six requests, two distinct syndromes inside one
    # window -> one decode_batch call, one decode per *distinct*
    # syndrome, and identical-syndrome clients share the result.
    async def main():
        service, clock = make_service(counting_decoder)
        counting_decoder.batch_calls = 0  # ignore any warm state
        submissions = [
            ("alice", (1, 2)), ("bob", (3,)), ("carol", (1, 2)),
            ("alice", (3,)), ("bob", (1, 2)), ("carol", (3,)),
        ]
        tasks = [
            asyncio.ensure_future(service.submit("cfg", ev, client=who))
            for who, ev in submissions
        ]
        await clock.advance(1e-3)
        results = await asyncio.gather(*tasks)
        assert counting_decoder.batch_calls == 1
        assert counting_decoder.decode_calls == 2  # dedup across clients
        assert results[0] == results[2] == results[4]
        assert results[1] == results[3] == results[5]
        assert service.shots_decoded == 6
        for who in ("alice", "bob", "carol"):
            assert service.account(who).completed == 2
        await service.close()

    run(main())


def test_independent_configs_flush_independently(make_counting_decoder):
    async def main():
        a, b = make_counting_decoder(), make_counting_decoder()
        pool = DecoderPool()
        pool.register("cfg-a", a, warm=False)
        pool.register("cfg-b", b, warm=False)
        clock = VirtualClock()
        service = DecodeService(pool, clock=clock, window=1e-3, max_batch=2)
        t1 = asyncio.ensure_future(service.submit("cfg-a", (1,)))
        t2 = asyncio.ensure_future(service.submit("cfg-a", (2,)))
        t3 = asyncio.ensure_future(service.submit("cfg-b", (3,)))
        await clock.advance(0.0)
        # cfg-a hit max_batch and flushed; cfg-b still waits its window.
        assert t1.done() and t2.done() and not t3.done()
        await clock.advance(1e-3)
        await asyncio.gather(t1, t2, t3)
        assert a.batch_calls == 1 and b.batch_calls == 1
        await service.close()

    run(main())


def test_backpressure_is_typed_and_immediate(counting_decoder):
    async def main():
        service, clock = make_service(
            counting_decoder, max_pending=2, max_batch=100
        )
        t1 = asyncio.ensure_future(service.submit("cfg", (1,), client="a"))
        t2 = asyncio.ensure_future(service.submit("cfg", (2,), client="a"))
        await clock.advance(0.0)
        with pytest.raises(BackpressureError) as excinfo:
            await service.submit("cfg", (3,), client="b")
        assert excinfo.value.kind == "backpressure"
        assert service.account("b").rejected == 1
        # The queued requests are unharmed and flush normally.
        await clock.advance(1e-3)
        results = await asyncio.gather(t1, t2)
        assert all(r.success for r in results)
        await service.close()

    run(main())


def test_unknown_config_rejected_before_queueing(counting_decoder):
    async def main():
        service, _clock = make_service(counting_decoder)
        with pytest.raises(UnknownConfigError):
            await service.submit("nope", (1,))
        await service.close()

    run(main())


def test_fault_isolation_only_poisoned_requests_fail(counting_decoder):
    # A poisoned syndrome makes the coalesced decode_batch raise; the
    # service falls back to per-request decode so siblings complete.
    async def main():
        faulty = FaultyDecoder(counting_decoder, fail_on=[(6, 6, 6)])
        service, clock = make_service(faulty)
        good1 = asyncio.ensure_future(service.submit("cfg", (1,), client="a"))
        bad = asyncio.ensure_future(service.submit("cfg", (6, 6, 6), client="b"))
        good2 = asyncio.ensure_future(service.submit("cfg", (2,), client="c"))
        await clock.advance(1e-3)
        assert (await good1).success
        assert (await good2).success
        with pytest.raises(InjectedFault):
            await bad
        assert service.account("b").faults == 1
        assert service.account("a").faults == 0
        assert service.account("a").completed == 1
        await service.close()

    run(main())


def test_cancellation_does_not_poison_the_batch(counting_decoder):
    async def main():
        service, clock = make_service(counting_decoder)
        keeper = asyncio.ensure_future(service.submit("cfg", (1,), client="a"))
        doomed = asyncio.ensure_future(service.submit("cfg", (2,), client="b"))
        await clock.advance(0.0)
        doomed.cancel()
        await clock.advance(1e-3)
        assert (await keeper).success
        assert doomed.cancelled()
        # The cancelled request was dropped before decode: only the
        # surviving syndrome was decoded.
        assert (2,) not in counting_decoder.seen
        assert service.account("b").cancelled == 1
        assert service.account("b").completed == 0
        await service.close()

    run(main())


def test_timeout_is_typed_and_scoped_to_one_request(counting_decoder):
    async def main():
        # Window far longer than the request's own deadline.
        service, clock = make_service(counting_decoder, window=1.0)
        patient = asyncio.ensure_future(service.submit("cfg", (1,), client="a"))
        hasty = asyncio.ensure_future(
            service.submit("cfg", (2,), client="b", timeout=0.1)
        )
        await clock.advance(0.5)
        with pytest.raises(RequestTimeoutError):
            await hasty
        assert service.account("b").timeouts == 1
        await clock.advance(0.5)
        assert (await patient).success
        assert (2,) not in counting_decoder.seen  # abandoned before decode
        await service.close()

    run(main())


def test_close_drain_completes_pending(counting_decoder):
    async def main():
        service, clock = make_service(counting_decoder, window=1.0)
        task = asyncio.ensure_future(service.submit("cfg", (1, 2)))
        await clock.advance(0.0)
        await service.close(drain=True)
        assert (await task).success
        with pytest.raises(ServiceClosedError):
            await service.submit("cfg", (3,))

    run(main())


def test_close_without_drain_fails_pending(counting_decoder):
    async def main():
        service, clock = make_service(counting_decoder, window=1.0)
        task = asyncio.ensure_future(service.submit("cfg", (1, 2)))
        await clock.advance(0.0)
        await service.close(drain=False)
        with pytest.raises(ServiceClosedError):
            await task
        assert counting_decoder.decode_calls == 0

    run(main())


def test_flaky_transport_retry_with_virtual_backoff(counting_decoder):
    # Two injected transport failures, then success; backoff sleeps run
    # on the virtual clock (the retry loop never blocks real time).
    async def main():
        service, clock = make_service(counting_decoder)
        flaky = FlakyTransport(service, fail_first=2)
        task = asyncio.ensure_future(
            submit_with_retry(
                flaky, "cfg", (1, 2), retries=3, backoff=0.01, clock=clock
            )
        )
        await clock.advance(0.02)  # burn through both backoff sleeps
        await clock.advance(1e-3)  # the successful attempt's window
        result = await task
        assert result.success
        assert flaky.attempts == 3

    run(main())


def test_flaky_transport_exhausted_retries_raise(counting_decoder):
    async def main():
        service, _clock = make_service(counting_decoder)
        flaky = FlakyTransport(service, fail_first=5)
        with pytest.raises(TransportError):
            await submit_with_retry(flaky, "cfg", (1,), retries=2)
        assert flaky.attempts == 3  # 1 + 2 retries, then give up

    run(main())


def test_retry_does_not_mask_decode_faults(counting_decoder):
    # Only transport errors are transient; an injected decode fault must
    # propagate on the first attempt, not be retried.
    async def main():
        faulty = FaultyDecoder(counting_decoder, fail_on=[(9,)])
        service, clock = make_service(faulty)
        flaky = FlakyTransport(service, fail_first=0)
        task = asyncio.ensure_future(
            submit_with_retry(flaky, "cfg", (9,), retries=5)
        )
        await clock.advance(1e-3)
        with pytest.raises(InjectedFault):
            await task
        assert flaky.attempts == 1

    run(main())
