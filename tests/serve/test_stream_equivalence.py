"""Property test: streamed results == offline decode_batch, always.

The serving layer's correctness contract is that micro-batching is pure
plumbing — whatever grouping the window/flood/fault machinery lands on,
every client receives exactly the result the offline ``decode_batch``
would have produced for its syndrome.  This is fuzzed over randomized
interleavings of clients, configs, arrival schedules, and window sizes,
across the real decoder zoo (including a ``PredecodedDecoder``
pipeline), and it must survive fault injection and mid-window client
cancellations on the healthy requests.

Everything runs on the virtual clock; DecodeResult is a dataclass, so
``==`` compares every field (mask, weight, cycles, matching).
"""

import asyncio
from dataclasses import replace

import numpy as np
import pytest

from repro.eval.experiments import Workbench
from repro.serve import (
    DecodeService,
    DecoderPool,
    FaultyDecoder,
    InjectedFault,
    VirtualClock,
    poisson_arrivals,
    run_traffic,
)

#: Zoo members exercised: an exact baseline, a real-time search decoder,
#: the paper's predecoder+Astrea pipeline (PredecodedDecoder), and the
#: vectorized union-find engine.
ZOO_NAMES = ["MWPM", "Astrea-G", "Promatch+Astrea", "UnionFind"]


@pytest.fixture(scope="module")
def bench():
    return Workbench.build(distance=3, p=3e-3, rng=17)


@pytest.fixture(scope="module")
def workload(bench):
    batch = bench.sample(300)
    return [tuple(int(e) for e in ev) for ev in batch.events]


def grouped_offline(bench, keys, outcomes):
    """Offline decode_batch results per config, in arrival order."""
    names_by_key = {key: name for name, key in keys.items()}
    expected = {}
    for key, name in names_by_key.items():
        group = [o for o in outcomes if o.arrival.config == key]
        results = bench.decoders[name].decode_batch(
            [o.arrival.events for o in group]
        )
        expected.update(dict(zip((id(o) for o in group), results)))
    return expected


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_streamed_results_identical_to_offline_batch(bench, workload, seed):
    # Randomized interleaving: the schedule, window, and batch cap all
    # derive from the seed, so each case lands on different coalescing
    # boundaries — the results must never depend on them.
    async def main():
        rng = np.random.default_rng(seed)
        names = list(ZOO_NAMES)
        pool = DecoderPool()
        keys = {}
        for name in names:
            key = bench.store_key(f"serve:{name}")
            keys[name] = pool.register(key, bench.decoders[name], warm=False)
        arrivals = poisson_arrivals(
            {keys[n]: workload for n in names},
            requests=120,
            clients=int(rng.integers(2, 6)),
            rate_hz=float(rng.uniform(5e2, 5e4)),
            rng=rng,
        )
        service = DecodeService(
            pool,
            clock=VirtualClock(),
            window=float(rng.uniform(1e-4, 5e-3)),
            max_batch=int(rng.integers(4, 64)),
        )
        outcomes = await run_traffic(service, arrivals)
        assert all(o.ok for o in outcomes)
        expected = grouped_offline(bench, keys, outcomes)
        for outcome in outcomes:
            assert outcome.result == expected[id(outcome)]
        assert service.shots_decoded == len(arrivals)
        await service.close()

    asyncio.run(main())


def test_equivalence_survives_faults_and_cancellations(bench, workload):
    # Poison one syndrome of the pipeline decoder and cancel a handful
    # of submissions mid-window: the poisoned requests fail with the
    # injected fault, the cancelled ones report cancellation, and every
    # *other* request still equals its offline result exactly.
    async def main():
        names = list(ZOO_NAMES)
        poisoned = next(ev for ev in workload if len(ev) >= 2)
        pool = DecoderPool()
        keys = {}
        for name in names:
            decoder = bench.decoders[name]
            if name == "Promatch+Astrea":
                decoder = FaultyDecoder(decoder, fail_on=[poisoned])
            key = bench.store_key(f"serve:{name}")
            keys[name] = pool.register(key, decoder, warm=False)
        arrivals = poisson_arrivals(
            {keys[n]: workload for n in names},
            requests=150,
            clients=4,
            rate_hz=2e4,
            rng=5,
        )
        # Force poisoned arrivals into the pipeline lane so the fault
        # path actually fires.
        pipeline_key = keys["Promatch+Astrea"]
        forced = 0
        for i, arrival in enumerate(arrivals):
            if forced < 5 and arrival.config == pipeline_key:
                arrivals[i] = replace(arrival, events=poisoned)
                forced += 1
        assert forced == 5

        clock = VirtualClock()
        service = DecodeService(pool, clock=clock, window=1e-3, max_batch=32)

        to_cancel = {10, 40, 90}

        async def cancelling_driver():
            tasks = []
            for i, arrival in enumerate(arrivals):
                gap = arrival.at - clock.now()
                if gap > 0:
                    await clock.sleep(gap)
                task = asyncio.ensure_future(
                    service.submit(
                        arrival.config, arrival.events, client=arrival.client
                    )
                )
                tasks.append(task)
                if i in to_cancel:
                    task.cancel()
            return tasks

        driver = asyncio.ensure_future(cancelling_driver())
        for _ in range(10_000):
            if driver.done() and all(t.done() for t in driver.result()):
                break
            await clock.advance(1e-3)
        tasks = driver.result()
        assert all(t.done() for t in tasks)

        healthy_by_key = {key: [] for key in keys.values()}
        for i, (arrival, task) in enumerate(zip(arrivals, tasks)):
            if i in to_cancel:
                assert task.cancelled()
                continue
            if arrival.config == pipeline_key and arrival.events == poisoned:
                assert isinstance(task.exception(), InjectedFault)
                continue
            assert task.exception() is None
            healthy_by_key[arrival.config].append((arrival, task))

        names_by_key = {key: name for name, key in keys.items()}
        checked = 0
        for key, group in healthy_by_key.items():
            if not group:
                continue
            offline = bench.decoders[names_by_key[key]].decode_batch(
                [arrival.events for arrival, _task in group]
            )
            for (_arrival, task), expected in zip(group, offline):
                assert task.result() == expected
                checked += 1
        assert checked == len(arrivals) - len(to_cancel) - forced
        await service.close()

    asyncio.run(main())


def test_natural_poison_occurrences_also_fail(bench, workload):
    # A syndrome equal to the poisoned one is poisoned no matter which
    # client sent it or how it was batched: failure is a property of the
    # (config, syndrome) pair, not of the request object.
    async def main():
        poisoned = next(ev for ev in workload if ev)
        decoder = FaultyDecoder(bench.decoders["UnionFind"], fail_on=[poisoned])
        pool = DecoderPool()
        pool.register("cfg", decoder, warm=False)
        clock = VirtualClock()
        service = DecodeService(pool, clock=clock, window=1e-3)
        first = asyncio.ensure_future(
            service.submit("cfg", poisoned, client="a")
        )
        second = asyncio.ensure_future(
            service.submit("cfg", poisoned, client="b")
        )
        await clock.advance(1e-3)
        for task in (first, second):
            with pytest.raises(InjectedFault):
                await task
        await service.close()

    asyncio.run(main())
