"""DecoderPool: warm registration, stable config keys, typed lookups."""

import pytest

from repro.serve import DecoderPool, UnknownConfigError


def test_register_and_get(counting_decoder):
    pool = DecoderPool()
    key = pool.register("cfg-a", counting_decoder, meta={"decoder": "counting"})
    assert key == "cfg-a"
    assert pool.get("cfg-a") is counting_decoder
    assert pool.describe("cfg-a") == {"decoder": "counting"}
    assert "cfg-a" in pool
    assert len(pool) == 1
    assert pool.keys() == ["cfg-a"]


def test_register_warms_the_decoder(counting_decoder):
    # Registration pre-pays lazy construction: the warmup hook decodes
    # the empty syndrome through the batch path before any client.
    pool = DecoderPool()
    pool.register("cfg-a", counting_decoder)
    assert counting_decoder.batch_calls == 1
    assert counting_decoder.seen == [()]


def test_register_warm_false_skips_warmup(counting_decoder):
    pool = DecoderPool()
    pool.register("cfg-a", counting_decoder, warm=False)
    assert counting_decoder.batch_calls == 0


def test_key_collision_raises(counting_decoder, make_counting_decoder):
    pool = DecoderPool()
    pool.register("cfg-a", counting_decoder)
    with pytest.raises(ValueError, match="already registered"):
        pool.register("cfg-a", make_counting_decoder())


def test_unknown_config_is_typed(counting_decoder):
    pool = DecoderPool()
    pool.register("cfg-a", counting_decoder)
    with pytest.raises(UnknownConfigError) as excinfo:
        pool.get("cfg-b")
    assert excinfo.value.kind == "unknown-config"
    assert "cfg-a" in str(excinfo.value)  # the known keys are listed


class _FakeWorkbench:
    """The slice of the Workbench surface warm_workbench touches."""

    distance = 3
    p = 1e-3
    rounds = 3

    def __init__(self, decoders) -> None:
        self.decoders = decoders

    def store_key(self, kind: str) -> str:
        return f"key:{kind}"


def test_warm_workbench_derives_store_keys(make_counting_decoder):
    bench = _FakeWorkbench(
        {"A": make_counting_decoder(), "B": make_counting_decoder()}
    )
    pool = DecoderPool()
    keys = pool.warm_workbench(bench)
    assert keys == {"A": "key:serve:A", "B": "key:serve:B"}
    assert pool.describe(keys["A"]) == {
        "decoder": "A", "distance": 3, "p": 1e-3, "rounds": 3,
    }
    # Every registered decoder came out warm.
    assert all(d.batch_calls == 1 for d in bench.decoders.values())


def test_warm_workbench_rejects_unknown_names(make_counting_decoder):
    bench = _FakeWorkbench({"A": make_counting_decoder()})
    with pytest.raises(ValueError, match="unknown decoders"):
        DecoderPool().warm_workbench(bench, names=["A", "nope"])
