"""Unit tests for the synthetic traffic generators.

Both generators must be pure functions of their seed — the load bench
and the CI smoke job rely on replaying byte-identical schedules.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.serve import poisson_arrivals, shard_replay_arrivals  # noqa: E402

WORKLOADS = {"cfg-a": [(1, 2), (3,)], "cfg-b": [(), (4, 5), (6,)]}


class TestPoissonArrivals:
    def test_deterministic_given_seed(self):
        a = poisson_arrivals(WORKLOADS, requests=50, rate_hz=1e3, rng=7)
        b = poisson_arrivals(WORKLOADS, requests=50, rate_hz=1e3, rng=7)
        assert a == b

    def test_seed_changes_schedule(self):
        a = poisson_arrivals(WORKLOADS, requests=50, rate_hz=1e3, rng=7)
        b = poisson_arrivals(WORKLOADS, requests=50, rate_hz=1e3, rng=8)
        assert a != b

    def test_saturation_schedules_everything_at_t0(self):
        arrivals = poisson_arrivals(WORKLOADS, requests=20, rng=0)
        assert all(a.at == 0.0 for a in arrivals)

    def test_rated_arrivals_are_monotone(self):
        arrivals = poisson_arrivals(WORKLOADS, requests=40, rate_hz=1e4, rng=3)
        times = [a.at for a in arrivals]
        assert times == sorted(times)
        assert times[-1] > 0.0

    def test_draws_only_from_named_workloads(self):
        arrivals = poisson_arrivals(WORKLOADS, requests=100, clients=3, rng=5)
        assert {a.config for a in arrivals} <= set(WORKLOADS)
        for a in arrivals:
            assert a.events in [tuple(e) for e in WORKLOADS[a.config]]
        assert {a.client for a in arrivals} <= {f"client-{i}" for i in range(3)}

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(requests=-1), "requests"),
            (dict(requests=1, clients=0), "clients"),
            (dict(requests=1, rate_hz=0.0), "rate_hz"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            poisson_arrivals(WORKLOADS, **kwargs)

    def test_rejects_empty_config_pool(self):
        with pytest.raises(ValueError, match="empty workloads"):
            poisson_arrivals({"cfg": []}, requests=1)

    def test_rejects_no_configs(self):
        with pytest.raises(ValueError, match="at least one config"):
            poisson_arrivals({}, requests=1)


class TestShardReplayArrivals:
    def test_every_client_replays_every_position(self):
        shards = {"cfg-a": [(1,), (2,), (3,)], "cfg-b": [(4,), (5,)]}
        arrivals = shard_replay_arrivals(shards, clients=3, rng=0)
        assert len(arrivals) == 3 * (3 + 2)
        for config, stream in shards.items():
            for events in stream:
                submitters = {
                    a.client
                    for a in arrivals
                    if a.config == config and a.events == events
                }
                assert submitters == {f"client-{i}" for i in range(3)}

    def test_position_major_interleave(self):
        shards = {"cfg-a": [(1,), (2,)], "cfg-b": [(3,), (4,)]}
        arrivals = shard_replay_arrivals(shards, clients=2, rng=0)
        # All submissions of position 0 (both configs, both clients)
        # precede every submission of position 1.
        events_order = [a.events for a in arrivals]
        assert events_order == [
            (1,), (1,), (3,), (3,), (2,), (2,), (4,), (4,)
        ]

    def test_deterministic_given_seed(self):
        shards = {"cfg": [(1,), (2,)]}
        a = shard_replay_arrivals(shards, clients=2, rate_hz=1e3, rng=11)
        b = shard_replay_arrivals(shards, clients=2, rate_hz=1e3, rng=11)
        assert a == b

    def test_saturation_schedules_everything_at_t0(self):
        arrivals = shard_replay_arrivals({"cfg": [(1,), ()]}, clients=2, rng=0)
        assert all(a.at == 0.0 for a in arrivals)

    def test_uneven_streams_drop_out(self):
        shards = {"long": [(1,), (2,), (3,)], "short": [(9,)]}
        arrivals = shard_replay_arrivals(shards, clients=1, rng=0)
        assert [a.config for a in arrivals] == ["long", "short", "long", "long"]

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(clients=0), "clients"),
            (dict(rate_hz=-1.0), "rate_hz"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            shard_replay_arrivals({"cfg": [(1,)]}, **kwargs)

    def test_rejects_no_configs(self):
        with pytest.raises(ValueError, match="at least one config"):
            shard_replay_arrivals({})
