"""VirtualClock: deterministic time for async tests, zero real sleeps.

The serving tests (and any future async tests) drive all timing through
this clock; these tests pin its contract: sleeps resolve strictly in
deadline order, ``advance`` wakes everything due and nothing else, and
cancelled sleepers are skipped silently.
"""

import asyncio

import pytest

from repro.serve import SystemClock, VirtualClock


def run(coro):
    return asyncio.run(coro)


def test_time_starts_at_zero_and_advances_exactly():
    async def main():
        clock = VirtualClock()
        assert clock.now() == 0.0
        await clock.advance(1.5)
        assert clock.now() == 1.5
        await clock.advance(0.25)
        assert clock.now() == 1.75

    run(main())


def test_sleep_resolves_only_when_deadline_reached():
    async def main():
        clock = VirtualClock()
        sleeper = asyncio.ensure_future(clock.sleep(1.0))
        await clock.advance(0.5)
        assert not sleeper.done()
        await clock.advance(0.499)
        assert not sleeper.done()
        await clock.advance(0.001)
        assert sleeper.done()

    run(main())


def test_sleepers_wake_in_deadline_order():
    async def main():
        clock = VirtualClock()
        order = []

        async def napper(tag, delay):
            await clock.sleep(delay)
            order.append(tag)

        tasks = [
            asyncio.ensure_future(napper("c", 3.0)),
            asyncio.ensure_future(napper("a", 1.0)),
            asyncio.ensure_future(napper("b", 2.0)),
        ]
        await clock.advance(5.0)
        await asyncio.gather(*tasks)
        assert order == ["a", "b", "c"]

    run(main())


def test_chained_sleeps_within_one_advance():
    # A sleeper that immediately sleeps again must be woken by the same
    # advance() call when both deadlines fall inside the step.
    async def main():
        clock = VirtualClock()
        marks = []

        async def chained():
            await clock.sleep(1.0)
            marks.append(clock.now())
            await clock.sleep(1.0)
            marks.append(clock.now())

        task = asyncio.ensure_future(chained())
        await clock.advance(2.0)
        await task
        assert marks == [1.0, 2.0]

    run(main())


def test_cancelled_sleeper_is_skipped():
    async def main():
        clock = VirtualClock()
        doomed = asyncio.ensure_future(clock.sleep(1.0))
        survivor = asyncio.ensure_future(clock.sleep(2.0))
        await clock.advance(0.0)
        doomed.cancel()
        await clock.advance(5.0)
        assert doomed.cancelled()
        await survivor  # resolves despite the cancelled earlier sleeper
        assert clock.pending_sleepers == 0

    run(main())


def test_zero_delay_sleep_resolves_on_zero_advance():
    async def main():
        clock = VirtualClock()
        sleeper = asyncio.ensure_future(clock.sleep(0.0))
        await clock.advance(0.0)
        assert sleeper.done()
        assert clock.now() == 0.0

    run(main())


def test_negative_sleep_clamps_to_immediate():
    # Matches asyncio.sleep semantics: a negative delay means "now".
    async def main():
        clock = VirtualClock()
        sleeper = asyncio.ensure_future(clock.sleep(-1.0))
        await clock.advance(0.0)
        assert sleeper.done()
        assert clock.now() == 0.0

    run(main())


def test_advance_backwards_rejected():
    async def main():
        clock = VirtualClock()
        with pytest.raises(ValueError):
            await clock.advance(-1.0)

    run(main())


def test_pending_sleepers_counts_live_waiters():
    async def main():
        clock = VirtualClock()
        tasks = [asyncio.ensure_future(clock.sleep(d)) for d in (1.0, 2.0)]
        await clock.advance(0.0)
        assert clock.pending_sleepers == 2
        await clock.advance(1.0)
        assert clock.pending_sleepers == 1
        await clock.advance(1.0)
        assert clock.pending_sleepers == 0
        await asyncio.gather(*tasks)

    run(main())


def test_system_clock_shape():
    # The production clock satisfies the same interface; no timing
    # assertions (that would reintroduce wall-clock flakiness).
    async def main():
        clock = SystemClock()
        assert isinstance(clock.now(), float)
        await clock.sleep(0)

    run(main())
