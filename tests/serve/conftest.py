"""Serving-test fixtures: cheap instrumented decoders on synthetic graphs.

The service's coalescing/backpressure/fault logic is decoder-agnostic, so
most tests run against :class:`CountingDecoder` — a trivially correct
decoder that records exactly how it was driven (decode calls, batch
calls, syndromes seen) — instead of a real zoo stack.  Stream/batch
equivalence against the real zoo lives in ``test_stream_equivalence``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_path_graph  # noqa: E402

from repro.decoders.base import DecodeResult, Decoder  # noqa: E402


class CountingDecoder(Decoder):
    """A correct-by-construction decoder that records its call pattern.

    ``decode`` is a pure function of the event tuple (mask = parity of
    the event count, cycles = HW + 1), so the batch fast path's dedup and
    fan-out apply, and tests can assert exact call counts: one
    ``decode_batch`` per flush, one ``decode`` per *distinct* syndrome.
    """

    name = "counting"

    def __init__(self, graph) -> None:
        super().__init__(graph)
        self.decode_calls = 0
        self.batch_calls = 0
        self.seen = []

    def decode(self, events) -> DecodeResult:
        self.decode_calls += 1
        events = tuple(int(e) for e in events)
        self.seen.append(events)
        return DecodeResult(
            success=True,
            observable_mask=len(events) & 1,
            weight=float(len(events)),
            cycles=float(len(events) + 1),
        )

    def decode_batch(self, batch_events):
        self.batch_calls += 1
        return super().decode_batch(batch_events)


@pytest.fixture
def counting_decoder():
    return CountingDecoder(make_path_graph(6))


@pytest.fixture
def make_counting_decoder():
    return lambda: CountingDecoder(make_path_graph(6))
