"""Per-client accounting: the ledger agrees with hardware/latency.py.

Two layers: :class:`RequestLedger` unit semantics (charging, deadline
misses, unit conversion), and the service-level guarantee that what a
client is charged equals exactly what the cycle model says its syndromes
cost — verified against a real real-time decoder (Astrea), whose
reported cycles are ``astrea_cycles(HW)`` by construction.
"""

import asyncio
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_path_graph  # noqa: E402

from repro.decoders import AstreaDecoder
from repro.hardware.latency import (
    BUDGET_CYCLES,
    CYCLE_NS,
    RequestLedger,
    astrea_cycles,
    cycles_to_ns,
)
from repro.serve import DecodeService, DecoderPool, VirtualClock


def run(coro):
    return asyncio.run(coro)


class TestRequestLedger:
    def test_defaults_to_paper_budget(self):
        ledger = RequestLedger()
        assert ledger.budget_cycles == BUDGET_CYCLES == 240

    def test_successful_charges_accumulate(self):
        ledger = RequestLedger()
        ledger.charge(100.0)
        ledger.charge(40.0)
        assert ledger.requests == 2
        assert ledger.cycles == 140.0
        assert ledger.deadline_misses == 0
        assert ledger.mean_cycles == 70.0
        assert ledger.miss_fraction == 0.0

    def test_success_over_budget_counts_a_miss(self):
        ledger = RequestLedger(budget_cycles=10)
        ledger.charge(11.0)
        assert ledger.deadline_misses == 1
        assert ledger.cycles == 11.0

    def test_failure_pinned_at_full_budget(self):
        # An abort burned the whole budget before giving up — mirror the
        # latency census and charge it all, always counting a miss.
        ledger = RequestLedger(budget_cycles=240)
        ledger.charge(57.0, success=False)
        assert ledger.cycles == 240.0
        assert ledger.deadline_misses == 1
        ledger.charge(300.0, success=False)  # blew past the budget
        assert ledger.cycles == 540.0
        assert ledger.deadline_misses == 2

    def test_non_realtime_decoder_charges_nothing_on_success(self):
        ledger = RequestLedger()
        ledger.charge(None)
        assert ledger.requests == 1
        assert ledger.cycles == 0.0
        assert ledger.deadline_misses == 0

    def test_total_ns_uses_the_250mhz_clock(self):
        ledger = RequestLedger()
        ledger.charge(240.0)
        assert ledger.total_ns == cycles_to_ns(240) == 240 * CYCLE_NS == 960.0

    def test_empty_ledger_ratios_are_zero(self):
        ledger = RequestLedger()
        assert ledger.mean_cycles == 0.0
        assert ledger.miss_fraction == 0.0


def test_service_charges_match_astrea_cycle_model():
    # Submit syndromes of known Hamming weight through the service; each
    # client's ledger must equal the sum of astrea_cycles(HW) over its
    # own syndromes — the service introduces no accounting drift.
    async def main():
        graph = make_path_graph(8)
        pool = DecoderPool()
        pool.register("cfg", AstreaDecoder(graph))
        clock = VirtualClock()
        service = DecodeService(pool, clock=clock, window=1e-3)
        jobs = {
            "alice": [(0, 1), (2, 3, 4, 5), ()],
            "bob": [(1, 2), (0, 1, 2, 3)],
        }
        tasks = {
            who: [
                asyncio.ensure_future(service.submit("cfg", ev, client=who))
                for ev in events
            ]
            for who, events in jobs.items()
        }
        await clock.advance(1e-3)
        for who in jobs:
            await asyncio.gather(*tasks[who])
        for who, events in jobs.items():
            expected = sum(astrea_cycles(len(ev)) for ev in events)
            ledger = service.account(who).ledger
            assert ledger.requests == len(events)
            assert ledger.cycles == expected
            assert ledger.total_ns == cycles_to_ns(expected)
            assert ledger.deadline_misses == 0
        await service.close()

    run(main())


def test_queueing_latency_is_exact_on_the_virtual_clock(counting_decoder):
    # A trickle request admitted at t=0 flushes at t=window: its
    # observed queueing latency is exactly the window, and the
    # quantiles collapse onto it.
    async def main():
        pool = DecoderPool()
        pool.register("cfg", counting_decoder, warm=False)
        clock = VirtualClock()
        service = DecodeService(pool, clock=clock, window=2e-3)
        task = asyncio.ensure_future(service.submit("cfg", (1,), client="a"))
        await clock.advance(2e-3)
        await task
        (latency,) = service.account("a").latencies
        assert latency == pytest.approx(2e-3)
        quantiles = service.latency_quantiles("a")
        assert quantiles == {
            "p50": pytest.approx(2e-3),
            "p95": pytest.approx(2e-3),
            "p99": pytest.approx(2e-3),
        }
        await service.close()

    run(main())


def test_max_batch_flush_has_zero_queueing_latency(counting_decoder):
    async def main():
        pool = DecoderPool()
        pool.register("cfg", counting_decoder, warm=False)
        clock = VirtualClock()
        service = DecodeService(pool, clock=clock, window=1.0, max_batch=2)
        t1 = asyncio.ensure_future(service.submit("cfg", (1,), client="a"))
        t2 = asyncio.ensure_future(service.submit("cfg", (2,), client="a"))
        await clock.advance(0.0)
        await asyncio.gather(t1, t2)
        assert service.account("a").latencies == [0.0, 0.0]
        await service.close()

    run(main())


def test_empty_quantiles_are_zero(counting_decoder):
    async def main():
        pool = DecoderPool()
        pool.register("cfg", counting_decoder, warm=False)
        service = DecodeService(pool, clock=VirtualClock())
        assert service.latency_quantiles() == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
        await service.close()

    run(main())
