"""Tests for error-suppression / threshold analysis."""

import pytest

from repro.eval.threshold import crossing_point, lambda_factor, projected_ler


class TestLambda:
    def test_basic_ratio(self):
        estimates = lambda_factor({3: 1e-3, 5: 2.5e-4}, p=1e-3)
        assert len(estimates) == 1
        assert estimates[0].lambda_factor == pytest.approx(4.0)
        assert estimates[0].suppressing

    def test_zero_rows_skipped(self):
        estimates = lambda_factor({3: 1e-3, 5: 0.0, 7: 1e-5}, p=1e-3)
        assert len(estimates) == 1
        assert estimates[0].distance_small == 3
        assert estimates[0].distance_large == 7

    def test_above_threshold_not_suppressing(self):
        estimates = lambda_factor({3: 1e-2, 5: 2e-2}, p=2e-2)
        assert not estimates[0].suppressing

    def test_empty(self):
        assert lambda_factor({}, p=1e-3) == []


class TestProjection:
    def test_constant_lambda_extrapolation(self):
        lers = {3: 1e-3, 5: 1e-4}  # Lambda = 10
        assert projected_ler(lers, 1e-3, target_distance=9) == pytest.approx(
            1e-6, rel=1e-9
        )

    def test_no_data(self):
        assert projected_ler({3: 0.0}, 1e-3, 9) is None

    def test_backwards_target_rejected(self):
        with pytest.raises(ValueError):
            projected_ler({3: 1e-3, 5: 1e-4}, 1e-3, target_distance=3)


class TestCrossing:
    def test_clean_crossing(self):
        rates = [1e-3, 3e-3, 1e-2, 3e-2]
        small = [1e-4, 1e-3, 1e-2, 5e-2]  # d small: shallower
        large = [1e-5, 3e-4, 1e-2 * 1.0, 9e-2]  # crosses around 1e-2
        crossing = crossing_point(rates, small, large)
        assert crossing == pytest.approx(1e-2, rel=0.3)

    def test_no_crossing_below_threshold(self):
        rates = [1e-4, 2e-4]
        small = [1e-6, 1e-5]
        large = [1e-8, 1e-7]
        assert crossing_point(rates, small, large) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crossing_point([1e-3], [1e-4, 1e-5], [1e-6])

    def test_real_stack_below_threshold(self, d3_stack, d5_stack):
        """At p = 1e-3 the d=3 -> d=5 suppression must be measurable."""
        from repro.eval.ler import estimate_ler_direct
        from repro.decoders import MWPMDecoder

        lers = {}
        for d, stack in ((3, d3_stack), (5, d5_stack)):
            _exp, dem, graph = stack
            out = estimate_ler_direct(
                {"MWPM": MWPMDecoder(graph)}, dem, 1e-3, shots=30000, rng=13
            )
            lers[d] = out["MWPM"].ler
        estimates = lambda_factor(lers, p=1e-3)
        assert estimates and estimates[0].suppressing
