"""Tests for the experiment workbench and censuses."""

import numpy as np
import pytest

from repro.core import PromatchPredecoder
from repro.decoders import AstreaDecoder, SmithPredecoder
from repro.eval.experiments import (
    Workbench,
    chain_length_census,
    hw_reduction_census,
    latency_census,
    step_usage_census,
)


@pytest.fixture(scope="module")
def bench():
    return Workbench.build(distance=5, p=2e-3, rng=77)


@pytest.fixture(scope="module")
def high_hw_batch(bench):
    batch = bench.sample_high_hw(shots_per_k=40, hw_min=11, k_max=12)
    assert batch.shots > 0
    return batch


class TestWorkbench:
    def test_zoo_contains_paper_configs(self, bench):
        for name in (
            "MWPM",
            "Astrea-G",
            "Promatch+Astrea",
            "Smith+Astrea",
            "Clique+Astrea",
            "Promatch || AG",
            "Smith || AG",
            "UnionFind",
        ):
            assert name in bench.decoders

    def test_sampling(self, bench):
        batch = bench.sample(100)
        assert batch.shots == 100

    def test_exact_k(self, bench):
        batch = bench.sample_exact_k(3, 50)
        assert (batch.fault_counts == 3).all()

    def test_defaults(self):
        small = Workbench.build(distance=3, p=1e-3)
        assert small.rounds == 3


class TestHighHwSampling:
    def test_hw_floor_respected(self, high_hw_batch):
        assert (high_hw_batch.hamming_weights() >= 11).all()

    def test_weights_are_probabilities(self, high_hw_batch):
        assert high_hw_batch.weights is not None
        assert (high_hw_batch.weights > 0).all()
        # Total weighted mass = P(HW > 10), a small probability.
        assert high_hw_batch.weights.sum() < 0.1


class TestCensuses:
    def test_chain_length_census_dominated_by_length1(self, bench, high_hw_batch):
        """Figure 5's core claim: most matched chains have length 1."""
        histogram = chain_length_census(bench.graph, high_hw_batch)
        assert histogram.sum() == pytest.approx(1.0)
        assert histogram[1] > 0.55

    def test_hw_reduction_census(self, bench, high_hw_batch):
        predecoders = {
            "Promatch": PromatchPredecoder(bench.graph),
            "Smith": SmithPredecoder(bench.graph),
        }
        histograms = hw_reduction_census(
            bench.graph, high_hw_batch, predecoders
        )
        # Before: all mass at HW >= 11.
        assert histograms["before"][:11].sum() == 0
        # Promatch: coverage guarantee -> never above Astrea's limit.
        assert histograms["Promatch"][11:].sum() == 0
        # Masses match (same weights).
        assert histograms["Promatch"].sum() == pytest.approx(
            histograms["before"].sum()
        )

    def test_latency_census(self, bench, high_hw_batch):
        census = latency_census(
            bench.graph,
            high_hw_batch,
            PromatchPredecoder(bench.graph),
            AstreaDecoder(bench.graph),
        )
        assert 0 < census.predecode_avg_ns <= census.predecode_max_ns
        assert census.predecode_avg_ns < census.total_avg_ns
        assert census.total_max_ns <= 1000.0
        assert 0 <= census.deadline_miss_probability <= 1

    def test_latency_census_cycle_floor(self, bench, high_hw_batch):
        """Every decode consumes >= 1 pipeline cycle -- the latch floor.

        Guards the union-find (AFS) cycle-accounting invariant on the
        same census workload: degenerate decodes (empty syndromes,
        isolated event nodes) must report ``cycles >= 1`` like every
        other decode, or census averages silently sink below a cycle.
        """
        decoder = bench.decoders["UnionFind"]
        workload = list(high_hw_batch.events) + [()]
        results = decoder.decode_batch(workload)
        assert all(r.cycles is not None and r.cycles >= 1 for r in results)
        assert results[-1].cycles == 1  # the empty syndrome's floor

    def test_step_usage_census(self, bench, high_hw_batch):
        usage = step_usage_census(high_hw_batch, PromatchPredecoder(bench.graph))
        assert set(usage) == {0, 1, 2, 3, 4, 5}
        total = sum(usage.values())
        assert total == pytest.approx(1.0, abs=1e-6)
        # Step 1 dominates (Table 6).  At d=5 the graph is small enough
        # that dense patterns are relatively common, so the dominance is
        # weaker than the paper's 99.6% at d=11 (asserted in the
        # integration suite); here we only pin the ordering.
        assert usage[1] > 0.5
        assert usage[1] > usage[2] > max(usage[3], usage[4])


class _FixedStepsPredecoder:
    """Census stub reporting a fixed steps_used sequence."""

    def __init__(self, steps):
        self.steps = list(steps)

    def predecode_batch(self, batch):
        from types import SimpleNamespace

        return [
            SimpleNamespace(steps_used=s) for s in self.steps[: batch.shots]
        ]


class TestStepUsageBuckets:
    """Out-of-range steps must land in explicit buckets, not vanish.

    Regression: shots whose deepest step fell outside 1..4 were dropped
    from the numerator while still counting in the denominator, so the
    reported Table 6 fractions summed to less than 1."""

    def _batch(self, shots):
        from repro.sim.sampler import SyndromeBatch

        return SyndromeBatch(
            events=[() for _ in range(shots)],
            observables=np.zeros(shots, dtype=np.int64),
        )

    def test_fractions_partition_the_batch(self):
        usage = step_usage_census(
            self._batch(6), _FixedStepsPredecoder([0, 1, 1, 2, 7, 4])
        )
        assert set(usage) == {0, 1, 2, 3, 4, 5}
        assert sum(usage.values()) == pytest.approx(1.0)
        assert usage[0] == pytest.approx(1 / 6)   # no step engaged
        assert usage[1] == pytest.approx(2 / 6)
        assert usage[5] == pytest.approx(1 / 6)   # beyond step 4

    def test_in_range_only_matches_historic_fractions(self):
        usage = step_usage_census(
            self._batch(4), _FixedStepsPredecoder([1, 2, 2, 3])
        )
        assert usage[1] == pytest.approx(0.25)
        assert usage[2] == pytest.approx(0.5)
        assert usage[0] == usage[5] == 0.0


class TestShardedCensuses:
    """Sharded censuses must return exactly the sequential results.

    Workers only decode/predecode their shot range; aggregation runs
    caller-side on the concatenated per-shot rows, so any ``shards``
    width must be bitwise identical to ``shards=1``.
    """

    @pytest.fixture(scope="class")
    def d3_bench(self):
        return Workbench.build(distance=3, p=3e-3, rng=31)

    @pytest.fixture(scope="class")
    def d3_batch(self, d3_bench):
        batch = d3_bench.sample_high_hw(shots_per_k=80, hw_min=5, k_max=8)
        assert batch.shots > 3
        return batch

    @pytest.mark.parametrize("shards", [2, 3, 7])
    def test_chain_length_shard_equality(self, d3_bench, d3_batch, shards):
        sequential = chain_length_census(d3_bench.graph, d3_batch, max_length=6)
        sharded = chain_length_census(
            d3_bench.graph, d3_batch, max_length=6, shards=shards
        )
        assert np.array_equal(sequential, sharded)

    @pytest.mark.parametrize("shards", [2, 5])
    def test_hw_reduction_shard_equality(self, d3_bench, d3_batch, shards):
        predecoders = {
            "Promatch": PromatchPredecoder(d3_bench.graph),
            "Smith": SmithPredecoder(d3_bench.graph),
        }
        sequential = hw_reduction_census(
            d3_bench.graph, d3_batch, predecoders, n_bins=16
        )
        sharded = hw_reduction_census(
            d3_bench.graph, d3_batch, predecoders, n_bins=16, shards=shards
        )
        assert set(sequential) == set(sharded)
        for name in sequential:
            assert np.array_equal(sequential[name], sharded[name]), name

    def test_latency_shard_equality(self, d3_bench, d3_batch):
        sequential = latency_census(
            d3_bench.graph,
            d3_batch,
            PromatchPredecoder(d3_bench.graph),
            AstreaDecoder(d3_bench.graph),
        )
        sharded = latency_census(
            d3_bench.graph,
            d3_batch,
            PromatchPredecoder(d3_bench.graph),
            AstreaDecoder(d3_bench.graph),
            shards=3,
        )
        assert sequential == sharded

    def test_step_usage_shard_equality(self, d3_bench, d3_batch):
        sequential = step_usage_census(
            d3_batch, PromatchPredecoder(d3_bench.graph)
        )
        sharded = step_usage_census(
            d3_batch, PromatchPredecoder(d3_bench.graph), shards=4
        )
        assert sequential == sharded

    def test_wider_than_batch_is_fine(self, d3_bench, d3_batch):
        sequential = step_usage_census(
            d3_batch, PromatchPredecoder(d3_bench.graph)
        )
        oversharded = step_usage_census(
            d3_batch, PromatchPredecoder(d3_bench.graph), shards=1000
        )
        assert sequential == oversharded

    def test_invalid_shards_rejected(self, d3_bench, d3_batch):
        with pytest.raises(ValueError):
            chain_length_census(d3_bench.graph, d3_batch, shards=0)
