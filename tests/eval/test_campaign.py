"""Campaign layer: spec compilation, the cache rule, bitwise artifacts.

The contract under test (docs/campaigns.md): a campaign whose store
already covers every step performs **zero decode work** -- no zoo build,
no pool fork -- while producing a byte-identical consolidated artifact.
"""

import json
from types import SimpleNamespace

import pytest

from repro.decoders import MWPMDecoder, UnionFindDecoder
from repro.eval.campaign import (
    CampaignContext,
    campaign_status,
    load_campaign_text,
    run_campaign,
    step_coverage,
)
from repro.eval.ler import estimate_ler_suite
from repro.eval.pool import pool_spinups
from repro.eval.store import ArtifactRecord, ExperimentStore, config_key
from repro.utils.rng import stable_seed

DISTANCE = 3
P = 3e-3


class CountingDecoder:
    """Forwards to an inner decoder while counting decoded shots."""

    def __init__(self, inner):
        self.inner = inner
        self.graph = inner.graph
        self.shots_decoded = 0

    def decode(self, events):
        self.shots_decoded += 1
        return self.inner.decode(events)

    def decode_batch(self, batch):
        self.shots_decoded += len(getattr(batch, "events", batch))
        return self.inner.decode_batch(batch)


@pytest.fixture()
def bench_factory(d3_stack):
    """A Workbench-like factory over the shared d=3 stack.

    The counting decoders let tests assert exactly how much decode work
    a campaign run performs (the cache rule's "zero work" guarantee).
    """
    from repro.graph import build_decoding_graph

    _exp, dem, _graph = d3_stack
    built = []

    def factory(distance, p):
        assert distance == DISTANCE
        graph = build_decoding_graph(dem, p)
        decoders = {
            "MWPM": CountingDecoder(MWPMDecoder(graph)),
            "UF": CountingDecoder(UnionFindDecoder(graph)),
        }
        bench = SimpleNamespace(
            distance=distance, p=p, dem=dem, graph=graph, decoders=decoders
        )
        built.append(bench)
        return bench

    factory.built = built
    return factory


def decoded_shots(factory):
    return sum(
        decoder.shots_decoded
        for bench in factory.built
        for decoder in bench.decoders.values()
    )


def spec(store_path, body):
    return (
        "[campaign]\n"
        'name = "t"\n'
        f'store = "{store_path}"\n'
        "\n"
        "[defaults]\n"
        f"distances = [{DISTANCE}]\n"
        f"error_rates = [{P}]\n"
        "k_max = 4\n"
        "shots_per_k = 30\n"
        "census_shots = 6\n"
        "\n" + body
    )


LER_BODY = """
[[steps]]
name = "grid"
kind = "eq1"
decoders = ["MWPM", "UF"]
[steps.parallel]
"MWPM || UF" = ["MWPM", "UF"]

[[steps]]
name = "mc"
kind = "direct"
decoders = ["MWPM"]
shots = 400
"""


def load(tmp_path, body=LER_BODY, cli=None):
    return load_campaign_text(spec(tmp_path / "store.jsonl", body), cli=cli)


class TestSpecCompilation:
    def test_requires_campaign_name(self):
        with pytest.raises(ValueError, match="name"):
            load_campaign_text('[campaign]\nstore = "s"\n[[steps]]\nname = "a"\n')

    def test_rejects_unknown_campaign_key(self, tmp_path):
        text = spec(tmp_path / "s", LER_BODY).replace(
            'name = "t"', 'name = "t"\nwat = 1'
        )
        with pytest.raises(ValueError, match="unknown key"):
            load_campaign_text(text)

    def test_rejects_unknown_step_key(self, tmp_path):
        with pytest.raises(ValueError, match="unknown key"):
            load(tmp_path, LER_BODY + "typo_knob = 3\n")

    def test_rejects_duplicate_step_names(self, tmp_path):
        body = LER_BODY.replace('name = "mc"', 'name = "grid"')
        with pytest.raises(ValueError, match="duplicate"):
            load(tmp_path, body)

    def test_rejects_bad_kind(self, tmp_path):
        with pytest.raises(ValueError, match="kind"):
            load(tmp_path, '[[steps]]\nname = "a"\nkind = "magic"\n')

    def test_rejects_bad_census_kind(self, tmp_path):
        with pytest.raises(ValueError, match="census"):
            load(
                tmp_path,
                '[[steps]]\nname = "a"\nkind = "census"\ncensus = "nope"\n',
            )

    def test_rejects_census_field_on_ler_step(self, tmp_path):
        body = LER_BODY.replace(
            'kind = "direct"', 'kind = "direct"\ncensus = "latency"'
        )
        with pytest.raises(ValueError, match="census"):
            load(tmp_path, body)

    def test_rejects_parallel_with_unknown_components(self, tmp_path):
        body = LER_BODY.replace('["MWPM", "UF"]', '["MWPM", "missing"]', 1)
        with pytest.raises(ValueError, match="unknown"):
            load(tmp_path, body)

    def test_rejects_parallel_on_direct_step(self, tmp_path):
        body = """
[[steps]]
name = "mc"
kind = "direct"
decoders = ["MWPM", "UF"]
[steps.parallel]
"MWPM || UF" = ["MWPM", "UF"]
"""
        with pytest.raises(ValueError, match="eq1"):
            load(tmp_path, body)

    def test_rejects_pin_of_non_knob_field(self, tmp_path):
        body = LER_BODY.replace(
            'kind = "eq1"', 'kind = "eq1"\npin = ["error_rates"]'
        )
        with pytest.raises(ValueError, match="pin"):
            load(tmp_path, body)

    def test_rejects_unknown_dependency(self, tmp_path):
        body = LER_BODY.replace(
            'kind = "direct"', 'kind = "direct"\ndepends_on = ["ghost"]'
        )
        with pytest.raises(ValueError, match="unknown step"):
            load(tmp_path, body)

    def test_rejects_dependency_cycle(self, tmp_path):
        body = LER_BODY.replace(
            'kind = "eq1"', 'kind = "eq1"\ndepends_on = ["mc"]'
        ).replace('kind = "direct"', 'kind = "direct"\ndepends_on = ["grid"]')
        with pytest.raises(ValueError, match="cycle"):
            load(tmp_path, body)

    def test_dependencies_reorder_steps(self, tmp_path):
        body = LER_BODY.replace(
            'kind = "eq1"', 'kind = "eq1"\ndepends_on = ["mc"]'
        )
        campaign = load(tmp_path, body)
        assert campaign.entries() == ["mc", "grid"]

    def test_seed_salt_reproduces_legacy_driver_seeds(self, tmp_path):
        body = LER_BODY.replace(
            'kind = "eq1"',
            'kind = "eq1"\nseed_salt = "table2"\nseed_fields = ["distance"]',
        )
        campaign = load(tmp_path, body)
        grid = [s for s in campaign.steps if s.entry == "grid"][0]
        assert grid.seed == stable_seed("table2", DISTANCE)

    def test_default_seeds_track_campaign_seed(self, tmp_path):
        a = load(tmp_path)
        b = load(tmp_path)
        c = load(tmp_path, cli={"seed": 9})
        assert [s.seed for s in a.steps] == [s.seed for s in b.steps]
        assert [s.seed for s in a.steps] != [s.seed for s in c.steps]

    def test_env_overrides_spec(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHOTS_PER_K", "50")
        campaign = load(tmp_path)
        assert campaign.steps[0].shots_per_k == 50

    def test_cli_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHOTS_PER_K", "50")
        campaign = load(tmp_path, cli={"shots_per_k": 70})
        assert campaign.steps[0].shots_per_k == 70

    def test_pin_blocks_cli_and_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DISTANCES", "5,7")
        body = LER_BODY.replace(
            'kind = "eq1"', 'kind = "eq1"\npin = ["distances"]'
        )
        campaign = load(tmp_path, body, cli={"distances": [9]})
        grid = [s for s in campaign.steps if s.entry == "grid"]
        assert [s.distance for s in grid] == [DISTANCE]
        # The unpinned step still obeys the CLI flag.
        mc = [s for s in campaign.steps if s.entry == "mc"]
        assert [s.distance for s in mc] == [9]

    def test_shot_schedule_scale_floor_and_tiers(self, tmp_path):
        body = LER_BODY.replace(
            'kind = "eq1"',
            'kind = "eq1"\nshots_per_k_scale = 0.5\nshots_per_k_min = 10\n'
            "shots_per_k_tiers = [[3, 4, 4]]",
        )
        step = load(tmp_path, body).steps[0]
        assert step.shots_per_k == 15  # int(30 * 0.5), above the floor
        schedule = step.schedule()
        assert schedule(2) == 15 and schedule(3) == 60

    def test_k_max_per_distance_factor(self, tmp_path):
        body = LER_BODY.replace(
            'kind = "eq1"', 'kind = "eq1"\nk_max_per_distance_factor = 1'
        )
        step = load(tmp_path, body).steps[0]
        assert step.k_max == min(4, DISTANCE)


class TestCacheRule:
    """The store is the cache: covered steps cost zero decode work."""

    def _run(self, campaign, factory, **kwargs):
        return run_campaign(campaign, workbench_factory=factory, **kwargs)

    def test_fresh_run_executes_and_persists(self, tmp_path, bench_factory):
        campaign = load(tmp_path)
        result = self._run(campaign, bench_factory)
        assert result.skipped == []
        assert len(result.executed) == 2
        assert decoded_shots(bench_factory) > 0
        assert (tmp_path / "store.jsonl").exists()
        out = result.save(tmp_path / "out.json")
        assert json.loads(out.read_text())["campaign"] == "t"

    def test_cached_rerun_is_zero_work_and_bitwise(
        self, tmp_path, bench_factory
    ):
        campaign = load(tmp_path)
        first = self._run(campaign, bench_factory)
        first.save(tmp_path / "first.json")

        spinups_before = pool_spinups()
        fresh_cost = decoded_shots(bench_factory)
        fresh = load(tmp_path)  # recompile: no state smuggled across runs
        second = self._run(fresh, bench_factory)
        second.save(tmp_path / "second.json")

        assert second.executed == []
        assert second.skipped == first.executed
        assert second.pool_forks == 0
        assert pool_spinups() == spinups_before
        assert decoded_shots(bench_factory) == fresh_cost
        assert (
            (tmp_path / "first.json").read_bytes()
            == (tmp_path / "second.json").read_bytes()
        )

    def test_cached_rerun_never_builds_a_workbench(
        self, tmp_path, bench_factory, monkeypatch
    ):
        """Covered steps replay via the bare DEM -- no decoder zoo."""
        self._run(load(tmp_path), bench_factory)

        from repro.eval import experiments

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cached run built a workbench")

        monkeypatch.setattr(experiments.Workbench, "build", forbidden)
        result = run_campaign(load(tmp_path))
        assert result.executed == []

    def test_partial_coverage_pays_only_the_residual(
        self, tmp_path, bench_factory
    ):
        campaign = load(tmp_path)
        self._run(campaign, bench_factory)
        full_cost = decoded_shots(bench_factory)

        grown = load(tmp_path, cli={"shots_per_k": 45})
        result = self._run(grown, bench_factory)
        # Only the eq1 step grew; the direct-MC step stays cached.
        assert [s.split("[")[0] for s in result.executed] == ["grid"]
        assert "mc" in result.skipped[0]
        residual = decoded_shots(bench_factory) - full_cost
        assert 0 < residual < full_cost

    def test_torn_store_resume_reproduces_bitwise(
        self, tmp_path, bench_factory
    ):
        campaign = load(tmp_path)
        self._run(campaign, bench_factory).save(tmp_path / "full.json")

        # Simulate a mid-campaign kill: drop the back half of the store,
        # leaving a torn final line.
        store_path = tmp_path / "store.jsonl"
        lines = store_path.read_text().splitlines(keepends=True)
        keep = lines[: len(lines) // 2]
        store_path.write_text("".join(keep) + '{"slice": {"config": "to')

        resumed = run_campaign(load(tmp_path), workbench_factory=bench_factory)
        assert resumed.executed  # something really was lost
        resumed.save(tmp_path / "resumed.json")
        assert (
            (tmp_path / "full.json").read_bytes()
            == (tmp_path / "resumed.json").read_bytes()
        )
        # The resumed run persisted its residual slices past the torn
        # tail: a third pass is fully covered.
        after = campaign_status(load(tmp_path), workbench_factory=bench_factory)
        assert [c.covered for c in after] == [True, True]

    def test_status_agrees_with_run(self, tmp_path, bench_factory):
        campaign = load(tmp_path)
        before = campaign_status(campaign, workbench_factory=bench_factory)
        assert [c.covered for c in before] == [False, False]
        assert all(c.residual == c.budget for c in before)

        self._run(campaign, bench_factory)
        after = campaign_status(load(tmp_path), workbench_factory=bench_factory)
        assert [c.covered for c in after] == [True, True]
        assert all(c.usable >= c.budget for c in after)

    def test_point_lookup(self, tmp_path, bench_factory):
        result = self._run(load(tmp_path), bench_factory)
        payload = result.point("grid", distance=DISTANCE)
        assert set(payload["decoders"]) == {"MWPM", "UF", "MWPM || UF"}
        with pytest.raises(KeyError):
            result.point("grid", distance=99)

    def test_eq1_step_matches_legacy_estimator_bitwise(
        self, tmp_path, bench_factory, d3_stack
    ):
        """A campaign eq1 step == estimate_ler_suite at equal budgets."""
        body = LER_BODY.replace(
            'kind = "eq1"',
            'kind = "eq1"\nseed_salt = "legacy"\nseed_fields = ["distance"]',
        )
        result = self._run(load(tmp_path, body), bench_factory)
        campaign_decoders = result.point("grid")["decoders"]

        _exp, dem, _graph = d3_stack
        bench = bench_factory(DISTANCE, P)
        legacy = estimate_ler_suite(
            {"MWPM": bench.decoders["MWPM"], "UF": bench.decoders["UF"]},
            {"MWPM || UF": ("MWPM", "UF")},
            dem,
            P,
            k_max=4,
            shots_per_k=30,
            rng=stable_seed("legacy", DISTANCE),
        )
        for name, payload in campaign_decoders.items():
            assert payload["ler"] == legacy[name].ler
            assert payload["ler_low"] == legacy[name].ler_low
            assert payload["ler_high"] == legacy[name].ler_high
            assert [row["failures"] for row in payload["per_k"]] == [
                est.successes for _k, _po, est in legacy[name].per_k
            ]


CENSUS_BODY = """
[[steps]]
name = "chains"
kind = "census"
census = "chain_lengths"
hw_min = 2
max_length = 6
"""


class TestCensusCache:
    def test_prefilled_artifact_skips_the_workbench(self, tmp_path):
        campaign = load(tmp_path, CENSUS_BODY)
        (step,) = campaign.steps
        store = ExperimentStore(tmp_path / "store.jsonl")
        store.append_artifact(
            ArtifactRecord(
                config=step.config(),
                kind=step.kind_key,
                budget=step.census_shots,
                payload={"data": {"histogram": [0.0, 1.0]}},
            )
        )

        def forbidden(distance, p):  # pragma: no cover - must not run
            raise AssertionError("covered census built a workbench")

        result = run_campaign(campaign, store=store, workbench_factory=forbidden)
        assert result.executed == []
        assert result.outcomes[0].payload["data"]["histogram"] == [0.0, 1.0]

    def test_smaller_stored_budget_is_not_coverage(self, tmp_path):
        campaign = load(tmp_path, CENSUS_BODY)
        (step,) = campaign.steps
        store = ExperimentStore(tmp_path / "store.jsonl")
        store.append_artifact(
            ArtifactRecord(
                config=step.config(),
                kind=step.kind_key,
                budget=step.census_shots - 1,
                payload={"data": {}},
            )
        )
        ctx = CampaignContext(campaign, store=store)
        assert not step_coverage(step, ctx).covered

    def test_live_census_roundtrip_and_compact(self, tmp_path):
        """Live census -> cached re-run -> compact keeps the artifact."""
        campaign = load(tmp_path, CENSUS_BODY)
        first = run_campaign(campaign)
        assert first.executed and not first.skipped
        histogram = first.outcomes[0].payload["data"]["histogram"]
        assert abs(sum(histogram) - 1.0) < 1e-9

        second = run_campaign(load(tmp_path, CENSUS_BODY))
        assert second.executed == []
        assert second.outcomes[0].payload == first.outcomes[0].payload

        store = ExperimentStore(tmp_path / "store.jsonl")
        assert store.compact() >= 1
        status = campaign_status(load(tmp_path, CENSUS_BODY), store=store)
        assert [c.covered for c in status] == [True]
