"""Tests for the Poisson-binomial pmf head."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.eval.poisson_binomial import expected_count, poisson_binomial_pmf


class TestAgainstBinomial:
    def test_equal_probabilities_reduce_to_binomial(self):
        n, p = 40, 0.07
        pmf, tail = poisson_binomial_pmf(np.full(n, p), k_max=12)
        reference = stats.binom.pmf(np.arange(13), n, p)
        assert np.allclose(pmf, reference, atol=1e-12)
        assert tail == pytest.approx(1 - stats.binom.cdf(12, n, p), abs=1e-10)

    def test_zero_probabilities(self):
        pmf, tail = poisson_binomial_pmf(np.zeros(10), k_max=3)
        assert pmf[0] == 1.0
        assert pmf[1:].sum() == 0.0
        assert tail == 0.0

    def test_certain_events(self):
        pmf, _tail = poisson_binomial_pmf(np.ones(3), k_max=5)
        assert pmf[3] == pytest.approx(1.0)

    def test_two_heterogeneous(self):
        pmf, _ = poisson_binomial_pmf(np.array([0.1, 0.3]), k_max=2)
        assert pmf[0] == pytest.approx(0.9 * 0.7)
        assert pmf[1] == pytest.approx(0.1 * 0.7 + 0.9 * 0.3)
        assert pmf[2] == pytest.approx(0.1 * 0.3)


class TestValidation:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf(np.array([1.5]), k_max=2)

    def test_rejects_negative_kmax(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf(np.array([0.1]), k_max=-1)


probabilities = st.lists(
    st.floats(min_value=0.0, max_value=0.3), min_size=0, max_size=30
)


@settings(max_examples=40, deadline=None)
@given(probabilities)
def test_property_mass_bounded(ps):
    pmf, tail = poisson_binomial_pmf(np.array(ps), k_max=8)
    assert (pmf >= -1e-15).all()
    assert pmf.sum() + tail == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(probabilities)
def test_property_permutation_invariant(ps):
    rng = np.random.default_rng(0)
    shuffled = np.array(ps)
    rng.shuffle(shuffled)
    a, _ = poisson_binomial_pmf(np.array(ps), k_max=6)
    b, _ = poisson_binomial_pmf(shuffled, k_max=6)
    assert np.allclose(a, b, atol=1e-12)


def test_expected_count():
    assert expected_count(np.array([0.1, 0.2])) == pytest.approx(0.3)
