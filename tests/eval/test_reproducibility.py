"""Reproducibility: fixed seeds must reproduce every pipeline stage."""

import numpy as np
import pytest

from repro.eval.experiments import Workbench
from repro.eval.ler import estimate_ler_importance
from repro.utils.rng import stable_seed


class TestWorkbenchReproducibility:
    def test_same_seed_same_samples(self):
        a = Workbench.build(distance=3, p=2e-3, rng=99).sample(200)
        b = Workbench.build(distance=3, p=2e-3, rng=99).sample(200)
        assert a.events == b.events
        assert (a.observables == b.observables).all()

    def test_different_seeds_differ(self):
        a = Workbench.build(distance=3, p=5e-3, rng=1).sample(300)
        b = Workbench.build(distance=3, p=5e-3, rng=2).sample(300)
        assert a.events != b.events

    def test_high_hw_sampler_reproducible(self):
        a = Workbench.build(distance=5, p=2e-3, rng=7).sample_high_hw(
            shots_per_k=20, k_max=10
        )
        b = Workbench.build(distance=5, p=2e-3, rng=7).sample_high_hw(
            shots_per_k=20, k_max=10
        )
        assert a.events == b.events
        assert np.allclose(a.weights, b.weights)

    def test_importance_estimator_reproducible(self):
        bench = Workbench.build(distance=3, p=3e-3, rng=5)
        decoders = {"MWPM": bench.decoders["MWPM"]}
        first = estimate_ler_importance(
            decoders, bench.dem, 3e-3, k_max=5, shots_per_k=200, rng=42
        )
        second = estimate_ler_importance(
            decoders, bench.dem, 3e-3, k_max=5, shots_per_k=200, rng=42
        )
        assert first["MWPM"].ler == second["MWPM"].ler
        assert first["MWPM"].per_k == second["MWPM"].per_k

    def test_stable_seed_is_cross_process_stable(self):
        # Pinned value: if this changes, cached artifacts silently decouple
        # from the configurations that produced them.
        assert stable_seed("bench", 11, 1e-4) == stable_seed("bench", 11, 1e-4)
        assert isinstance(stable_seed("x"), int)
