"""Experiment store: round-trip, concurrent merge, resume semantics."""

import multiprocessing

import numpy as np
import pytest

from repro.decoders import MWPMDecoder, UnionFindDecoder
from repro.decoders.base import Decoder
from repro.eval.ler import (
    estimate_ler_direct,
    estimate_ler_importance,
    estimate_ler_suite,
)
from repro.eval.store import (
    ExperimentStore,
    SliceRecord,
    config_key,
    dem_config_key,
    derived_seed,
)


class CountingDecoder(Decoder):
    """Forwards to an inner decoder while counting decoded shots."""

    name = "counting"

    def __init__(self, inner):
        super().__init__(inner.graph)
        self.inner = inner
        self.shots_decoded = 0

    def decode(self, events):
        self.shots_decoded += 1
        return self.inner.decode(events)

    def decode_batch(self, batch):
        self.shots_decoded += len(getattr(batch, "events", batch))
        return self.inner.decode_batch(batch)


def _record(k=1, seed=11, run=0, shots=10, counts=None, config="cfg"):
    return SliceRecord(
        config=config,
        kind="eq1",
        k=k,
        seed=seed,
        run=run,
        shots=shots,
        counts=counts or {"MWPM": (1, shots)},
    )


class TestConfigKey:
    def test_stable_and_order_independent(self):
        a = config_key(distance=11, p=1e-4, code="rotated_surface")
        b = config_key(code="rotated_surface", p=1e-4, distance=11)
        assert a == b

    def test_sensitive_to_every_field(self):
        base = config_key(distance=11, p=1e-4)
        assert base != config_key(distance=13, p=1e-4)
        assert base != config_key(distance=11, p=2e-4)

    def test_dem_key_depends_on_content_and_p(self, d3_stack, d5_stack):
        _exp3, dem3, _g3 = d3_stack
        _exp5, dem5, _g5 = d5_stack
        assert dem_config_key(dem3, 1e-3, "eq1") != dem_config_key(
            dem5, 1e-3, "eq1"
        )
        assert dem_config_key(dem3, 1e-3, "eq1") != dem_config_key(
            dem3, 2e-3, "eq1"
        )
        assert dem_config_key(dem3, 1e-3, "eq1") == dem_config_key(
            dem3, 1e-3, "eq1"
        )

    def test_derived_seed_run0_is_identity(self):
        assert derived_seed(12345, 0) == 12345
        assert derived_seed(12345, 1) != 12345
        assert derived_seed(12345, 1) != derived_seed(12345, 2)


class TestRoundTrip:
    def test_append_and_read_back(self, tmp_path):
        store = ExperimentStore(tmp_path / "store.jsonl")
        record = _record(counts={"MWPM": (3, 100), "AG": (7, 100)})
        store.append(record)
        fresh = ExperimentStore(tmp_path / "store.jsonl")
        assert fresh.records() == [record]
        assert fresh.slice_runs("cfg", "eq1", 1, 11) == [record]

    def test_torn_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ExperimentStore(path)
        store.append(_record())
        with path.open("a") as handle:
            handle.write("not json at all\n")
            handle.write('{"config": "cfg", "kind": "eq1", "k": 2')  # torn
        fresh = ExperimentStore(path)
        assert len(fresh.records()) == 1

    def test_compact_drops_junk(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ExperimentStore(path)
        store.append(_record(k=1))
        store.append(_record(k=2))
        with path.open("a") as handle:
            handle.write("garbage\n")
        assert ExperimentStore(path).compact() == 2
        assert len(ExperimentStore(path).records()) == 2
        assert "garbage" not in path.read_text()


class TestPrune:
    """``prune(keep_keys)``: garbage-collect stale configs in place."""

    def _mixed_store(self, tmp_path):
        store = ExperimentStore(tmp_path / "store.jsonl")
        for k in (1, 2):
            store.append(_record(k=k, config="live-a"))
            store.append(_record(k=k, run=1, config="live-a"))
        store.append(_record(k=1, config="live-b"))
        for k in (1, 2, 3):
            store.append(_record(k=k, config="stale"))
        return store

    def test_drops_only_stale_configs(self, tmp_path):
        store = self._mixed_store(tmp_path)
        assert store.prune({"live-a", "live-b"}) == 3
        fresh = ExperimentStore(store.path)
        assert {r.config for r in fresh.records()} == {"live-a", "live-b"}
        assert len(fresh.records()) == 5
        assert "stale" not in store.path.read_text()

    def test_kept_slices_stay_usable(self, tmp_path):
        store = self._mixed_store(tmp_path)
        before = store.usable_runs("live-a", "eq1", 1, 11, ["MWPM"])
        store.prune({"live-a"})
        after = ExperimentStore(store.path).usable_runs(
            "live-a", "eq1", 1, 11, ["MWPM"]
        )
        assert after == before and len(after) == 2

    def test_keep_everything_drops_nothing(self, tmp_path):
        store = self._mixed_store(tmp_path)
        assert store.prune({"live-a", "live-b", "stale"}) == 0
        assert len(ExperimentStore(store.path).records()) == 8

    def test_prune_drops_torn_lines_like_compact(self, tmp_path):
        store = self._mixed_store(tmp_path)
        with store.path.open("a") as handle:
            handle.write("garbage\n")
        store.prune({"live-a", "live-b", "stale"})
        assert "garbage" not in store.path.read_text()

    def test_config_summary_reflects_groups(self, tmp_path):
        store = self._mixed_store(tmp_path)
        summary = store.config_summary()
        assert ("live-a", "eq1", 4, 40) in summary
        assert ("stale", "eq1", 3, 30) in summary
        store.prune({"live-b"})
        assert ExperimentStore(store.path).config_summary() == [
            ("live-b", "eq1", 1, 10)
        ]


class TestUsableRuns:
    def test_gapless_prefix_only(self, tmp_path):
        store = ExperimentStore(tmp_path / "store.jsonl")
        store.append(_record(run=0))
        store.append(_record(run=2))  # run 1 missing
        usable = store.usable_runs("cfg", "eq1", 1, 11, ["MWPM"])
        assert [r.run for r in usable] == [0]

    def test_requires_all_names(self, tmp_path):
        store = ExperimentStore(tmp_path / "store.jsonl")
        store.append(_record(run=0, counts={"MWPM": (1, 10), "AG": (0, 10)}))
        store.append(_record(run=1, counts={"MWPM": (1, 10)}))
        assert len(store.usable_runs("cfg", "eq1", 1, 11, ["MWPM", "AG"])) == 1
        assert len(store.usable_runs("cfg", "eq1", 1, 11, ["MWPM"])) == 2
        assert store.usable_runs("cfg", "eq1", 1, 11, ["MWPM", "other"]) == []


def _concurrent_writer(args):
    path, writer_id, n_records = args
    store = ExperimentStore(path)
    for index in range(n_records):
        store.append(
            _record(k=index, seed=writer_id, counts={"MWPM": (writer_id, index + 1)})
        )
    return writer_id


def _compacting_writer(args):
    """Interleave appends with compactions (regression: compact used to
    clobber records appended concurrently by other processes)."""
    path, writer_id, n_records = args
    store = ExperimentStore(path)
    for index in range(n_records):
        store.append(
            _record(k=index, seed=writer_id, counts={"MWPM": (writer_id, index + 1)})
        )
        store.compact()
    return writer_id


class TestUsableTrials:
    def test_counts_only_resume_visible_progress(self, tmp_path):
        """``total_trials`` counts everything on disk; ``usable_trials``
        applies the resume rules (gapless prefixes covering all names),
        so it never overstates what a resumed sweep will credit."""
        store = ExperimentStore(tmp_path / "store.jsonl")
        # Slice seed 11: complete two-run prefix.
        store.append(_record(seed=11, run=0, shots=10))
        store.append(_record(seed=11, run=1, shots=20))
        # Slice seed 12: gapped (run 0 missing) -- nothing usable.
        store.append(_record(seed=12, run=1, shots=40))
        # Slice seed 13: run 1 misses a decoder -- only run 0 usable.
        store.append(
            _record(seed=13, run=0, shots=5, counts={"MWPM": (0, 5), "AG": (0, 5)})
        )
        store.append(_record(seed=13, run=1, shots=7, counts={"MWPM": (0, 7)}))
        assert store.total_trials("cfg", "eq1") == 82
        assert store.usable_trials("cfg", "eq1", ["MWPM"]) == 30 + 0 + 12
        assert store.usable_trials("cfg", "eq1", ["MWPM", "AG"]) == 5
        assert store.usable_trials("cfg", "eq1", ["MWPM", "other"]) == 0
        assert store.usable_trials("other-cfg", "eq1", ["MWPM"]) == 0


class TestConcurrentWriters:
    def test_interleaved_appends_all_survive(self, tmp_path):
        """Simulated concurrent shards: every record written by any
        process must be readable afterwards (atomic line appends)."""
        path = tmp_path / "store.jsonl"
        n_writers, n_records = 4, 25
        with multiprocessing.get_context("fork").Pool(n_writers) as pool:
            pool.map(
                _concurrent_writer,
                [(path, writer, n_records) for writer in range(n_writers)],
            )
        store = ExperimentStore(path)
        records = store.records()
        assert len(records) == n_writers * n_records
        for writer in range(n_writers):
            for index in range(n_records):
                runs = store.slice_runs("cfg", "eq1", index, writer)
                assert [r.counts["MWPM"] for r in runs] == [(writer, index + 1)]

    def test_compaction_never_loses_concurrent_appends(self, tmp_path):
        path = tmp_path / "store.jsonl"
        n_writers, n_records = 4, 15
        with multiprocessing.get_context("fork").Pool(n_writers) as pool:
            pool.map(
                _compacting_writer,
                [(path, writer, n_records) for writer in range(n_writers)],
            )
        assert len(ExperimentStore(path).records()) == n_writers * n_records


@pytest.fixture()
def suite_args(d3_stack):
    _exp, dem, graph = d3_stack

    def build(store=None, resume=False):
        components = {
            "MWPM": CountingDecoder(MWPMDecoder(graph)),
            "UF": CountingDecoder(UnionFindDecoder(graph)),
        }
        results = estimate_ler_suite(
            components=components,
            parallel_specs={"MWPM || UF": ("MWPM", "UF")},
            dem=dem,
            p=3e-3,
            k_max=5,
            shots_per_k=60,
            rng=101,
            store=store,
            store_key="suite-test" if store is not None else None,
            resume=resume,
        )
        decoded = {name: c.shots_decoded for name, c in components.items()}
        return results, decoded

    return build


def _per_k(results):
    return {name: result.per_k for name, result in results.items()}


class TestResumeSemantics:
    def test_store_backed_fresh_equals_storeless(self, suite_args, tmp_path):
        baseline, _ = suite_args()
        stored, _ = suite_args(store=ExperimentStore(tmp_path / "s.jsonl"))
        assert _per_k(baseline) == _per_k(stored)

    def test_full_resume_decodes_nothing(self, suite_args, tmp_path):
        store = ExperimentStore(tmp_path / "s.jsonl")
        first, decoded_first = suite_args(store=store)
        resumed, decoded_resumed = suite_args(store=store, resume=True)
        assert _per_k(first) == _per_k(resumed)
        assert all(count > 0 for count in decoded_first.values())
        assert decoded_resumed == {"MWPM": 0, "UF": 0}

    def test_killed_run_resumes_bitwise_with_residual_shots_only(
        self, suite_args, tmp_path
    ):
        """The acceptance scenario: a sweep killed mid-run leaves a prefix
        of its slice records; resuming must reproduce the uninterrupted
        estimates bitwise while decoding exactly the residual shots."""
        full_store = ExperimentStore(tmp_path / "full.jsonl")
        uninterrupted, decoded_full = suite_args(store=full_store)
        records = full_store.records()
        assert len(records) >= 3

        killed = ExperimentStore(tmp_path / "killed.jsonl")
        surviving = records[:2]
        for record in surviving:
            killed.append(record)
        resumed, decoded_resumed = suite_args(store=killed, resume=True)

        assert _per_k(uninterrupted) == _per_k(resumed)
        stored_shots = sum(record.shots for record in surviving)
        for name in decoded_full:
            assert (
                decoded_resumed[name] == decoded_full[name] - stored_shots
            ), name
        # The resumed store now holds the complete slice set.
        assert len(killed.records()) == len(records)

    def test_growing_the_budget_pays_only_the_delta(self, d3_stack, tmp_path):
        _exp, dem, graph = d3_stack
        store = ExperimentStore(tmp_path / "s.jsonl")

        def run(shots_per_k):
            decoder = CountingDecoder(MWPMDecoder(graph))
            results = estimate_ler_importance(
                {"MWPM": decoder},
                dem,
                3e-3,
                k_max=4,
                shots_per_k=shots_per_k,
                rng=55,
                store=store,
                store_key="grow-test",
                resume=True,
            )
            return results["MWPM"], decoder.shots_decoded

        # One slice per k value; the first run pays 50 shots per slice,
        # the second only the extra 70.
        first, decoded_first = run(50)
        second, decoded_second = run(120)
        n_k = len(first.per_k)
        assert decoded_first == 50 * n_k
        assert decoded_second == (120 - 50) * n_k
        assert all(est.trials == 120 for _k, _po, est in second.per_k)

    def test_direct_resume(self, d3_stack, tmp_path):
        _exp, dem, graph = d3_stack
        store = ExperimentStore(tmp_path / "s.jsonl")

        def run(resume):
            decoder = CountingDecoder(MWPMDecoder(graph))
            results = estimate_ler_direct(
                {"MWPM": decoder},
                dem,
                3e-3,
                shots=700,
                rng=9,
                store=store,
                store_key="direct-test",
                resume=resume,
            )
            return results["MWPM"].estimate, decoder.shots_decoded

        first, decoded_first = run(resume=False)
        second, decoded_second = run(resume=True)
        assert first == second
        assert decoded_first == 700
        assert decoded_second == 0

    def test_direct_resume_with_smaller_budget_equals_fresh(
        self, d3_stack, tmp_path
    ):
        """Regression: resume used to fold whole stored runs in past the
        requested budget, overcounting trials.  A stored run that would
        overshoot must stay on disk, with the smaller budget sampled
        fresh -- bitwise what a fresh run at that budget produces."""
        _exp, dem, graph = d3_stack

        def run(store, shots, resume):
            decoder = CountingDecoder(MWPMDecoder(graph))
            results = estimate_ler_direct(
                {"MWPM": decoder},
                dem,
                3e-3,
                shots=shots,
                rng=9,
                store=store,
                store_key="direct-shrink",
                resume=resume,
            )
            return results["MWPM"].estimate, decoder.shots_decoded

        big_store = ExperimentStore(tmp_path / "big.jsonl")
        run(big_store, shots=700, resume=False)

        fresh_store = ExperimentStore(tmp_path / "fresh.jsonl")
        fresh, decoded_fresh = run(fresh_store, shots=300, resume=False)
        shrunk, decoded_shrunk = run(big_store, shots=300, resume=True)
        assert shrunk == fresh
        assert shrunk.trials == 300
        assert decoded_fresh == decoded_shrunk == 300
        # The overshooting stored run keeps its identity: no second
        # record lands at its (seed, run) index.
        runs_by_seed = {}
        for record in big_store.records():
            runs_by_seed.setdefault(record.seed, []).append(record)
        for records in runs_by_seed.values():
            assert [r.run for r in records] == [0]
            assert records[0].shots == 700

    def test_direct_resume_partial_overshoot_uses_stored_prefix(
        self, d3_stack, tmp_path
    ):
        """When run 0 fits but run 1 would overshoot, the fitting prefix
        is replayed and only the residual beyond it is decoded."""
        _exp, dem, graph = d3_stack
        store = ExperimentStore(tmp_path / "s.jsonl")

        def run(shots, resume):
            decoder = CountingDecoder(MWPMDecoder(graph))
            results = estimate_ler_direct(
                {"MWPM": decoder},
                dem,
                3e-3,
                shots=shots,
                rng=21,
                store=store,
                store_key="direct-partial",
                resume=resume,
            )
            return results["MWPM"].estimate, decoder.shots_decoded

        run(shots=200, resume=False)   # run 0: 200 shots
        run(shots=600, resume=True)    # run 1: 400 shots
        shrunk, decoded = run(shots=300, resume=True)
        assert shrunk.trials == 300
        assert decoded == 100  # replay run 0, decode only the residual


class TestMinRelPrecision:
    def test_refinement_adds_shots_deterministically(self, d3_stack):
        _exp, dem, graph = d3_stack
        decoders = {"MWPM": MWPMDecoder(graph)}

        def run():
            return estimate_ler_importance(
                decoders,
                dem,
                3e-3,
                k_max=4,
                shots_per_k=40,
                rng=77,
                min_rel_precision=0.5,
                max_refine_rounds=3,
            )["MWPM"]

        base = estimate_ler_importance(
            decoders, dem, 3e-3, k_max=4, shots_per_k=40, rng=77
        )["MWPM"]
        refined_a, refined_b = run(), run()
        assert refined_a.per_k == refined_b.per_k
        assert sum(est.trials for _k, _po, est in refined_a.per_k) > sum(
            est.trials for _k, _po, est in base.per_k
        )
        assert refined_a.statistical_width < base.statistical_width

    def test_invalid_precision_rejected(self, d3_stack):
        _exp, dem, graph = d3_stack
        with pytest.raises(ValueError):
            estimate_ler_importance(
                {"MWPM": MWPMDecoder(graph)},
                dem,
                3e-3,
                k_max=3,
                rng=1,
                min_rel_precision=0.0,
            )


class TestArtifacts:
    """Whole-step artifacts: the census half of the campaign cache."""

    def _artifact(self, budget=100, config="cfg", kind="census_latency",
                  payload=None):
        from repro.eval.store import ArtifactRecord

        return ArtifactRecord(
            config=config,
            kind=kind,
            budget=budget,
            payload=payload if payload is not None else {"value": 1.5},
        )

    def test_append_and_read_back(self, tmp_path):
        store = ExperimentStore(tmp_path / "store.jsonl")
        store.append_artifact(self._artifact())
        fresh = ExperimentStore(tmp_path / "store.jsonl")
        artifact = fresh.artifact("cfg", "census_latency")
        assert artifact is not None
        assert artifact.budget == 100
        assert artifact.payload == {"value": 1.5}
        assert fresh.artifact("cfg", "census_steps") is None

    def test_latest_per_key_wins(self, tmp_path):
        store = ExperimentStore(tmp_path / "store.jsonl")
        store.append_artifact(self._artifact(budget=100))
        store.append_artifact(self._artifact(budget=250, payload={"v": 2}))
        fresh = ExperimentStore(tmp_path / "store.jsonl")
        assert fresh.artifact("cfg", "census_latency").budget == 250
        assert len(fresh.artifacts()) == 1

    def test_artifacts_do_not_pollute_slice_queries(self, tmp_path):
        store = ExperimentStore(tmp_path / "store.jsonl")
        store.append(_record(shots=40))
        store.append_artifact(self._artifact(kind="eq1"))
        fresh = ExperimentStore(tmp_path / "store.jsonl")
        assert len(fresh.records()) == 1
        assert fresh.usable_trials("cfg", "eq1", ["MWPM"]) == 40

    def test_coverage_takes_the_larger_of_slices_and_artifact(self, tmp_path):
        store = ExperimentStore(tmp_path / "store.jsonl")
        store.append(_record(shots=40))
        coverage = store.coverage("cfg", "eq1", ["MWPM"], budget=100)
        assert coverage.usable == 40 and not coverage.covered
        store.append_artifact(self._artifact(budget=120, kind="eq1"))
        coverage = store.coverage("cfg", "eq1", ["MWPM"], budget=100)
        assert coverage.usable == 120 and coverage.covered

    def test_compact_preserves_artifacts(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ExperimentStore(path)
        store.append(_record())
        store.append_artifact(self._artifact(budget=100))
        store.append_artifact(self._artifact(budget=300))
        with path.open("a") as handle:
            handle.write("garbage\n")
        assert ExperimentStore(path).compact() == 2  # slice + latest artifact
        fresh = ExperimentStore(path)
        assert fresh.artifact("cfg", "census_latency").budget == 300
        assert len(fresh.records()) == 1

    def test_prune_drops_stale_artifacts(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ExperimentStore(path)
        store.append_artifact(self._artifact(config="live"))
        store.append_artifact(self._artifact(config="stale"))
        assert ExperimentStore(path).prune(["live"]) == 1
        fresh = ExperimentStore(path)
        assert fresh.artifact("live", "census_latency") is not None
        assert fresh.artifact("stale", "census_latency") is None

    def test_torn_artifact_line_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ExperimentStore(path)
        store.append_artifact(self._artifact())
        with path.open("a") as handle:
            handle.write('{"artifact": {"config": "cfg", "kind": "cen')
        fresh = ExperimentStore(path)
        assert fresh.artifact("cfg", "census_latency").budget == 100


class TestAtomicWriteJson:
    def test_writes_via_rename_and_leaves_no_temp(self, tmp_path):
        from repro.eval.store import atomic_write_json

        target = tmp_path / "out" / "artifact.json"
        written = atomic_write_json(target, {"b": 2, "a": 1}, sort_keys=True)
        assert written == target
        assert target.read_text().startswith('{\n  "a": 1')
        leftovers = [p for p in target.parent.iterdir() if p != target]
        assert leftovers == []


class TestAppendAfterTornTail:
    def test_append_starts_a_fresh_line_after_torn_tail(self, tmp_path):
        """A record appended after a kill-torn line must survive."""
        path = tmp_path / "store.jsonl"
        store = ExperimentStore(path)
        store.append(_record(k=1))
        with path.open("a") as handle:
            handle.write('{"slice": {"config": "torn')  # no newline
        fresh = ExperimentStore(path)
        fresh.append(_record(k=2))
        reread = ExperimentStore(path)
        assert len(reread.records()) == 2
        assert reread.usable_trials("cfg", "eq1", ["MWPM"]) == 20
