"""Sweep orchestrator: grid validation, kill-mid-grid resume, pool reuse."""

from types import SimpleNamespace

import pytest

from repro.decoders import MWPMDecoder, UnionFindDecoder
from repro.eval import pool as pool_module
from repro.eval.ler import estimate_ler_importance
from repro.eval.pool import WorkerPool
from repro.eval.store import ExperimentStore, config_key
from repro.eval.sweep import SweepGrid, run_sweep

DISTANCE = 3
ERROR_RATES = (3e-3, 5e-3)


class CountingDecoder:
    """Forwards to an inner decoder while counting decoded shots."""

    def __init__(self, inner):
        self.inner = inner
        self.graph = inner.graph
        self.shots_decoded = 0

    def decode(self, events):
        self.shots_decoded += 1
        return self.inner.decode(events)

    def decode_batch(self, batch):
        self.shots_decoded += len(getattr(batch, "events", batch))
        return self.inner.decode_batch(batch)


@pytest.fixture()
def bench_factory(d3_stack):
    """A Workbench-like factory over the shared d=3 stack.

    Rebuilding the weighted graph per p is cheap at d=3; the counting
    decoders let tests assert how many residual shots a resume pays.
    """
    from repro.graph import build_decoding_graph

    _exp, dem, _graph = d3_stack
    built = []

    def factory(distance, p):
        assert distance == DISTANCE
        graph = build_decoding_graph(dem, p)
        decoders = {
            "MWPM": CountingDecoder(MWPMDecoder(graph)),
            "UF": CountingDecoder(UnionFindDecoder(graph)),
        }
        bench = SimpleNamespace(
            distance=distance,
            p=p,
            dem=dem,
            decoders=decoders,
            store_key=lambda kind, p=p: config_key(
                code="test", distance=distance, p=p, kind=kind
            ),
        )
        built.append(bench)
        return bench

    factory.built = built
    return factory


def small_grid(kind="eq1"):
    return SweepGrid(
        distances=(DISTANCE,),
        error_rates=ERROR_RATES,
        kind=kind,
        decoders=("MWPM", "UF"),
        parallel={"MWPM || UF": ("MWPM", "UF")} if kind == "eq1" else {},
        shots_per_k=40,
        k_max=4,
        shots=600,
    )


def comparable(result):
    """The deterministic part of the artifact (run stats excluded)."""
    payload = result.to_payload()
    payload.pop("stats")
    return payload


def decoded_shots(factory):
    return sum(
        decoder.shots_decoded
        for bench in factory.built
        for decoder in bench.decoders.values()
    )


class TestGridValidation:
    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SweepGrid(distances=(3,), error_rates=(1e-3,), kind="magic")

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError):
            SweepGrid(distances=(), error_rates=(1e-3,))
        with pytest.raises(ValueError):
            SweepGrid(distances=(3,), error_rates=())

    def test_rejects_unknown_parallel_components(self):
        with pytest.raises(ValueError, match="unknown components"):
            SweepGrid(
                distances=(3,),
                error_rates=(1e-3,),
                decoders=("MWPM",),
                parallel={"bad": ("MWPM", "missing")},
            )

    def test_rejects_parallel_for_direct(self):
        with pytest.raises(ValueError, match="eq1"):
            SweepGrid(
                distances=(3,),
                error_rates=(1e-3,),
                kind="direct",
                decoders=("MWPM", "UF"),
                parallel={"MWPM || UF": ("MWPM", "UF")},
            )

    def test_rejects_unknown_zoo_decoder(self, bench_factory):
        grid = SweepGrid(
            distances=(DISTANCE,),
            error_rates=(3e-3,),
            decoders=("NotADecoder",),
            shots_per_k=10,
            k_max=3,
        )
        with pytest.raises(ValueError, match="unknown decoders"):
            run_sweep(grid, workbench_factory=bench_factory)

    def test_points_walk_order(self):
        grid = SweepGrid(distances=(3, 5), error_rates=(1e-3, 2e-3))
        assert grid.points() == [
            (3, 1e-3), (3, 2e-3), (5, 1e-3), (5, 2e-3)
        ]


class TestResume:
    def test_kill_mid_grid_resumes_bitwise(self, bench_factory, tmp_path):
        """The acceptance scenario: a sweep killed mid-grid leaves a
        prefix of its slice records in the shared store; resuming must
        reproduce the uninterrupted grid bitwise while decoding exactly
        the residual shots."""
        grid = small_grid()
        full_store = ExperimentStore(tmp_path / "full.jsonl")
        uninterrupted = run_sweep(
            grid,
            store=full_store,
            min_rel_precision=0.6,
            workbench_factory=bench_factory,
        )
        full_shots = decoded_shots(bench_factory)
        records = full_store.records()
        assert len(records) >= 4  # spans both grid points

        bench_factory.built.clear()
        killed_store = ExperimentStore(tmp_path / "killed.jsonl")
        surviving = records[: len(records) // 2]
        for record in surviving:
            killed_store.append(record)
        resumed = run_sweep(
            grid,
            store=killed_store,
            resume=True,
            min_rel_precision=0.6,
            workbench_factory=bench_factory,
        )
        assert comparable(resumed) == comparable(uninterrupted)
        stored_shots = sum(record.shots for record in surviving)
        # Every decoder of a point decodes each of its slices' shots, so
        # the replayed shot saving is (decoders per point) * stored.
        names_per_point = 2
        assert (
            decoded_shots(bench_factory)
            == full_shots - names_per_point * stored_shots
        )
        assert len(killed_store.records()) == len(records)

    def test_resume_matches_fresh_when_round_cap_binds(
        self, bench_factory, tmp_path
    ):
        """Regression: the refinement stopping rule must be a function
        of the accumulated counts, not of rounds executed by the current
        process.  With an unreachable precision target the cap binds;
        a resumed run used to get a fresh round budget and overshoot."""
        grid = small_grid()
        kwargs = dict(
            min_rel_precision=0.01,  # unreachable: the cap decides
            max_refine_rounds=2,
            workbench_factory=bench_factory,
        )
        full_store = ExperimentStore(tmp_path / "full.jsonl")
        uninterrupted = run_sweep(grid, store=full_store, **kwargs)
        records = full_store.records()

        killed_store = ExperimentStore(tmp_path / "killed.jsonl")
        for record in records[: len(records) // 2]:
            killed_store.append(record)
        resumed = run_sweep(grid, store=killed_store, resume=True, **kwargs)
        assert comparable(resumed) == comparable(uninterrupted)
        assert len(killed_store.records()) == len(records)

    def test_full_resume_decodes_nothing(self, bench_factory, tmp_path):
        grid = small_grid()
        store = ExperimentStore(tmp_path / "s.jsonl")
        first = run_sweep(
            grid, store=store, min_rel_precision=0.6,
            workbench_factory=bench_factory,
        )
        bench_factory.built.clear()
        resumed = run_sweep(
            grid, store=store, resume=True, min_rel_precision=0.6,
            workbench_factory=bench_factory,
        )
        assert comparable(resumed) == comparable(first)
        assert decoded_shots(bench_factory) == 0

    def test_direct_kill_mid_grid_resumes_bitwise(
        self, bench_factory, tmp_path
    ):
        grid = small_grid(kind="direct")
        full_store = ExperimentStore(tmp_path / "full.jsonl")
        uninterrupted = run_sweep(
            grid, store=full_store, workbench_factory=bench_factory
        )
        records = full_store.records()
        assert len(records) >= 2

        bench_factory.built.clear()
        killed_store = ExperimentStore(tmp_path / "killed.jsonl")
        for record in records[:1]:
            killed_store.append(record)
        resumed = run_sweep(
            grid, store=killed_store, resume=True,
            workbench_factory=bench_factory,
        )
        assert comparable(resumed) == comparable(uninterrupted)
        assert len(killed_store.records()) == len(records)

    def test_fresh_run_on_dirty_store_rejected(self, bench_factory, tmp_path):
        """A fresh (resume=False) sweep against a store that already
        holds records for one of its points would collide on run indices
        and feed the growth rounds stale slices -- refuse it."""
        grid = small_grid()
        store = ExperimentStore(tmp_path / "s.jsonl")
        run_sweep(grid, store=store, workbench_factory=bench_factory)
        with pytest.raises(ValueError, match="resume=True"):
            run_sweep(grid, store=store, workbench_factory=bench_factory)

    def test_usable_trials_reported(self, bench_factory, tmp_path):
        grid = small_grid()
        store = ExperimentStore(tmp_path / "s.jsonl")
        result = run_sweep(grid, store=store, workbench_factory=bench_factory)
        for entry in result.points:
            assert entry.usable_trials is not None
            assert entry.usable_trials == sum(
                record.shots
                for record in store.records()
                if record.config == entry.store_key
            )


class TestPoolReuse:
    def test_sharded_equals_inline(self, bench_factory, tmp_path):
        """The persistent-pool path must produce the inline results at
        any shard width (pre-seeded slices; scheduling-independent)."""
        grid = small_grid()
        inline = run_sweep(
            grid, shards=1, min_rel_precision=0.6,
            workbench_factory=bench_factory,
        )
        for shards in (2, 3):
            sharded = run_sweep(
                grid, shards=shards, min_rel_precision=0.6,
                workbench_factory=bench_factory,
            )
            assert comparable(sharded) == comparable(inline)

    def test_one_fork_for_whole_sweep(self, bench_factory):
        """A 2-point, multi-refinement-round sweep forks its worker set
        exactly once; the per-call baseline forks per sharded round."""
        grid = small_grid()
        before = pool_module.pool_spinups()
        result = run_sweep(
            grid, shards=2, min_rel_precision=0.4, max_refine_rounds=3,
            workbench_factory=bench_factory,
        )
        persistent_spinups = pool_module.pool_spinups() - before
        assert result.pool_forks == 1
        assert persistent_spinups == 1

        # Per-call baseline: the same work through the one-shot
        # estimators (no pool) forks at least once per grid point.
        before = pool_module.pool_spinups()
        for bench in list(bench_factory.built):
            estimate_ler_importance(
                {"MWPM": bench.decoders["MWPM"], "UF": bench.decoders["UF"]},
                bench.dem,
                bench.p,
                k_max=grid.k_max,
                shots_per_k=grid.shots_per_k,
                rng=7,
                shards=2,
                min_rel_precision=0.4,
                max_refine_rounds=3,
            )
        baseline_spinups = pool_module.pool_spinups() - before
        assert baseline_spinups >= 2 * persistent_spinups

    def test_external_pool_is_not_closed(self, bench_factory):
        grid = small_grid()
        with WorkerPool(2) as pool:
            run_sweep(
                grid, shards=2, pool=pool, workbench_factory=bench_factory
            )
            # The pool stays usable after the sweep.
            assert pool.map(1, _echo_shared, [0]) == [1]


def _echo_shared(_task):
    from repro.eval.pool import pool_shared

    return pool_shared()
