"""Tests for the LER estimators."""

import numpy as np
import pytest

from repro.decoders import MWPMDecoder
from repro.decoders.base import DecodeResult, Decoder
from repro.eval.ler import (
    count_failures,
    estimate_ler_direct,
    estimate_ler_importance,
    estimate_ler_suite,
)
from repro.sim.sampler import SyndromeBatch


class _AlwaysWrong(Decoder):
    name = "wrong"

    def decode(self, events):
        return DecodeResult(success=True, observable_mask=1 ^ 0)


class _AlwaysFails(Decoder):
    name = "fails"

    def decode(self, events):
        return DecodeResult(success=False, failure_reason="nope")


class TestCounting:
    def test_failure_flag_counts_as_error(self, d3_stack):
        _exp, _dem, graph = d3_stack
        batch = SyndromeBatch(events=[(), ()], observables=np.array([0, 0]))
        failures, shots = count_failures(_AlwaysFails(graph), batch)
        assert (failures, shots) == (2, 2)

    def test_wrong_prediction_counts(self, d3_stack):
        _exp, _dem, graph = d3_stack
        batch = SyndromeBatch(events=[()], observables=np.array([0]))
        failures, _ = count_failures(_AlwaysWrong(graph), batch)
        assert failures == 1


class TestEstimatorsAgree:
    def test_direct_vs_importance(self, d3_stack):
        """The two estimators must agree at an operating point where both
        have plenty of statistics (d=3, p=3e-3)."""
        _exp, dem, graph = d3_stack
        decoders = {"MWPM": MWPMDecoder(graph)}
        direct = estimate_ler_direct(decoders, dem, 3e-3, shots=60000, rng=3)
        importance = estimate_ler_importance(
            decoders, dem, 3e-3, k_max=8, shots_per_k=3000, rng=4
        )
        d_ler = direct["MWPM"].ler
        i_ler = importance["MWPM"].ler
        assert i_ler == pytest.approx(d_ler, rel=0.35)

    def test_importance_truncation_reported(self, d3_stack):
        _exp, dem, _graph = d3_stack
        importance = estimate_ler_importance(
            {"MWPM": MWPMDecoder(_graph_of(d3_stack))},
            dem,
            3e-3,
            k_max=4,
            shots_per_k=50,
            rng=4,
        )
        assert importance["MWPM"].truncation_bound > 0


def _graph_of(stack):
    return stack[2]


class TestBatchPath:
    def test_count_failures_matches_per_shot_loop(self, d3_stack):
        """The batch decode path must count exactly what the historic
        per-shot loop counted."""
        from repro.sim.sampler import DemSampler

        _exp, dem, graph = d3_stack
        decoder = MWPMDecoder(graph)
        batch = DemSampler(dem, 5e-3, rng=21).sample(400)
        failures, shots = count_failures(decoder, batch)
        loop_failures = sum(
            1
            for events, observable in zip(batch.events, batch.observables)
            if (r := decoder.decode(events)).success is False
            or r.observable_mask != int(observable)
        )
        assert (failures, shots) == (loop_failures, batch.shots)
        assert count_failures(decoder, batch, reference=True) == (
            loop_failures,
            batch.shots,
        )

    def test_batch_size_chunking_identical(self, d3_stack):
        from repro.sim.sampler import DemSampler

        _exp, dem, graph = d3_stack
        decoder = MWPMDecoder(graph)
        batch = DemSampler(dem, 5e-3, rng=22).sample(250)
        whole = count_failures(decoder, batch)
        for batch_size in (1, 7, 100, 10_000):
            assert count_failures(decoder, batch, batch_size=batch_size) == whole
        with pytest.raises(ValueError):
            count_failures(decoder, batch, batch_size=0)


class TestSharding:
    def test_eq1_shards_identical_to_inline(self, d3_stack):
        """Per-k RNG streams are seeded up front, so sharding over
        processes must not change a single estimate."""
        _exp, dem, graph = d3_stack
        decoders = {"MWPM": MWPMDecoder(graph)}
        inline = estimate_ler_importance(
            decoders, dem, 3e-3, k_max=5, shots_per_k=80, rng=77, shards=1
        )
        sharded = estimate_ler_importance(
            decoders, dem, 3e-3, k_max=5, shots_per_k=80, rng=77, shards=3
        )
        assert inline["MWPM"].ler == sharded["MWPM"].ler
        assert inline["MWPM"].per_k == sharded["MWPM"].per_k

    def test_direct_sharded_pools_all_shots(self, d3_stack):
        _exp, dem, graph = d3_stack
        decoders = {"MWPM": MWPMDecoder(graph)}
        out = estimate_ler_direct(
            decoders, dem, 3e-3, shots=1001, rng=13, shards=3
        )
        assert out["MWPM"].estimate.trials == 1001

    def test_invalid_shards_rejected(self, d3_stack):
        _exp, dem, graph = d3_stack
        with pytest.raises(ValueError):
            estimate_ler_importance(
                {"MWPM": MWPMDecoder(graph)}, dem, 3e-3, k_max=3, rng=1, shards=0
            )

    def test_persistent_pool_identical_across_payload_swaps(self, d3_stack):
        """One WorkerPool serving several estimator calls -- including a
        shared-state swap between different p values -- must reproduce
        the per-call-pool results exactly, with a single fork."""
        from repro.eval.pool import WorkerPool

        _exp, dem, graph = d3_stack
        decoders = {"MWPM": MWPMDecoder(graph)}

        def run(p, pool=None):
            return estimate_ler_importance(
                decoders, dem, p, k_max=5, shots_per_k=60, rng=42,
                shards=3, pool=pool,
            )["MWPM"]

        with WorkerPool(3) as pool:
            pooled = [run(3e-3, pool), run(5e-3, pool), run(3e-3, pool)]
            assert pool.forks == 1
        baseline = [run(3e-3), run(5e-3), run(3e-3)]
        for pooled_result, base_result in zip(pooled, baseline):
            assert pooled_result.per_k == base_result.per_k

    def test_direct_persistent_pool_identical(self, d3_stack):
        from repro.eval.pool import WorkerPool

        _exp, dem, graph = d3_stack
        decoders = {"MWPM": MWPMDecoder(graph)}
        baseline = estimate_ler_direct(
            decoders, dem, 3e-3, shots=900, rng=13, shards=3
        )
        with WorkerPool(3) as pool:
            pooled = estimate_ler_direct(
                decoders, dem, 3e-3, shots=900, rng=13, shards=3, pool=pool
            )
        assert pooled["MWPM"].estimate == baseline["MWPM"].estimate

    def test_suite_rejects_unknown_parallel_components(self, d3_stack):
        _exp, dem, graph = d3_stack
        with pytest.raises(ValueError, match="unknown components"):
            estimate_ler_suite(
                components={"MWPM": MWPMDecoder(graph)},
                parallel_specs={"bad": ("MWPM", "missing")},
                dem=dem,
                p=3e-3,
                k_max=3,
                rng=1,
            )

    def test_suite_rejects_component_parallel_name_collision(self, d3_stack):
        """Regression: a name in both maps used to double-append its per-k
        rows, silently doubling the reported LER."""
        _exp, dem, graph = d3_stack
        mwpm = MWPMDecoder(graph)
        with pytest.raises(ValueError, match="collide"):
            estimate_ler_suite(
                components={"A": mwpm, "B": mwpm},
                parallel_specs={"A": ("A", "B")},
                dem=dem,
                p=3e-3,
                k_max=3,
                rng=1,
            )


class TestSuite:
    def test_parallel_derivation_consistent(self, d3_stack):
        """Suite-derived || results equal direct ParallelDecoder results
        (same seeds -> same syndromes -> same comparator outcome)."""
        from repro.decoders import AstreaDecoder, AstreaGDecoder, ParallelDecoder
        from repro.core import PromatchPredecoder
        from repro.decoders import PredecodedDecoder

        _exp, dem, graph = d3_stack
        pa = PredecodedDecoder(graph, PromatchPredecoder(graph), AstreaDecoder(graph))
        ag = AstreaGDecoder(graph, prune_probability=1e-12)
        suite = estimate_ler_suite(
            components={"PA": pa, "AG": ag},
            parallel_specs={"PA || AG": ("PA", "AG")},
            dem=dem,
            p=5e-3,
            k_max=5,
            shots_per_k=300,
            rng=11,
        )
        direct = estimate_ler_importance(
            {"PA || AG": ParallelDecoder(graph, pa, ag)},
            dem,
            5e-3,
            k_max=5,
            shots_per_k=300,
            rng=11,
        )
        assert suite["PA || AG"].ler == pytest.approx(
            direct["PA || AG"].ler, rel=1e-9
        )

    def test_parallel_never_worse_than_components(self, d3_stack):
        from repro.decoders import AstreaDecoder, AstreaGDecoder
        from repro.core import PromatchPredecoder
        from repro.decoders import PredecodedDecoder

        _exp, dem, graph = d3_stack
        pa = PredecodedDecoder(graph, PromatchPredecoder(graph), AstreaDecoder(graph))
        ag = AstreaGDecoder(graph, prune_probability=1e-12)
        suite = estimate_ler_suite(
            components={"PA": pa, "AG": ag},
            parallel_specs={"PA || AG": ("PA", "AG")},
            dem=dem,
            p=8e-3,
            k_max=6,
            shots_per_k=400,
            rng=5,
        )
        best_component = min(suite["PA"].ler, suite["AG"].ler)
        # The comparator picks the lower-weight solution, which is the
        # more likely correction; allow MC slack.
        assert suite["PA || AG"].ler <= best_component * 1.5 + 1e-12
