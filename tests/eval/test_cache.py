"""Tests for the DEM disk cache."""

import pickle

import pytest

from repro.codes import RotatedSurfaceCode
from repro.eval.cache import cache_directory, dem_cache_path, load_or_build_dem
from repro.noise import CodeCapacityNoiseModel


class TestCache:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = RotatedSurfaceCode(3)
        noise = CodeCapacityNoiseModel()
        first = load_or_build_dem(code, 1, noise)
        path = dem_cache_path(code, 1, noise, "Z")
        assert path is not None and path.exists()
        second = load_or_build_dem(code, 1, noise)
        assert [m.detectors for m in first.mechanisms] == [
            m.detectors for m in second.mechanisms
        ]

    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_directory() is None
        code = RotatedSurfaceCode(3)
        noise = CodeCapacityNoiseModel()
        assert dem_cache_path(code, 1, noise, "Z") is None
        dem = load_or_build_dem(code, 1, noise)  # still builds
        assert dem.n_detectors > 0

    def test_corrupt_cache_rebuilt(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = RotatedSurfaceCode(3)
        noise = CodeCapacityNoiseModel()
        path = dem_cache_path(code, 1, noise, "Z")
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as handle:
            pickle.dump({"not": "a dem"}, handle)
        dem = load_or_build_dem(code, 1, noise)
        assert dem.n_detectors > 0

    def test_distinct_configs_distinct_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = RotatedSurfaceCode(3)
        noise = CodeCapacityNoiseModel()
        a = dem_cache_path(code, 1, noise, "Z")
        b = dem_cache_path(code, 2, noise, "Z")
        c = dem_cache_path(code, 1, noise, "X")
        assert len({a, b, c}) == 3
