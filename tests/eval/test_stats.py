"""Tests for statistical helpers."""

import numpy as np
import pytest

from repro.eval.stats import (
    weighted_histogram,
    weighted_mean_max,
    wilson_interval,
)


class TestWilson:
    def test_zero_successes_has_positive_upper(self):
        est = wilson_interval(0, 100)
        assert est.rate == 0.0
        assert 0 < est.high < 0.06
        assert est.low == 0.0

    def test_contains_rate(self):
        est = wilson_interval(30, 100)
        assert est.low < 0.3 < est.high

    def test_empty_trials(self):
        est = wilson_interval(0, 0)
        assert est.low == 0.0 and est.high == 1.0

    def test_narrower_with_more_trials(self):
        small = wilson_interval(5, 50)
        large = wilson_interval(500, 5000)
        assert (large.high - large.low) < (small.high - small.low)

    def test_str(self):
        assert "[" in str(wilson_interval(1, 10))


class TestWeighted:
    def test_histogram_accumulates(self):
        hist = weighted_histogram([0, 2, 2], [0.5, 0.25, 0.25], n_bins=4)
        assert hist.tolist() == [0.5, 0.0, 0.5, 0.0]

    def test_histogram_overflow_to_last_bin(self):
        hist = weighted_histogram([10], [1.0], n_bins=3)
        assert hist.tolist() == [0.0, 0.0, 1.0]

    def test_negative_values_clamp_to_first_bin(self):
        """Regression: a negative value used to wrap via Python negative
        indexing and silently credit a bin at the END of the histogram."""
        hist = weighted_histogram([-1, -7, 2], [0.5, 0.25, 1.0], n_bins=4)
        assert hist.tolist() == [0.75, 0.0, 1.0, 0.0]

    def test_empty_input(self):
        assert weighted_histogram([], [], n_bins=3).tolist() == [0.0, 0.0, 0.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_histogram([1, 2], [1.0], n_bins=3)

    def test_invalid_bin_count_rejected(self):
        with pytest.raises(ValueError):
            weighted_histogram([1], [1.0], n_bins=0)

    def test_mean_max(self):
        mean, peak = weighted_mean_max([1.0, 3.0], [3.0, 1.0])
        assert mean == pytest.approx(1.5)
        assert peak == 3.0

    def test_empty(self):
        assert weighted_mean_max([], []) == (0.0, 0.0)
