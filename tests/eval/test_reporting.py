"""Tests for report formatting."""

from repro.eval.reporting import (
    format_histogram,
    format_ler_table,
    format_ratio,
    format_scientific,
    format_table,
)


class TestFormatting:
    def test_scientific(self):
        assert format_scientific(2.6e-14) == "2.6e-14"
        assert format_scientific(0) == "0"

    def test_ratio(self):
        assert format_ratio(5.0, 2.0) == "(2.5x)"
        assert format_ratio(430.0, 10.0) == "(43x)"
        assert format_ratio(1.0, 0.0) == "(n/a)"

    def test_table_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_ler_table_has_baseline_ratio(self):
        text = format_ler_table({"MWPM": 1e-13, "X": 2.5e-13})
        assert "(2.5x)" in text
        assert "1.0e-13" in text

    def test_histogram_skips_zeros(self):
        text = format_histogram([0.0, 0.5, 0.0, 1e-8], title="t")
        assert "HW   1" in text
        assert "HW   2" not in text
        assert "HW   3" in text
