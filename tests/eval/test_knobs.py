"""Tests for the scaling-knob registry (repro.eval.knobs).

The registry carries one precedence rule -- CLI flag > env var > spec
value > default -- shared by benchmarks, campaign specs, and the CLI.
"""

import pytest

from repro.eval.knobs import (
    CORE_KNOBS,
    MISSING,
    Knob,
    KnobRegistry,
    parse_bool,
    parse_float_list,
    parse_int_list,
    parse_positive_int_or_none,
    parse_str,
)


class TestParsers:
    def test_int_list(self):
        assert parse_int_list("3, 5,7") == [3, 5, 7]
        assert parse_int_list("") == []

    def test_float_list(self):
        assert parse_float_list("1e-4,2e-4") == [1e-4, 2e-4]

    def test_bool_is_numeric_flag(self):
        assert parse_bool("1") is True
        assert parse_bool("0") is False

    def test_positive_int_or_none(self):
        assert parse_positive_int_or_none("8") == 8
        assert parse_positive_int_or_none("0") is None
        assert parse_positive_int_or_none("-3") is None

    def test_str_strips(self):
        assert parse_str("  store.jsonl ") == "store.jsonl"


class TestKnob:
    def test_from_env_missing_and_empty(self):
        knob = Knob("x", "REPRO_TEST_X", int, 7)
        assert knob.from_env({}) is MISSING
        assert knob.from_env({"REPRO_TEST_X": ""}) is MISSING
        assert knob.from_env({"REPRO_TEST_X": "  "}) is MISSING
        assert knob.from_env({"REPRO_TEST_X": "11"}) == 11


class TestRegistry:
    def _registry(self):
        return KnobRegistry([Knob("shots", "REPRO_TEST_SHOTS", int, 100)])

    def test_precedence_default(self):
        assert self._registry().resolve("shots", environ={}) == 100

    def test_precedence_spec_beats_default(self):
        assert self._registry().resolve("shots", spec=250, environ={}) == 250

    def test_precedence_env_beats_spec(self):
        env = {"REPRO_TEST_SHOTS": "500"}
        assert self._registry().resolve("shots", spec=250, environ=env) == 500

    def test_precedence_cli_beats_env(self):
        env = {"REPRO_TEST_SHOTS": "500"}
        assert (
            self._registry().resolve("shots", cli=900, spec=250, environ=env)
            == 900
        )

    def test_spec_none_falls_through(self):
        assert self._registry().resolve("shots", spec=None, environ={}) == 100

    def test_unknown_knob(self):
        with pytest.raises(KeyError, match="unknown knob"):
            self._registry().resolve("nope")

    def test_reregister_identical_is_noop(self):
        registry = self._registry()
        registry.register("shots", "REPRO_TEST_SHOTS", int, 100)
        assert registry.resolve("shots", environ={}) == 100

    def test_reregister_conflicting_definition_raises(self):
        registry = self._registry()
        with pytest.raises(ValueError, match="different definition"):
            registry.register("shots", "REPRO_TEST_OTHER", int, 100)

    def test_default_accessor(self):
        assert self._registry().default("shots") == 100


class TestCoreKnobs:
    """The shared knob set keeps its historic env-var contract."""

    def test_legacy_env_names(self):
        expected = {
            "shots_per_k": "REPRO_BENCH_SHOTS_PER_K",
            "census_shots": "REPRO_BENCH_CENSUS_SHOTS",
            "k_max": "REPRO_BENCH_KMAX",
            "distances": "REPRO_BENCH_DISTANCES",
            "shards": "REPRO_BENCH_SHARDS",
            "store": "REPRO_BENCH_STORE",
        }
        for name, env in expected.items():
            assert CORE_KNOBS.get(name).env == env

    def test_distances_parse(self):
        env = {"REPRO_BENCH_DISTANCES": "7,9,11"}
        assert CORE_KNOBS.resolve("distances", environ=env) == [7, 9, 11]
