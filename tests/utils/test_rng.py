"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng, stable_seed


class TestEnsureRng:
    def test_seed_determinism(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        assert (a == b).all()

    def test_passthrough(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawn:
    def test_streams_differ(self):
        a = spawn_rng(1, 0).integers(0, 1_000_000, 5)
        b = spawn_rng(1, 1).integers(0, 1_000_000, 5)
        assert not (a == b).all()


class TestStableSeed:
    def test_stable_across_calls(self):
        assert stable_seed("table2", 11, 1e-4) == stable_seed("table2", 11, 1e-4)

    def test_distinguishes_labels(self):
        assert stable_seed("a") != stable_seed("b")

    def test_in_range(self):
        assert 0 <= stable_seed("x", 1, 2.5) < 2**63
