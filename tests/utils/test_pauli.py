"""Unit and property tests for the symplectic Pauli layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.pauli import (
    ONE_QUBIT_DEPOLARIZING_PAULIS,
    TWO_QUBIT_DEPOLARIZING_PAULIS,
    Pauli,
    PauliString,
)

PAULIS = [Pauli.I, Pauli.X, Pauli.Y, Pauli.Z]


class TestPauli:
    def test_bits_roundtrip(self):
        for p in PAULIS:
            assert Pauli.from_bits(p.x_bit, p.z_bit) is p

    def test_product_table(self):
        assert Pauli.X * Pauli.Z is Pauli.Y
        assert Pauli.X * Pauli.Y is Pauli.Z
        assert Pauli.Y * Pauli.Z is Pauli.X
        for p in PAULIS:
            assert p * Pauli.I is p
            assert p * p is Pauli.I

    def test_commutation(self):
        assert Pauli.X.commutes_with(Pauli.X)
        assert Pauli.I.commutes_with(Pauli.Z)
        assert not Pauli.X.commutes_with(Pauli.Z)
        assert not Pauli.Y.commutes_with(Pauli.X)
        assert not Pauli.Y.commutes_with(Pauli.Z)

    def test_depolarizing_expansions(self):
        assert len(ONE_QUBIT_DEPOLARIZING_PAULIS) == 3
        assert len(TWO_QUBIT_DEPOLARIZING_PAULIS) == 15
        assert (Pauli.I, Pauli.I) not in TWO_QUBIT_DEPOLARIZING_PAULIS
        assert len(set(TWO_QUBIT_DEPOLARIZING_PAULIS)) == 15


pauli_strategy = st.sampled_from(PAULIS)


@given(pauli_strategy, pauli_strategy)
def test_product_commutes_mod_phase(a, b):
    # Pauli products commute up to phase, which the symplectic form drops.
    assert a * b is b * a


@given(pauli_strategy, pauli_strategy, pauli_strategy)
def test_product_associative(a, b, c):
    assert (a * b) * c is a * (b * c)


string_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), pauli_strategy), max_size=8
).map(PauliString.from_pairs)


class TestPauliString:
    def test_identity_entries_dropped(self):
        s = PauliString.from_pairs([(0, Pauli.X), (1, Pauli.I)])
        assert len(s) == 1
        assert s[1] is Pauli.I

    def test_setitem_cancellation(self):
        s = PauliString()
        s[3] = Pauli.X
        s[3] = s[3] * Pauli.X
        assert not s

    def test_supports(self):
        s = PauliString.from_pairs([(0, Pauli.X), (1, Pauli.Y), (2, Pauli.Z)])
        assert s.x_support() == (0, 1)
        assert s.z_support() == (1, 2)

    def test_known_commutation(self):
        xx = PauliString.from_pairs([(0, Pauli.X), (1, Pauli.X)])
        zz = PauliString.from_pairs([(0, Pauli.Z), (1, Pauli.Z)])
        zi = PauliString.from_pairs([(0, Pauli.Z)])
        assert xx.commutes_with(zz)
        assert not xx.commutes_with(zi)

    @given(string_strategy, string_strategy)
    def test_product_weight_bound(self, a, b):
        assert len(a * b) <= len(a) + len(b)

    @given(string_strategy)
    def test_self_product_is_identity(self, a):
        assert not (a * a)

    @given(string_strategy, string_strategy)
    def test_commutation_symmetric(self, a, b):
        assert a.commutes_with(b) == b.commutes_with(a)

    @given(string_strategy)
    def test_commutes_with_self(self, a):
        assert a.commutes_with(a)
