"""Tests for probability/weight algebra helpers."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    nonzero_tuple,
    parity,
    popcount_rows,
    probability_to_weight,
    weight_to_probability,
    xor_combine_probabilities,
    xor_combine_two,
)

probability = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)


class TestXorCombine:
    def test_two_known(self):
        assert xor_combine_two(0.0, 0.25) == pytest.approx(0.25)
        assert xor_combine_two(0.5, 0.5) == pytest.approx(0.5)
        assert xor_combine_two(0.1, 0.2) == pytest.approx(0.1 * 0.8 + 0.2 * 0.9)

    def test_many_equals_iterated_two(self):
        ps = [0.01, 0.02, 0.03, 0.04]
        acc = 0.0
        for p in ps:
            acc = xor_combine_two(acc, p)
        assert xor_combine_probabilities(ps) == pytest.approx(acc)

    @given(probability, probability)
    def test_symmetry(self, p1, p2):
        assert xor_combine_two(p1, p2) == pytest.approx(xor_combine_two(p2, p1))

    @given(st.lists(probability, max_size=10))
    def test_result_in_range(self, ps):
        combined = xor_combine_probabilities(ps)
        assert -1e-12 <= combined <= 0.5 + 1e-12

    @given(probability)
    def test_identity_element(self, p):
        assert xor_combine_two(0.0, p) == pytest.approx(p)


class TestWeights:
    def test_weight_of_half_is_zero_plus(self):
        assert probability_to_weight(0.5) >= 0.0

    def test_roundtrip(self):
        for p in (1e-6, 1e-4, 0.01, 0.3):
            assert weight_to_probability(probability_to_weight(p)) == pytest.approx(
                p, rel=1e-9
            )

    def test_monotone_decreasing_in_p(self):
        weights = [probability_to_weight(p) for p in (1e-5, 1e-4, 1e-3, 1e-2)]
        assert weights == sorted(weights, reverse=True)

    @given(st.floats(min_value=1e-12, max_value=0.49))
    def test_positive(self, p):
        assert probability_to_weight(p) > 0


class TestBitHelpers:
    def test_parity(self):
        assert parity([1, 1, 0]) == 0
        assert parity([1, 0, 0]) == 1
        assert parity([]) == 0

    def test_popcount_rows(self):
        m = np.array([[True, False, True], [False, False, False]])
        assert popcount_rows(m).tolist() == [2, 0]

    def test_nonzero_tuple(self):
        v = np.array([False, True, False, True])
        assert nonzero_tuple(v) == (1, 3)
