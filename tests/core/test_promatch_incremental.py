"""Incremental Promatch engine == rebuild-per-round reference oracle.

PR 5's tentpole contract: ``PromatchPredecoder`` (incremental subgraph,
vectorized candidate scan, bulk batch construction) must be element-wise
indistinguishable from ``ReferencePromatchPredecoder`` (the retained
historic engine) -- pairs, pair observables, weight, cycles, steps_used,
rounds, remaining, abort flag and collected traces -- across randomized
syndromes, tight budgets, ablation modes and both batch entry points.
"""

import sys
import zlib
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import figure7_graph, figure9_graph, make_graph, make_path_graph  # noqa: E402

import repro.core.steps as steps_module
from repro.core import PromatchPredecoder, ReferencePromatchPredecoder
from repro.core.steps import find_edge_candidates, find_edge_candidates_scalar
from repro.graph.subgraph import DecodingSubgraph
from repro.sim import DemSampler


def synthetic_graphs():
    return {
        "figure7": figure7_graph(),
        "figure9": figure9_graph(),
        "path12": make_path_graph(12),
        "braided": make_graph(
            10,
            edges=[
                (0, 1, 1.0), (1, 2, 0.7), (2, 3, 1.3), (3, 4, 0.9),
                (4, 5, 1.1), (0, 5, 2.0), (1, 6, 0.8), (6, 7, 1.2),
                (7, 8, 0.6), (8, 9, 1.4), (2, 8, 1.0), (5, 9, 0.5),
            ],
            boundary=[(0, 4.0), (3, 3.0), (9, 2.5)],
        ),
    }


def random_syndrome(rng, n_nodes):
    k = int(rng.integers(0, n_nodes + 1))
    return tuple(sorted(map(int, rng.choice(n_nodes, size=k, replace=False))))


ENGINE_VARIANTS = [
    {},
    {"exact_singleton_check": True},
    {"enable_singleton_avoidance": False},
    {"enable_step3": False},
    {"collect_trace": True},
]


class TestEngineEquality:
    @pytest.mark.parametrize("graph_name", sorted(synthetic_graphs()))
    def test_synthetic_graphs_all_variants(self, graph_name):
        graph = synthetic_graphs()[graph_name]
        # crc32, not hash(): str hashes are salted per process and
        # failures must reproduce.
        rng = np.random.default_rng(zlib.crc32(graph_name.encode()))
        for _ in range(40):
            events = random_syndrome(rng, graph.n_nodes)
            for capability in (0, 1, 4):
                for budget in (None, 0.5, 3, 10, 40):
                    for kwargs in ENGINE_VARIANTS:
                        incremental = PromatchPredecoder(
                            graph, main_capability=capability, **kwargs
                        )
                        reference = ReferencePromatchPredecoder(
                            graph, main_capability=capability, **kwargs
                        )
                        fast = incremental.predecode(events, budget_cycles=budget)
                        slow = reference.predecode(events, budget_cycles=budget)
                        assert fast == slow, (
                            graph_name, events, capability, budget, kwargs
                        )

    def test_randomized_grid_on_real_stacks(self, d3_stack, d5_stack):
        """Randomized (distance, p) grid against sampled circuit noise."""
        for stack, p, seed in (
            (d3_stack, 6e-3, 11),
            (d3_stack, 1.2e-2, 12),
            (d5_stack, 6e-3, 13),
            (d5_stack, 1e-2, 14),
        ):
            _exp, dem, graph = stack
            batch = DemSampler(dem, p, rng=seed).sample(60)
            incremental = PromatchPredecoder(graph, main_capability=4)
            reference = ReferencePromatchPredecoder(graph, main_capability=4)
            for events in batch.events:
                assert incremental.predecode(events) == reference.predecode(
                    events
                )

    def test_abort_at_deadline_matches(self, d5_stack, d5_syndromes):
        """Tight budgets force mid-round aborts; rollback must agree."""
        _exp, _dem, graph = d5_stack
        incremental = PromatchPredecoder(graph, main_capability=0)
        reference = ReferencePromatchPredecoder(graph, main_capability=0)
        aborted = 0
        for events in d5_syndromes.events[:60]:
            for budget in (0.5, 2, 7, 15):
                fast = incremental.predecode(events, budget_cycles=budget)
                slow = reference.predecode(events, budget_cycles=budget)
                assert fast == slow
                aborted += fast.aborted
        assert aborted > 0, "budgets must actually trigger aborts"

    def test_trace_collection_matches(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        incremental = PromatchPredecoder(
            graph, main_capability=0, collect_trace=True
        )
        reference = ReferencePromatchPredecoder(
            graph, main_capability=0, collect_trace=True
        )
        traced = 0
        for events in d5_syndromes.events[:40]:
            fast = incremental.predecode(events)
            slow = reference.predecode(events)
            assert fast.trace == slow.trace
            assert fast == slow
            traced += len(fast.trace)
        assert traced > 0

    def test_predecode_batch_bulk_equals_loop_and_reference(
        self, d5_stack, d5_syndromes
    ):
        """The bulk batch core == per-shot loop == reference batch path."""
        _exp, _dem, graph = d5_stack
        incremental = PromatchPredecoder(graph, main_capability=4)
        reference = ReferencePromatchPredecoder(graph, main_capability=4)
        batch = d5_syndromes.events[:120]
        fast = incremental.predecode_batch(batch, budget_cycles=60)
        loop = [
            incremental.predecode(events, budget_cycles=60) for events in batch
        ]
        slow = reference.predecode_batch(batch, budget_cycles=60)
        assert fast == loop
        assert fast == slow


class TestAblationRelabeling:
    def test_folded_risky_candidates_report_step_2(self):
        """Satellite regression: with singleton avoidance disabled, Steps
        2/4 are collapsed by design, so a risky candidate folded into a
        safe slot must be *relabeled* -- ``steps_used`` and the round
        trace may never report a Step-4 engagement in this mode."""
        graph = make_path_graph(3)  # a bare 3-chain: only risky matches
        full = PromatchPredecoder(graph, main_capability=1)
        ablated = PromatchPredecoder(
            graph,
            main_capability=1,
            enable_singleton_avoidance=False,
            collect_trace=True,
        )
        assert full.predecode((0, 1, 2)).steps_used == 4
        report = ablated.predecode((0, 1, 2))
        assert report.steps_used == 2
        assert all(trace.step.startswith("2") for trace in report.trace)
        # The ablation still commits the same greedy lowest-weight pair.
        assert report.pairs == full.predecode((0, 1, 2)).pairs


class TestCandidateScanEquivalence:
    def _assert_scans_agree(self, subgraph, exact=False):
        fast = find_edge_candidates(subgraph, exact_singleton_check=exact)
        slow = find_edge_candidates_scalar(subgraph, exact_singleton_check=exact)
        assert fast == slow

    @pytest.mark.parametrize("graph_name", sorted(synthetic_graphs()))
    @pytest.mark.parametrize("exact", [False, True])
    def test_small_path_matches_scalar(self, graph_name, exact):
        graph = synthetic_graphs()[graph_name]
        rng = np.random.default_rng(5)
        for _ in range(30):
            events = random_syndrome(rng, graph.n_nodes)
            self._assert_scans_agree(DecodingSubgraph(graph, events), exact)

    def test_vectorized_path_matches_scalar(self, monkeypatch):
        """Force the numpy pass (normally gated on >= VECTOR_MIN_EDGES)."""
        monkeypatch.setattr(steps_module, "VECTOR_MIN_EDGES", 0)
        rng = np.random.default_rng(9)
        for graph in synthetic_graphs().values():
            for _ in range(20):
                events = random_syndrome(rng, graph.n_nodes)
                for exact in (False, True):
                    self._assert_scans_agree(
                        DecodingSubgraph(graph, events), exact
                    )

    def test_large_subgraph_takes_vectorized_path(self):
        """A >= 64-edge subgraph exercises the numpy pass for real."""
        graph = make_path_graph(70)
        subgraph = DecodingSubgraph.from_columnar(graph, list(range(70)))
        assert subgraph.n_edges >= 64
        self._assert_scans_agree(subgraph)

    def test_candidates_carry_edge_index_hint(self):
        graph = figure7_graph()
        subgraph = DecodingSubgraph.from_columnar(graph, [0, 1, 2, 3])
        for candidate in find_edge_candidates(subgraph).values():
            if candidate is not None:
                edge = subgraph.edge_at(candidate.edge_index)
                assert {edge.i, edge.j} == {candidate.i, candidate.j}
