"""Behavioural tests for the Promatch predecoder (paper Section 4)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import figure7_graph, make_graph, make_path_graph  # noqa: E402

from repro.core import PromatchPredecoder
from repro.hardware.latency import astrea_cycles


def isolated_pairs_graph(n_pairs: int):
    """n disjoint 2-chains: every flipped pair is isolated."""
    edges = [(2 * i, 2 * i + 1, 1.0 + 0.01 * i) for i in range(n_pairs)]
    boundary = [(i, 30.0) for i in range(2 * n_pairs)]
    return make_graph(2 * n_pairs, edges, boundary)


class TestFigure7Insight:
    def test_correct_prematching_of_complex_pattern(self):
        """The paper's key example: Promatch must match (1,2) and (3,4),
        never the weight-cheaper middle pair that strands two singletons."""
        promatch = PromatchPredecoder(
            figure7_graph(), main_capability=0
        )  # force full predecoding
        report = promatch.predecode((0, 1, 2, 3))
        assert sorted(report.pairs) == [(0, 1), (2, 3)]
        assert report.remaining == ()
        # Step 2 suffices; the risky Step 4 must never fire here.
        assert report.steps_used <= 2


class TestAdaptiveStopping:
    def test_stops_at_main_capability(self):
        promatch = PromatchPredecoder(isolated_pairs_graph(9), main_capability=10)
        events = tuple(range(18))
        report = promatch.predecode(events)
        # 18 -> 16 -> ... -> 10: stop as soon as Astrea can take over.
        assert len(report.remaining) == 10
        assert report.steps_used == 1

    def test_low_hw_untouched(self):
        promatch = PromatchPredecoder(isolated_pairs_graph(4), main_capability=10)
        events = tuple(range(8))
        report = promatch.predecode(events)
        assert report.pairs == []
        assert report.remaining == events

    def test_time_pressure_lowers_target(self):
        """With most of the budget gone, HW 10 no longer fits (114 cycles)
        and Promatch must keep predecoding to a cheaper Hamming weight."""
        promatch = PromatchPredecoder(isolated_pairs_graph(9), main_capability=10)
        report = promatch.predecode(tuple(range(18)), budget_cycles=60)
        hw = len(report.remaining)
        assert hw < 10
        assert astrea_cycles(hw) <= 60 - report.cycles

    def test_zero_budget_aborts(self):
        promatch = PromatchPredecoder(isolated_pairs_graph(9))
        report = promatch.predecode(tuple(range(18)), budget_cycles=0)
        assert report.aborted

    def test_aborted_round_commits_rolled_back(self):
        """Regression: blowing the budget mid-round used to leave the
        round's commits in ``pairs``/``weight`` while the same nodes also
        stayed in ``remaining``.  An aborted round must be rolled back
        entirely: pairs and remaining stay disjoint."""
        promatch = PromatchPredecoder(isolated_pairs_graph(2), main_capability=0)
        events = (0, 1, 2, 3)
        # The first round costs >= n_edges cycles; a sub-cycle budget
        # guarantees the abort lands after the round committed its pairs.
        report = promatch.predecode(events, budget_cycles=0.5)
        assert report.aborted
        assert report.pairs == []
        assert report.pair_observables == []
        assert report.weight == 0.0
        assert report.steps_used == 0
        assert report.remaining == events

    def test_aborted_pairs_and_remaining_always_disjoint(self):
        """The disjointness invariant across a spread of tight budgets."""
        promatch = PromatchPredecoder(isolated_pairs_graph(9), main_capability=0)
        events = tuple(range(18))
        for budget in (0.5, 1, 2, 5, 9, 10, 18, 27, 40):
            report = promatch.predecode(events, budget_cycles=budget)
            matched = {node for pair in report.pairs for node in pair}
            assert not matched & set(report.remaining), f"budget={budget}"
            assert len(report.pairs) == len(report.pair_observables)


class TestStepEscalation:
    def test_chain_uses_risky_step_when_forced(self):
        """A bare 3-chain has no safe matches and no singletons: Step 4."""
        graph = make_path_graph(3)
        promatch = PromatchPredecoder(graph, main_capability=1)
        report = promatch.predecode((0, 1, 2))
        assert report.steps_used == 4
        assert len(report.remaining) == 1

    def test_singleton_rescue_uses_step3(self):
        graph = make_path_graph(12)
        # Two singletons far apart; nothing else: Step 3 must pair them.
        promatch = PromatchPredecoder(graph, main_capability=0)
        report = promatch.predecode((3, 8))
        assert report.steps_used == 3
        assert report.pairs == [(3, 8)]
        assert report.remaining == ()

    def test_unmatchable_leftover_breaks_cleanly(self):
        graph = make_path_graph(6)
        promatch = PromatchPredecoder(graph, main_capability=0)
        report = promatch.predecode((2,))  # single event, no partner
        assert report.remaining == (2,)
        assert not report.aborted


class TestAccounting:
    def test_cycles_accumulate_per_round(self):
        promatch = PromatchPredecoder(isolated_pairs_graph(9), main_capability=4)
        report = promatch.predecode(tuple(range(18)))
        assert report.cycles >= 9  # at least one pass over 9 edges
        assert report.rounds >= 1

    def test_weight_matches_committed_edges(self):
        graph = figure7_graph()
        promatch = PromatchPredecoder(graph, main_capability=0)
        report = promatch.predecode((0, 1, 2, 3))
        expected = sum(graph.direct_edge_weight(u, v) for u, v in report.pairs)
        assert report.weight == pytest.approx(expected)

    def test_observables_tracked_per_pair(self):
        graph = make_graph(
            4,
            edges=[(0, 1, 1.0), (2, 3, 1.0)],
            boundary=[(i, 20.0) for i in range(4)],
            observables={(0, 1): 1},
        )
        promatch = PromatchPredecoder(graph, main_capability=0)
        report = promatch.predecode((0, 1, 2, 3))
        assert report.observable_mask == 1


class TestExactSingletonAblation:
    def test_exact_check_changes_triangle_behaviour(self):
        graph = make_graph(
            n_nodes=3,
            edges=[(0, 1, 1.0), (0, 2, 1.1), (1, 2, 1.2)],
            boundary=[(i, 9.0) for i in range(3)],
        )
        paper = PromatchPredecoder(graph, main_capability=1)
        exact = PromatchPredecoder(graph, main_capability=1, exact_singleton_check=True)
        paper_report = paper.predecode((0, 1, 2))
        exact_report = exact.predecode((0, 1, 2))
        # Hardware logic sees a safe match (Step 2); the exact check knows
        # every match strands the third node (Step 4).
        assert paper_report.steps_used == 2
        assert exact_report.steps_used == 4
