"""Tests for Promatch candidate selection (Algorithm 1 steps)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import figure7_graph, figure9_graph, make_graph, make_path_graph  # noqa: E402

from repro.core.steps import find_edge_candidates, find_step3_candidate
from repro.graph.subgraph import DecodingSubgraph


class TestEdgeCandidates:
    def test_figure7_outer_edges_are_safe(self):
        """On the 4-chain the outer edges are 2.1 candidates, the middle
        edge (despite its lower weight) is relegated to Step 4."""
        sub = DecodingSubgraph(figure7_graph(), [0, 1, 2, 3])
        candidates = find_edge_candidates(sub)
        assert candidates["2.1"] is not None
        assert {candidates["2.1"].i, candidates["2.1"].j} in ({0, 1}, {2, 3})
        # The middle edge joins two degree-2 nodes and strands both ends:
        # risky without the degree-1 bonus, i.e. a Step 4.2 candidate.
        assert candidates["4.2"] is not None
        assert {candidates["4.2"].i, candidates["4.2"].j} == {1, 2}
        assert candidates["2.2"] is None

    def test_lowest_weight_wins_within_step(self):
        graph = make_graph(
            n_nodes=4,
            edges=[(0, 1, 3.0), (2, 3, 1.0)],
            boundary=[(i, 9.0) for i in range(4)],
        )
        sub = DecodingSubgraph(graph, [0, 1, 2, 3])
        candidates = find_edge_candidates(sub)
        chosen = candidates["2.1"]
        assert {chosen.i, chosen.j} == {2, 3}
        assert chosen.weight == pytest.approx(1.0)

    def test_square_cycle_all_safe_2_2(self):
        """A 4-cycle has all degree-2 nodes: every edge is a 2.2 candidate."""
        graph = make_graph(
            n_nodes=4,
            edges=[(0, 1, 1.0), (1, 2, 1.1), (2, 3, 1.2), (0, 3, 1.3)],
            boundary=[(i, 9.0) for i in range(4)],
        )
        sub = DecodingSubgraph(graph, [0, 1, 2, 3])
        candidates = find_edge_candidates(sub)
        assert candidates["2.1"] is None
        assert candidates["2.2"] is not None
        assert candidates["2.2"].weight == pytest.approx(1.0)

    def test_figure9_classification(self):
        sub = DecodingSubgraph(figure9_graph(), list(range(6)))
        candidates = find_edge_candidates(sub)
        # (e, f) = (4, 5) is the only match that strands nobody... but f
        # depends on e (deg 1), wait: e also neighbors a. Matching (4, 5)
        # removes e; a keeps b, c, d. Safe and min(deg)=1 -> Step 2.1.
        assert candidates["2.1"] is not None
        assert {candidates["2.1"].i, candidates["2.1"].j} == {4, 5}
        # (a, b) strands c, d -> risky.
        assert candidates["4.1"] is not None

    def test_empty_subgraph(self):
        graph = make_path_graph(4)
        sub = DecodingSubgraph(graph, [])
        candidates = find_edge_candidates(sub)
        assert all(v is None for v in candidates.values())


class TestStep3:
    def test_no_singletons_no_candidate(self):
        graph = make_path_graph(4)
        sub = DecodingSubgraph(graph, [0, 1])
        candidate, paths = find_step3_candidate(sub)
        assert candidate is None and paths == 0

    def test_singleton_rescued_via_path(self):
        graph = make_path_graph(8)
        # Chain 0-1-2 plus a distant singleton 4.  The chain's *ends* have
        # no dependents (their neighbor 1 has degree 2), so the singleton
        # may take one of them; node 2 is the closest at path weight 2.
        sub = DecodingSubgraph(graph, [0, 1, 2, 4])
        candidate, paths = find_step3_candidate(sub)
        assert candidate is not None
        assert candidate.via_path
        assert paths == 3  # singleton 4 vs nodes 0, 1, 2
        matched_nodes = {sub.node_id(candidate.i), sub.node_id(candidate.j)}
        assert matched_nodes == {2, 4}

    def test_partner_with_dependents_skipped(self):
        """The singleton must not steal a node whose removal strands others."""
        graph = make_graph(
            n_nodes=4,
            # 0 - 1 edge; 1 is 0's only neighbor (mutual); 3 singleton.
            edges=[(0, 1, 1.0)],
            boundary=[(i, 9.0) for i in range(4)],
        )
        sub = DecodingSubgraph(graph, [0, 1, 3])
        candidate, _paths = find_step3_candidate(sub)
        # Nodes 0 and 1 each have a dependent (each other): both are
        # disqualified, and there is no other singleton to pair with.
        assert candidate is None

    def test_two_singletons_pair_up(self):
        graph = make_path_graph(10)
        sub = DecodingSubgraph(graph, [2, 6])  # far apart, both singletons
        candidate, _paths = find_step3_candidate(sub)
        assert candidate is not None
        assert {candidate.i, candidate.j} == {0, 1}
        assert candidate.weight == pytest.approx(4.0)  # 4 hops... via graph
