"""Tests for Promatch round-trace introspection."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import figure7_graph, make_path_graph  # noqa: E402

from repro.core import PromatchPredecoder


class TestTrace:
    def test_disabled_by_default(self):
        promatch = PromatchPredecoder(figure7_graph(), main_capability=0)
        report = promatch.predecode((0, 1, 2, 3))
        assert report.trace == []

    def test_rounds_recorded(self):
        promatch = PromatchPredecoder(
            figure7_graph(), main_capability=0, collect_trace=True
        )
        report = promatch.predecode((0, 1, 2, 3))
        assert len(report.trace) == report.rounds
        assert [t.round_index for t in report.trace] == list(range(report.rounds))

    def test_trace_contents_consistent(self):
        promatch = PromatchPredecoder(
            figure7_graph(), main_capability=0, collect_trace=True
        )
        report = promatch.predecode((0, 1, 2, 3))
        first = report.trace[0]
        assert first.hamming_weight == 4
        assert first.n_edges == 3
        assert first.step in ("1", "2.1", "2.2", "3", "4.1", "4.2")
        traced_pairs = [p for t in report.trace for p in t.committed]
        assert sorted(traced_pairs) == sorted(report.pairs)

    def test_cycles_sum_matches_total(self):
        promatch = PromatchPredecoder(
            make_path_graph(12), main_capability=0, collect_trace=True
        )
        report = promatch.predecode((0, 1, 4, 5, 8, 9))
        assert sum(t.cycles for t in report.trace) == pytest.approx(report.cycles)

    def test_hamming_weight_decreases(self):
        promatch = PromatchPredecoder(
            make_path_graph(20), main_capability=0, collect_trace=True
        )
        report = promatch.predecode((0, 1, 4, 5, 8, 9, 12, 13))
        weights = [t.hamming_weight for t in report.trace]
        assert weights == sorted(weights, reverse=True)
