"""Property-based tests: Promatch invariants over random syndromes.

These are the paper's implicit contracts:

* coverage: when predecoding succeeds (no abort, no dead end), the
  residual Hamming weight fits the main decoder's capability,
* soundness: committed pairs are disjoint, drawn from the syndrome, and
  every pair is either a real subgraph edge or a Step-3 path,
* monotonicity: predecoding never *increases* Hamming weight, and the
  parity of the Hamming weight is preserved (pairs leave two at a time).
"""

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.core import PromatchPredecoder
from repro.hardware.latency import astrea_cycles
from repro.sim import DemSampler


@pytest.fixture(scope="module")
def promatch_env(request):
    d5_stack = request.getfixturevalue("d5_stack")
    _exp, dem, graph = d5_stack
    return dem, graph, PromatchPredecoder(graph)


syndrome_seed = st.integers(min_value=0, max_value=2**31 - 1)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=syndrome_seed)
def test_invariants_on_sampled_syndromes(promatch_env, seed):
    dem, graph, promatch = promatch_env
    batch = DemSampler(dem, 8e-3, rng=seed).sample(8)
    for events in batch.events:
        report = promatch.predecode(events)
        event_set = set(events)

        matched = [u for pair in report.pairs for u in pair]
        # Soundness: disjoint, from the syndrome, remaining = complement.
        assert len(matched) == len(set(matched))
        assert set(matched) <= event_set
        assert set(report.remaining) == event_set - set(matched)

        # Parity and monotonicity.
        assert len(report.remaining) <= len(events)
        assert (len(events) - len(report.remaining)) % 2 == 0

        # Coverage contract when the predecoder finished cleanly.
        if not report.aborted and len(report.remaining) <= 10:
            assert astrea_cycles(len(report.remaining)) <= promatch.budget_cycles

        # Committed matches are edges or (Step 3) connected paths.
        for u, v in report.pairs:
            direct = graph.direct_edge_weight(u, v)
            assert direct is not None or np.isfinite(graph.distance(u, v))

        # Step bookkeeping.
        assert 0 <= report.steps_used <= 4
        assert report.cycles >= 0


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=syndrome_seed, budget=st.integers(min_value=1, max_value=240))
def test_budget_respected(promatch_env, seed, budget):
    dem, graph, promatch = promatch_env
    batch = DemSampler(dem, 1e-2, rng=seed).sample(4)
    for events in batch.events:
        report = promatch.predecode(events, budget_cycles=budget)
        if report.aborted:
            # The abort must be triggered by actually exceeding the budget.
            assert report.cycles > budget
        else:
            # One round may end exactly on budget but never beyond by more
            # than the final round's cost; the stop check runs before
            # every round, so cycles <= budget holds on clean exits.
            assert report.cycles <= budget


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=syndrome_seed)
def test_determinism(promatch_env, seed):
    dem, graph, promatch = promatch_env
    batch = DemSampler(dem, 8e-3, rng=seed).sample(4)
    for events in batch.events:
        first = promatch.predecode(events)
        second = promatch.predecode(events)
        assert first.pairs == second.pairs
        assert first.remaining == second.remaining
        assert first.cycles == second.cycles
