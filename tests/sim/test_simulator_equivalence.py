"""Deep statistical equivalence of the two simulation paths.

The frame simulator samples noise *in circuit*; the DEM sampler draws
merged mechanisms independently.  For these to be interchangeable (the
foundation of every experiment in the reproduction) they must agree not
just on per-detector marginals but on *pairwise* detector correlations
-- two detectors are correlated exactly when mechanisms span them, and
the DEM merge must preserve that structure.
"""

import numpy as np
import pytest

from repro.circuits import build_memory_circuit
from repro.codes import RotatedSurfaceCode
from repro.noise import CircuitNoiseModel
from repro.sim import DemSampler, FrameSimulator, build_detector_error_model


@pytest.fixture(scope="module")
def paired_samples():
    p, shots = 1.5e-2, 40000
    code = RotatedSurfaceCode(3)
    experiment = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
    dem = build_detector_error_model(experiment.circuit)
    frame = FrameSimulator(experiment.circuit, p, rng=101).sample(shots)

    dem_batch = DemSampler(dem, p, rng=202).sample(shots)
    dem_dense = np.zeros((shots, dem.n_detectors), dtype=bool)
    for row, events in enumerate(dem_batch.events):
        for event in events:
            dem_dense[row, event] = True
    return frame.detectors, dem_dense, frame.observables[:, 0], (
        (dem_batch.observables & 1).astype(bool)
    )


class TestPairwiseAgreement:
    def test_joint_detector_rates(self, paired_samples):
        frame_dets, dem_dets, _fo, _do = paired_samples
        n = frame_dets.shape[1]
        worst = 0.0
        for i in range(n):
            for j in range(i + 1, n):
                joint_frame = (frame_dets[:, i] & frame_dets[:, j]).mean()
                joint_dem = (dem_dets[:, i] & dem_dets[:, j]).mean()
                worst = max(worst, abs(joint_frame - joint_dem))
        assert worst < 8e-3

    def test_hamming_weight_distribution(self, paired_samples):
        frame_dets, dem_dets, _fo, _do = paired_samples
        frame_hw = frame_dets.sum(axis=1)
        dem_hw = dem_dets.sum(axis=1)
        assert frame_hw.mean() == pytest.approx(dem_hw.mean(), rel=0.05)
        assert frame_hw.std() == pytest.approx(dem_hw.std(), rel=0.1)
        for hw in range(5):
            assert (frame_hw == hw).mean() == pytest.approx(
                (dem_hw == hw).mean(), abs=1.2e-2
            )

    def test_observable_detector_correlation(self, paired_samples):
        """The syndrome-conditioned observable statistics must match --
        this is what decoders actually consume."""
        frame_dets, dem_dets, frame_obs, dem_obs = paired_samples
        # P(observable flip | at least one detection event)
        frame_busy = frame_dets.any(axis=1)
        dem_busy = dem_dets.any(axis=1)
        p_frame = frame_obs[frame_busy].mean()
        p_dem = dem_obs[dem_busy].mean()
        assert p_frame == pytest.approx(p_dem, abs=0.02)
