"""Tests for the DEM-level samplers."""

import numpy as np
import pytest

from repro.sim.sampler import DemSampler, ExactKSampler, SyndromeBatch


class TestDemSampler:
    def test_zero_rate_quiet(self, d3_stack):
        _exp, dem, _graph = d3_stack
        batch = DemSampler(dem, 0.0, rng=1).sample(100)
        assert all(len(e) == 0 for e in batch.events)
        assert not batch.observables.any()

    def test_deterministic_with_seed(self, d3_stack):
        _exp, dem, _graph = d3_stack
        a = DemSampler(dem, 5e-3, rng=9).sample(200)
        b = DemSampler(dem, 5e-3, rng=9).sample(200)
        assert a.events == b.events
        assert (a.observables == b.observables).all()

    def test_mean_fault_count_matches_expectation(self, d3_stack):
        _exp, dem, _graph = d3_stack
        p = 5e-3
        batch = DemSampler(dem, p, rng=4).sample(8000)
        expected = dem.expected_fault_count(p)
        measured = batch.fault_counts.mean()
        assert measured == pytest.approx(expected, rel=0.1)

    def test_events_sorted_unique(self, d3_stack):
        _exp, dem, _graph = d3_stack
        batch = DemSampler(dem, 2e-2, rng=4).sample(500)
        for events in batch.events:
            assert list(events) == sorted(set(events))

    def test_shots_validation(self, d3_stack):
        _exp, dem, _graph = d3_stack
        with pytest.raises(ValueError):
            DemSampler(dem, 1e-3, rng=1).sample(0)


class TestExactKSampler:
    def test_exactly_k_faults(self, d3_stack):
        _exp, dem, _graph = d3_stack
        for k in (1, 3, 6):
            batch = ExactKSampler(dem, 1e-4, rng=2).sample(k, 50)
            assert (batch.fault_counts == k).all()

    def test_k_zero(self, d3_stack):
        _exp, dem, _graph = d3_stack
        batch = ExactKSampler(dem, 1e-4, rng=2).sample(0, 10)
        assert all(len(e) == 0 for e in batch.events)

    def test_hamming_weight_bounded_by_2k(self, d3_stack):
        _exp, dem, _graph = d3_stack
        k = 4
        batch = ExactKSampler(dem, 1e-4, rng=7).sample(k, 200)
        assert (batch.hamming_weights() <= 2 * k).all()

    def test_k_out_of_range(self, d3_stack):
        _exp, dem, _graph = d3_stack
        sampler = ExactKSampler(dem, 1e-4, rng=2)
        with pytest.raises(ValueError):
            sampler.sample(-1, 10)
        with pytest.raises(ValueError):
            sampler.sample(10**9, 10)

    def test_k_beyond_nonzero_mechanisms_raises(self, d3_stack):
        """Regression: with p = 0 every mechanism probability is zero, yet
        the Gumbel keys (-inf) still survived argpartition and the sampler
        happily emitted impossible syndromes.  k must be validated against
        the count of mechanisms that can actually fire."""
        _exp, dem, _graph = d3_stack
        sampler = ExactKSampler(dem, 0.0, rng=2)
        assert sampler.n_positive == 0
        with pytest.raises(ValueError, match="nonzero"):
            sampler.sample(1, 10)
        # k = 0 stays legal: the all-quiet syndrome always exists.
        batch = sampler.sample(0, 5)
        assert all(len(e) == 0 for e in batch.events)

    def test_weighting_prefers_likely_mechanisms(self, d3_stack):
        """Mechanism pick frequency should track p_i (Gumbel top-k)."""
        _exp, dem, _graph = d3_stack
        probs = dem.probabilities(1e-3)
        sampler = ExactKSampler(dem, 1e-3, rng=5)
        counts = np.zeros(len(dem.mechanisms))
        shots = 3000
        batch = sampler.sample(1, shots)
        for events, obs in zip(batch.events, batch.observables):
            # find which mechanism produced this signature
            for idx, m in enumerate(dem.mechanisms):
                if m.detectors == events and m.observable_mask == int(obs):
                    counts[idx] += 1
                    break
        # The most probable mechanisms should be picked more often than the
        # least probable ones by roughly their probability ratio.
        top = np.argsort(probs)[-5:]
        bottom = np.argsort(probs)[:5]
        assert counts[top].sum() > counts[bottom].sum()


class TestSyndromeBatch:
    def test_extend(self):
        a = SyndromeBatch(
            events=[(1, 2)],
            observables=np.array([1]),
            fault_counts=np.array([1]),
            weights=np.array([0.5]),
        )
        b = SyndromeBatch(
            events=[(3,)],
            observables=np.array([0]),
            fault_counts=np.array([2]),
            weights=np.array([0.25]),
        )
        a.extend(b)
        assert a.shots == 2
        assert a.events == [(1, 2), (3,)]
        assert a.weights.tolist() == [0.5, 0.25]

    def test_hamming_weights(self):
        batch = SyndromeBatch(events=[(), (1, 2, 3)], observables=np.array([0, 1]))
        assert batch.hamming_weights().tolist() == [0, 3]

    def test_extend_mismatched_fault_counts_raises(self):
        """Regression: extending a fault-counted batch with an uncounted
        one used to silently keep the stale array, misaligned with the
        grown event list."""
        counted = SyndromeBatch(
            events=[(1,)],
            observables=np.array([0]),
            fault_counts=np.array([1]),
        )
        uncounted = SyndromeBatch(events=[(2,)], observables=np.array([0]))
        with pytest.raises(ValueError, match="fault_counts"):
            counted.extend(uncounted)
        with pytest.raises(ValueError, match="fault_counts"):
            uncounted.extend(counted)
        # Nothing was concatenated before the raise.
        assert counted.shots == 1 and uncounted.shots == 1

    def test_extend_materializes_uniform_weights(self):
        """A missing weights array means uniform weight 1; extending a
        weighted batch with an unweighted one (or vice versa) must
        materialize those ones instead of dropping the metadata."""
        weighted = SyndromeBatch(
            events=[(1,)],
            observables=np.array([0]),
            weights=np.array([0.25]),
        )
        unweighted = SyndromeBatch(events=[(2,), (3,)], observables=np.array([0, 0]))
        weighted.extend(unweighted)
        assert weighted.weights.tolist() == [0.25, 1.0, 1.0]
        other = SyndromeBatch(
            events=[(4,)], observables=np.array([0]), weights=np.array([0.5])
        )
        unweighted2 = SyndromeBatch(events=[(5,)], observables=np.array([0]))
        unweighted2.extend(other)
        assert unweighted2.weights.tolist() == [1.0, 0.5]

    def test_dense_mirrors_events(self, d3_stack):
        _exp, dem, _graph = d3_stack
        batch = DemSampler(dem, 5e-3, rng=3).sample(150)
        assert batch.dense is not None
        assert batch.dense.shape == (150, dem.n_detectors)
        for shot, events in enumerate(batch.events):
            assert tuple(np.nonzero(batch.dense[shot])[0]) == events
        rebuilt = batch.to_dense(dem.n_detectors)
        assert (rebuilt == batch.dense).all()
        packed = batch.packed()
        assert packed.shape == (150, (dem.n_detectors + 7) // 8)

    def test_slice_aligns_all_fields(self, d3_stack):
        _exp, dem, _graph = d3_stack
        batch = DemSampler(dem, 5e-3, rng=3).sample(50)
        batch.weights = np.arange(50, dtype=np.float64)
        part = batch.slice(10, 20)
        assert part.shots == 10
        assert part.events == batch.events[10:20]
        assert (part.observables == batch.observables[10:20]).all()
        assert (part.fault_counts == batch.fault_counts[10:20]).all()
        assert part.weights.tolist() == list(range(10, 20))
        assert (part.dense == batch.dense[10:20]).all()
