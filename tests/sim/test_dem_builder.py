"""Tests for detector-error-model extraction."""

import numpy as np
import pytest

from repro.circuits import build_memory_circuit
from repro.circuits.circuit import Circuit, DetectorSpec, ObservableSpec
from repro.circuits.ops import NoiseClass, OpKind
from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.dem.model import NOISE_CLASS_ORDER, class_index
from repro.noise import CircuitNoiseModel, CodeCapacityNoiseModel
from repro.sim import FrameSimulator, build_detector_error_model


class TestCodeCapacityRepetition:
    """d=3 repetition code, one perfect round: fully hand-checkable."""

    @pytest.fixture(scope="class")
    def dem(self):
        code = RepetitionCode(3)
        exp = build_memory_circuit(code, rounds=1, noise=CodeCapacityNoiseModel())
        return build_detector_error_model(exp.circuit)

    def test_mechanism_count(self, dem):
        # Three data qubits; X and Y components share a signature, Z is
        # invisible -> exactly one merged mechanism per data qubit.
        assert len(dem.mechanisms) == 3

    def test_signatures(self, dem):
        # Detector layout: layer 0 = checks (0, 1); layer 1 (closure) =
        # detectors (2, 3).  A data X flips the adjacent round-0 checks;
        # in the closure layer the ancilla flip and the final data-
        # measurement flip *cancel*, so closure detectors stay quiet:
        #   qubit 0 -> {check 0},  qubit 1 -> {check 0, check 1},
        #   qubit 2 -> {check 1}.
        signatures = {m.detectors for m in dem.mechanisms}
        assert signatures == {(0,), (0, 1), (1,)}

    def test_merge_counts_x_plus_y(self, dem):
        # Each merged mechanism aggregates the X and Y components (2 faults
        # of the DATA_DEPOLARIZE class).
        idx = class_index(NoiseClass.DATA_DEPOLARIZE)
        for m in dem.mechanisms:
            assert m.class_counts[idx] == 2

    def test_probability_formula(self, dem):
        p = 0.03
        component = p / 3
        expected = 2 * component * (1 - component)  # XOR of two components
        for m in dem.mechanisms:
            assert m.probability(p) == pytest.approx(expected, rel=1e-12)

    def test_observable_mechanisms_exist(self, dem):
        # logical_z = qubit 0: X on qubit 0 flips the observable.
        flipping = [m for m in dem.mechanisms if m.observable_mask]
        assert len(flipping) == 1


class TestSurfaceCodeStructure:
    @pytest.mark.parametrize("d", [3, 5])
    def test_all_mechanisms_graphlike(self, d):
        code = RotatedSurfaceCode(d)
        exp = build_memory_circuit(code, rounds=d, noise=CircuitNoiseModel())
        dem = build_detector_error_model(exp.circuit)
        assert dem.max_detectors_per_mechanism() <= 2
        dem.validate()

    def test_no_undetectable_logical(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
        dem = build_detector_error_model(exp.circuit)
        for m in dem.mechanisms:
            if m.observable_mask:
                assert m.detectors, "logical flip without any detector"

    def test_detector_coords_align(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
        dem = build_detector_error_model(exp.circuit)
        assert len(dem.detector_coords) == dem.n_detectors
        assert dem.detector_coords == [d.coord for d in exp.circuit.detectors]

    def test_measurement_flip_mechanism(self):
        """A p=1 forced measurement flip shows up as a 2-detector mechanism."""
        circuit = Circuit(n_qubits=1)
        circuit.append(OpKind.RESET, [0])
        circuit.append(OpKind.MEASURE, [0])
        circuit.append(OpKind.MEASURE_FLIP, [0], NoiseClass.MEASUREMENT_FLIP)
        circuit.append(OpKind.MEASURE, [0])
        circuit.append(OpKind.MEASURE, [0])
        circuit.detectors.append(DetectorSpec((0, 1), (0, 0, 1), "Z"))
        circuit.detectors.append(DetectorSpec((1, 2), (0, 0, 2), "Z"))
        dem = build_detector_error_model(circuit)
        assert len(dem.mechanisms) == 1
        assert dem.mechanisms[0].detectors == (0, 1)


class TestAgainstFrameSimulator:
    """The DEM's per-detector marginals must match Monte-Carlo sampling."""

    def test_marginal_rates_match(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
        dem = build_detector_error_model(exp.circuit)
        p = 0.02
        shots = 30000
        samples = FrameSimulator(exp.circuit, p, rng=17).sample(shots)
        mc_rates = samples.detectors.mean(axis=0)

        # Independent-mechanism prediction: detector fires iff an odd
        # number of incident mechanisms fire.
        predicted = np.zeros(dem.n_detectors)
        for det in range(dem.n_detectors):
            prod = 1.0
            for m in dem.mechanisms:
                if det in m.detectors:
                    prod *= 1 - 2 * m.probability(p)
            predicted[det] = (1 - prod) / 2
        assert np.abs(mc_rates - predicted).max() < 0.01
