"""Tests for the Pauli-frame Monte-Carlo simulator."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit, DetectorSpec, ObservableSpec
from repro.circuits.ops import NoiseClass, OpKind
from repro.circuits import build_memory_circuit
from repro.codes import RotatedSurfaceCode
from repro.noise import CircuitNoiseModel
from repro.sim import FrameSimulator


def forced_error_circuit(error_kind: OpKind, target: int) -> Circuit:
    """Two qubits measured twice; a p=1 noise op fires between rounds."""
    circuit = Circuit(n_qubits=2)
    circuit.append(OpKind.RESET, [0, 1])
    circuit.append(OpKind.MEASURE, [0, 1])  # records 0, 1
    noise_class = (
        NoiseClass.MEASUREMENT_FLIP
        if error_kind is OpKind.MEASURE_FLIP
        else NoiseClass.RESET_FLIP
    )
    circuit.append(error_kind, [target], noise_class)
    circuit.append(OpKind.MEASURE, [0, 1])  # records 2, 3
    for q in range(2):
        circuit.detectors.append(
            DetectorSpec(measurements=(q, q + 2), coord=(0, q, 1), basis="Z")
        )
    circuit.observables.append(ObservableSpec(measurements=(2,)))
    return circuit


class TestDeterministicErrors:
    def test_forced_x_error_flips_detector(self):
        circuit = forced_error_circuit(OpKind.X_ERROR, target=0)
        samples = FrameSimulator(circuit, p=1.0, rng=3).sample(32)
        assert samples.detectors[:, 0].all()
        assert not samples.detectors[:, 1].any()
        assert samples.observables[:, 0].all()

    def test_forced_measure_flip(self):
        circuit = forced_error_circuit(OpKind.MEASURE_FLIP, target=1)
        samples = FrameSimulator(circuit, p=1.0, rng=3).sample(32)
        assert samples.detectors[:, 1].all()
        assert not samples.detectors[:, 0].any()
        # Measurement flips are classical: the frame is untouched.
        assert not samples.observables[:, 0].any()

    def test_h_conjugation_moves_x_to_z(self):
        # X before H becomes Z after H: a Z-basis measurement is unaffected
        # after a second H undoes the rotation... but between the two H's
        # the frame is Z, so a CX control picks up nothing.
        circuit = Circuit(n_qubits=2)
        circuit.append(OpKind.RESET, [0, 1])
        circuit.append(OpKind.X_ERROR, [0], NoiseClass.RESET_FLIP)
        circuit.append(OpKind.H, [0])
        circuit.append(OpKind.CX, [0, 1])  # Z on control does not propagate
        circuit.append(OpKind.H, [0])
        circuit.append(OpKind.MEASURE, [0, 1])
        circuit.detectors.append(
            DetectorSpec(measurements=(0,), coord=(0, 0, 0), basis="Z")
        )
        circuit.detectors.append(
            DetectorSpec(measurements=(1,), coord=(0, 1, 0), basis="Z")
        )
        samples = FrameSimulator(circuit, p=1.0, rng=3).sample(16)
        assert samples.detectors[:, 0].all()  # X restored on qubit 0
        assert not samples.detectors[:, 1].any()  # nothing reached qubit 1

    def test_cx_propagates_x_to_target(self):
        circuit = Circuit(n_qubits=2)
        circuit.append(OpKind.RESET, [0, 1])
        circuit.append(OpKind.X_ERROR, [0], NoiseClass.RESET_FLIP)
        circuit.append(OpKind.CX, [0, 1])
        circuit.append(OpKind.MEASURE, [0, 1])
        circuit.detectors.append(
            DetectorSpec(measurements=(1,), coord=(0, 1, 0), basis="Z")
        )
        samples = FrameSimulator(circuit, p=1.0, rng=3).sample(8)
        assert samples.detectors[:, 0].all()


class TestStatistics:
    def test_zero_rate_is_quiet(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
        samples = FrameSimulator(exp.circuit, p=0.0, rng=5).sample(50)
        assert not samples.detectors.any()

    def test_detector_rate_scales_with_p(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
        low = FrameSimulator(exp.circuit, p=1e-3, rng=5).sample(2000)
        high = FrameSimulator(exp.circuit, p=1e-2, rng=5).sample(2000)
        assert high.detectors.mean() > 3 * low.detectors.mean()

    def test_shot_validation(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
        with pytest.raises(ValueError):
            FrameSimulator(exp.circuit, p=0.1).sample(0)

    def test_p_validation(self):
        code = RotatedSurfaceCode(3)
        exp = build_memory_circuit(code, rounds=3, noise=CircuitNoiseModel())
        with pytest.raises(ValueError):
            FrameSimulator(exp.circuit, p=1.5)
