"""Structural tests for the rotated surface code lattice."""

import pytest

from repro.codes import RotatedSurfaceCode
from repro.codes.base import data_adjacency


@pytest.mark.parametrize("d", [3, 5, 7, 9])
class TestCounts:
    def test_qubit_counts(self, d):
        code = RotatedSurfaceCode(d)
        assert code.n_data == d * d
        assert code.n_ancilla == d * d - 1
        assert code.n_qubits == 2 * d * d - 1

    def test_stabilizer_split(self, d):
        code = RotatedSurfaceCode(d)
        expected = code.expected_stabilizer_count()
        assert len(code.z_plaquettes) == expected
        assert len(code.x_plaquettes) == expected

    def test_plaquette_weights(self, d):
        code = RotatedSurfaceCode(d)
        for plq in code.z_plaquettes + code.x_plaquettes:
            assert plq.weight in (2, 4)
        n_weight2_z = sum(1 for p in code.z_plaquettes if p.weight == 2)
        n_weight2_x = sum(1 for p in code.x_plaquettes if p.weight == 2)
        # (d - 1) / 2 half-plaquettes on each of the two relevant sides.
        assert n_weight2_z == d - 1
        assert n_weight2_x == d - 1

    def test_weight2_plaquette_sides(self, d):
        code = RotatedSurfaceCode(d)
        for plq in code.z_plaquettes:
            if plq.weight == 2:
                assert plq.coord[1] in (0, d)
        for plq in code.x_plaquettes:
            if plq.weight == 2:
                assert plq.coord[0] in (0, d)

    def test_every_data_qubit_covered(self, d):
        code = RotatedSurfaceCode(d)
        for basis in ("Z", "X"):
            adjacency = data_adjacency(code, basis)
            assert set(adjacency) == set(range(code.n_data))
            for q, plaquettes in adjacency.items():
                assert 1 <= len(plaquettes) <= 2

    def test_logical_operators(self, d):
        code = RotatedSurfaceCode(d)
        assert len(code.logical_z) == d
        assert len(code.logical_x) == d
        # Anticommutation: exactly one shared qubit (the corner).
        assert len(set(code.logical_z) & set(code.logical_x)) == 1

    def test_schedule_no_conflicts(self, d):
        code = RotatedSurfaceCode(d)
        for layer in range(4):
            used = set()
            for plq in code.z_plaquettes + code.x_plaquettes:
                q = plq.schedule[layer]
                if q is not None:
                    assert q not in used
                    used.add(q)

    def test_ancilla_indices_unique(self, d):
        code = RotatedSurfaceCode(d)
        ancillas = [p.ancilla for p in code.z_plaquettes + code.x_plaquettes]
        assert len(set(ancillas)) == len(ancillas)
        assert min(ancillas) == code.n_data
        assert max(ancillas) == code.n_qubits - 1


class TestGeometry:
    def test_interior_plaquette_has_neighbors(self):
        code = RotatedSurfaceCode(5)
        interior = [p for p in code.z_plaquettes if p.weight == 4]
        for plq in interior:
            neighbors = code.plaquette_neighbors(plq)
            assert 1 <= len(neighbors) <= 4
            for other in neighbors:
                assert other.basis == plq.basis

    def test_d3_z_plaquette_coords(self):
        code = RotatedSurfaceCode(3)
        coords = sorted(p.coord for p in code.z_plaquettes)
        assert coords == [(1, 1), (1, 3), (2, 0), (2, 2)]

    def test_d3_x_plaquette_coords(self):
        code = RotatedSurfaceCode(3)
        coords = sorted(p.coord for p in code.x_plaquettes)
        assert coords == [(0, 1), (1, 2), (2, 1), (3, 2)]

    def test_data_index_roundtrip(self):
        code = RotatedSurfaceCode(5)
        for q, coord in code.data_coords.items():
            assert code.data_index(coord) == q


class TestValidation:
    def test_even_distance_rejected(self):
        with pytest.raises(ValueError):
            RotatedSurfaceCode(4)

    def test_nonpositive_distance_rejected(self):
        with pytest.raises(ValueError):
            RotatedSurfaceCode(-3)

    def test_validate_passes_for_built_codes(self):
        for d in (3, 5, 7):
            RotatedSurfaceCode(d).validate()
