"""Tests for the repetition-code test substrate."""

import pytest

from repro.codes import RepetitionCode


class TestRepetitionCode:
    @pytest.mark.parametrize("d", [3, 5, 9])
    def test_counts(self, d):
        code = RepetitionCode(d)
        assert code.n_data == d
        assert len(code.z_plaquettes) == d - 1
        assert not code.x_plaquettes

    def test_check_supports_are_adjacent_pairs(self):
        code = RepetitionCode(5)
        for plq in code.z_plaquettes:
            assert plq.data_qubits == code.check_support(plq.index)
            left, right = plq.data_qubits
            assert right == left + 1

    def test_logical_operators(self):
        code = RepetitionCode(7)
        assert code.logical_z == (0,)
        assert code.logical_x == tuple(range(7))

    def test_schedule_two_layers(self):
        code = RepetitionCode(5)
        for plq in code.z_plaquettes:
            assert plq.schedule[2] is None and plq.schedule[3] is None

    def test_even_distance_rejected(self):
        with pytest.raises(ValueError):
            RepetitionCode(4)
