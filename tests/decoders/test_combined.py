"""Tests for decoder composition (pipelines and the || combinator)."""

import pytest

from repro.core import PromatchPredecoder
from repro.decoders import (
    AstreaDecoder,
    AstreaGDecoder,
    MWPMDecoder,
    ParallelDecoder,
    PredecodedDecoder,
    SmithPredecoder,
)
from repro.decoders.base import DecodeResult
from repro.decoders.combined import combine_parallel_results
from repro.hardware.latency import PARALLEL_COMPARE_CYCLES


class TestPredecodedPipeline:
    def test_low_hw_bypasses_predecoder(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        pipeline = PredecodedDecoder(
            graph, PromatchPredecoder(graph), AstreaDecoder(graph)
        )
        astrea = AstreaDecoder(graph)
        for events in d5_syndromes.events[:50]:
            if len(events) > 10:
                continue
            combined = pipeline.decode(events)
            direct = astrea.decode(events)
            assert combined.weight == pytest.approx(direct.weight, rel=1e-9)

    def test_high_hw_engages_predecoder(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        pipeline = PredecodedDecoder(
            graph, PromatchPredecoder(graph), AstreaDecoder(graph)
        )
        high = [e for e in d5_syndromes.events if len(e) > 10]
        assert high, "fixture must contain high-HW syndromes"
        for events in high[:20]:
            result = pipeline.decode(events)
            assert result.success
            matched = {u for p in result.pairs for u in p} | set(result.boundary)
            assert matched == set(events)

    def test_smith_pipeline_can_fail_on_coverage(self, d5_stack):
        """Craft a syndrome of >10 mutually non-adjacent events: Smith has
        nothing to match and Astrea refuses the remainder."""
        _exp, _dem, graph = d5_stack
        pipeline = PredecodedDecoder(
            graph, SmithPredecoder(graph), AstreaDecoder(graph)
        )
        spread = []
        for node in range(graph.n_nodes):
            if all(
                graph.direct_edge_weight(node, other) is None for other in spread
            ):
                spread.append(node)
            if len(spread) == 11:
                break
        assert len(spread) == 11
        result = pipeline.decode(tuple(spread))
        assert not result.success

    def test_name_synthesis(self, d5_stack):
        _exp, _dem, graph = d5_stack
        pipeline = PredecodedDecoder(
            graph, SmithPredecoder(graph), AstreaDecoder(graph)
        )
        assert pipeline.name == "Smith+Astrea"


class TestParallel:
    def test_matches_posthoc_combination(self, d5_stack, d5_syndromes):
        """ParallelDecoder.decode == combining the component results."""
        _exp, _dem, graph = d5_stack
        promatch_astrea = PredecodedDecoder(
            graph, PromatchPredecoder(graph), AstreaDecoder(graph)
        )
        ag = AstreaGDecoder(graph, prune_probability=1e-12)
        parallel = ParallelDecoder(graph, promatch_astrea, ag)
        for events in d5_syndromes.events[:40]:
            direct = parallel.decode(events)
            derived = combine_parallel_results(
                promatch_astrea.decode(events), ag.decode(events)
            )
            assert direct.success == derived.success
            if direct.success:
                assert direct.weight == pytest.approx(derived.weight, rel=1e-9)
                assert direct.observable_mask == derived.observable_mask

    def test_picks_lower_weight(self):
        a = DecodeResult(success=True, observable_mask=1, weight=5.0, cycles=10)
        b = DecodeResult(success=True, observable_mask=0, weight=3.0, cycles=20)
        combined = combine_parallel_results(a, b)
        assert combined.observable_mask == 0
        assert combined.cycles == 20 + PARALLEL_COMPARE_CYCLES

    def test_failure_falls_back(self):
        a = DecodeResult(success=False, failure_reason="deadline")
        b = DecodeResult(success=True, observable_mask=1, weight=9.0, cycles=5)
        combined = combine_parallel_results(a, b)
        assert combined.success and combined.observable_mask == 1

    def test_both_fail(self):
        a = DecodeResult(success=False, failure_reason="x")
        b = DecodeResult(success=False, failure_reason="y")
        combined = combine_parallel_results(a, b)
        assert not combined.success
        assert "x" in combined.failure_reason and "y" in combined.failure_reason

    def test_parallel_never_worse_than_components(self, d5_stack, d5_syndromes):
        """|| selects by weight, so its solution weight is min of the two."""
        _exp, _dem, graph = d5_stack
        mwpm = MWPMDecoder(graph)
        ag = AstreaGDecoder(graph)
        parallel = ParallelDecoder(graph, mwpm, ag)
        for events in d5_syndromes.events[:30]:
            combined = parallel.decode(events)
            assert combined.weight <= mwpm.decode(events).weight + 1e-9
