"""Batch decoding API: element-wise equivalence with the per-shot loop.

The tentpole contract of the batch pipeline: for every decoder in the
zoo, ``decode_batch`` must return results element-wise identical to the
per-shot ``decode`` loop on the same workload (and likewise for
``predecode_batch``).  DecodeResult/PredecodeResult are dataclasses, so
``==`` compares every field.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_graph  # noqa: E402

from repro.core import PromatchPredecoder
from repro.decoders import (
    AstreaDecoder,
    CliquePredecoder,
    LookupTableDecoder,
    ReferenceUnionFindDecoder,
    SmithPredecoder,
    UnionFindDecoder,
    combine_parallel_batch,
)
from repro.decoders.base import fan_out, unique_syndromes
from repro.eval.experiments import Workbench
from repro.sim.sampler import DemSampler, ExactKSampler, SyndromeBatch


@pytest.fixture(scope="module")
def zoo_bench():
    return Workbench.build(distance=3, p=3e-3, rng=17)


@pytest.fixture(scope="module")
def shared_workload(zoo_bench):
    """Monte-Carlo shots plus a dense exact-k tail (exercises high HW)."""
    batch = DemSampler(zoo_bench.dem, 3e-3, rng=31).sample(300)
    tail = ExactKSampler(zoo_bench.dem, 3e-3, rng=32).sample(5, 60)
    batch.extend(tail)
    return batch


class TestDecodeBatchEquivalence:
    def test_zoo_wide_batch_equals_loop(self, zoo_bench, shared_workload):
        for name, decoder in zoo_bench.decoders.items():
            fast = decoder.decode_batch(shared_workload)
            reference = decoder.decode_batch_reference(shared_workload)
            assert len(fast) == shared_workload.shots
            for shot, (a, b) in enumerate(zip(fast, reference)):
                assert a == b, f"{name} diverges at shot {shot}"

    def test_batch_accepts_plain_event_lists(self, zoo_bench, shared_workload):
        decoder = zoo_bench.decoders["MWPM"]
        from_batch = decoder.decode_batch(shared_workload)
        from_list = decoder.decode_batch(list(shared_workload.events))
        assert from_batch == from_list

    def test_lookup_batch_equals_loop(self, d3_stack):
        _exp, dem, graph = d3_stack
        lut = LookupTableDecoder(graph, max_detectors=graph.n_nodes)
        batch = DemSampler(dem, 3e-3, rng=5).sample(200)
        assert lut.decode_batch(batch) == lut.decode_batch_reference(batch)

    def test_parallel_batch_combinator_matches_elementwise(
        self, zoo_bench, shared_workload
    ):
        pa = zoo_bench.decoders["Promatch+Astrea"]
        ag = zoo_bench.decoders["Astrea-G"]
        combined = combine_parallel_batch(
            pa.decode_batch(shared_workload), ag.decode_batch(shared_workload)
        )
        direct = zoo_bench.decoders["Promatch || AG"].decode_batch(
            shared_workload
        )
        assert combined == direct

    def test_parallel_batch_length_mismatch_raises(self, zoo_bench):
        results = zoo_bench.decoders["MWPM"].decode_batch([(), ()])
        with pytest.raises(ValueError):
            combine_parallel_batch(results, results[:1])


def _boundary_heavy_graph():
    """Every node has a cheap boundary edge; internal edges are pricey.

    Clusters touch the boundary almost immediately, exercising the
    retire-from-batch rule (shots leave the lock-step engine after very
    few stages) and boundary-rooted peeling.
    """
    n = 8
    edges = [(i, i + 1, 6.0) for i in range(n - 1)] + [(0, 4, 7.0), (2, 6, 5.0)]
    boundary = [(i, 0.5 + 0.25 * i) for i in range(n)]
    return make_graph(n, edges, boundary)


def _irregular_weight_graph():
    """Wildly mixed edge weights: growth stages stay far out of phase."""
    return make_graph(
        n_nodes=7,
        edges=[
            (0, 1, 0.3),
            (1, 2, 9.7),
            (2, 3, 1.1),
            (3, 4, 14.2),
            (4, 5, 0.9),
            (5, 6, 4.4),
            (0, 6, 2.3),
            (1, 5, 6.1),
        ],
        boundary=[(0, 11.0), (3, 3.3), (6, 0.7)],
    )


class TestUnionFindAdversarialBatch:
    """The vectorized union-find engine on adversarial weighted graphs.

    Each workload mixes high-HW syndromes, repeated syndromes (the
    dedup path must still fan out), and empty shots; equality is
    checked against both the per-shot loop and the retained reference
    decoder, over irregular ``weight_resolution`` values that bend the
    integer growth lengths out of shape.
    """

    GRAPH_FACTORIES = {
        "boundary_heavy": _boundary_heavy_graph,
        "irregular_weights": _irregular_weight_graph,
    }

    def _workload(self, graph, rng, shots=80):
        workload = [()]
        for _ in range(shots):
            k = int(rng.integers(0, graph.n_nodes + 1))
            events = tuple(
                sorted(map(int, rng.choice(graph.n_nodes, size=k, replace=False)))
            )
            workload.append(events)
        # Repeats and a full-weight syndrome (every detector fired).
        workload.extend(workload[1:6])
        workload.append(tuple(range(graph.n_nodes)))
        workload.append(())
        return workload

    @pytest.mark.parametrize("graph_name", sorted(GRAPH_FACTORIES))
    @pytest.mark.parametrize("weight_resolution", [1.0, 0.37, 2.5])
    def test_batch_equals_loop_and_reference(self, graph_name, weight_resolution):
        import zlib

        graph = self.GRAPH_FACTORIES[graph_name]()
        # Stable seed (str hash() is salted per process; failures must
        # reproduce): crc32 over the parametrization.
        seed = zlib.crc32(f"{graph_name}:{weight_resolution}".encode())
        rng = np.random.default_rng(seed)
        workload = self._workload(graph, rng)
        fast = UnionFindDecoder(graph, weight_resolution=weight_resolution)
        reference = ReferenceUnionFindDecoder(
            graph, weight_resolution=weight_resolution
        )
        batched = fast.decode_batch(workload)
        assert batched == fast.decode_batch_reference(workload)
        assert batched == reference.decode_batch(workload)
        assert all(r.cycles >= 1 for r in batched)

    def test_disconnected_subgraph_failures_match(self):
        """Events on a node with no edges fail identically in batch."""
        graph = make_graph(4, edges=[(0, 1, 1.0)], boundary=[(0, 1.0)])
        workload = [(3,), (0, 1), (), (3,), (1, 3)]
        fast = UnionFindDecoder(graph)
        batched = fast.decode_batch(workload)
        assert batched == ReferenceUnionFindDecoder(graph).decode_batch(workload)
        assert not batched[0].success and batched[0].cycles >= 1

    def test_high_hw_and_empty_mix_on_real_graph(self, zoo_bench):
        """Shots mixing dense exact-k tails with empty syndromes."""
        dense = zoo_bench.sample_exact_k(9, 30)
        workload = list(dense.events) + [()] * 5 + list(dense.events[:3])
        fast = UnionFindDecoder(zoo_bench.graph)
        reference = ReferenceUnionFindDecoder(zoo_bench.graph)
        assert fast.decode_batch(workload) == reference.decode_batch(workload)


class TestPredecodeBatchEquivalence:
    @pytest.mark.parametrize(
        "factory", [PromatchPredecoder, SmithPredecoder, CliquePredecoder]
    )
    def test_predecoders_batch_equals_loop(
        self, factory, zoo_bench, shared_workload
    ):
        predecoder = factory(zoo_bench.graph)
        fast = predecoder.predecode_batch(shared_workload)
        reference = [
            predecoder.predecode(events) for events in shared_workload.events
        ]
        assert fast == reference

    def test_budget_forwarded(self, zoo_bench, shared_workload):
        predecoder = PromatchPredecoder(zoo_bench.graph)
        fast = predecoder.predecode_batch(shared_workload, budget_cycles=40)
        reference = [
            predecoder.predecode(events, budget_cycles=40)
            for events in shared_workload.events
        ]
        assert fast == reference


class TestUniqueSyndromes:
    def test_dense_and_dict_paths_group_identically(self, shared_workload):
        dense_uniques, dense_inverse = unique_syndromes(shared_workload)
        dict_uniques, dict_inverse = unique_syndromes(
            list(shared_workload.events)
        )
        rebuilt_dense = [dense_uniques[i] for i in dense_inverse]
        rebuilt_dict = [dict_uniques[i] for i in dict_inverse]
        assert rebuilt_dense == rebuilt_dict == [
            tuple(e) for e in shared_workload.events
        ]
        assert sorted(dense_uniques) == sorted(dict_uniques)

    def test_fan_out_preserves_order(self):
        inverse = np.array([2, 0, 1, 0], dtype=np.int64)
        assert fan_out(["a", "b", "c"], inverse) == ["c", "a", "b", "a"]

    def test_empty_batch(self):
        uniques, inverse = unique_syndromes([])
        assert uniques == [] and len(inverse) == 0
        assert fan_out(uniques, inverse) == []
