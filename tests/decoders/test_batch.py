"""Batch decoding API: element-wise equivalence with the per-shot loop.

The tentpole contract of the batch pipeline: for every decoder in the
zoo, ``decode_batch`` must return results element-wise identical to the
per-shot ``decode`` loop on the same workload (and likewise for
``predecode_batch``).  DecodeResult/PredecodeResult are dataclasses, so
``==`` compares every field.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.core import PromatchPredecoder
from repro.decoders import (
    AstreaDecoder,
    CliquePredecoder,
    LookupTableDecoder,
    SmithPredecoder,
    combine_parallel_batch,
)
from repro.decoders.base import fan_out, unique_syndromes
from repro.eval.experiments import Workbench
from repro.sim.sampler import DemSampler, ExactKSampler, SyndromeBatch


@pytest.fixture(scope="module")
def zoo_bench():
    return Workbench.build(distance=3, p=3e-3, rng=17)


@pytest.fixture(scope="module")
def shared_workload(zoo_bench):
    """Monte-Carlo shots plus a dense exact-k tail (exercises high HW)."""
    batch = DemSampler(zoo_bench.dem, 3e-3, rng=31).sample(300)
    tail = ExactKSampler(zoo_bench.dem, 3e-3, rng=32).sample(5, 60)
    batch.extend(tail)
    return batch


class TestDecodeBatchEquivalence:
    def test_zoo_wide_batch_equals_loop(self, zoo_bench, shared_workload):
        for name, decoder in zoo_bench.decoders.items():
            fast = decoder.decode_batch(shared_workload)
            reference = decoder.decode_batch_reference(shared_workload)
            assert len(fast) == shared_workload.shots
            for shot, (a, b) in enumerate(zip(fast, reference)):
                assert a == b, f"{name} diverges at shot {shot}"

    def test_batch_accepts_plain_event_lists(self, zoo_bench, shared_workload):
        decoder = zoo_bench.decoders["MWPM"]
        from_batch = decoder.decode_batch(shared_workload)
        from_list = decoder.decode_batch(list(shared_workload.events))
        assert from_batch == from_list

    def test_lookup_batch_equals_loop(self, d3_stack):
        _exp, dem, graph = d3_stack
        lut = LookupTableDecoder(graph, max_detectors=graph.n_nodes)
        batch = DemSampler(dem, 3e-3, rng=5).sample(200)
        assert lut.decode_batch(batch) == lut.decode_batch_reference(batch)

    def test_parallel_batch_combinator_matches_elementwise(
        self, zoo_bench, shared_workload
    ):
        pa = zoo_bench.decoders["Promatch+Astrea"]
        ag = zoo_bench.decoders["Astrea-G"]
        combined = combine_parallel_batch(
            pa.decode_batch(shared_workload), ag.decode_batch(shared_workload)
        )
        direct = zoo_bench.decoders["Promatch || AG"].decode_batch(
            shared_workload
        )
        assert combined == direct

    def test_parallel_batch_length_mismatch_raises(self, zoo_bench):
        results = zoo_bench.decoders["MWPM"].decode_batch([(), ()])
        with pytest.raises(ValueError):
            combine_parallel_batch(results, results[:1])


class TestPredecodeBatchEquivalence:
    @pytest.mark.parametrize(
        "factory", [PromatchPredecoder, SmithPredecoder, CliquePredecoder]
    )
    def test_predecoders_batch_equals_loop(
        self, factory, zoo_bench, shared_workload
    ):
        predecoder = factory(zoo_bench.graph)
        fast = predecoder.predecode_batch(shared_workload)
        reference = [
            predecoder.predecode(events) for events in shared_workload.events
        ]
        assert fast == reference

    def test_budget_forwarded(self, zoo_bench, shared_workload):
        predecoder = PromatchPredecoder(zoo_bench.graph)
        fast = predecoder.predecode_batch(shared_workload, budget_cycles=40)
        reference = [
            predecoder.predecode(events, budget_cycles=40)
            for events in shared_workload.events
        ]
        assert fast == reference


class TestUniqueSyndromes:
    def test_dense_and_dict_paths_group_identically(self, shared_workload):
        dense_uniques, dense_inverse = unique_syndromes(shared_workload)
        dict_uniques, dict_inverse = unique_syndromes(
            list(shared_workload.events)
        )
        rebuilt_dense = [dense_uniques[i] for i in dense_inverse]
        rebuilt_dict = [dict_uniques[i] for i in dict_inverse]
        assert rebuilt_dense == rebuilt_dict == [
            tuple(e) for e in shared_workload.events
        ]
        assert sorted(dense_uniques) == sorted(dict_uniques)

    def test_fan_out_preserves_order(self):
        inverse = np.array([2, 0, 1, 0], dtype=np.int64)
        assert fan_out(["a", "b", "c"], inverse) == ["c", "a", "b", "a"]

    def test_empty_batch(self):
        uniques, inverse = unique_syndromes([])
        assert uniques == [] and len(inverse) == 0
        assert fan_out(uniques, inverse) == []
