"""Tests for the Clique NSM predecoder baseline."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_graph, make_path_graph  # noqa: E402

from repro.decoders import CliquePredecoder
from repro.graph.decoding_graph import BOUNDARY_SENTINEL


class TestCliqueAllOrNothing:
    def test_full_local_decode_of_isolated_pairs(self):
        graph = make_path_graph(8)
        clique = CliquePredecoder(graph)
        report = clique.predecode((0, 1, 4, 5))  # two isolated pairs
        assert report.remaining == ()
        assert sorted(report.pairs) == [(0, 1), (4, 5)]

    def test_boundary_singleton_handled(self):
        graph = make_path_graph(8)
        clique = CliquePredecoder(graph)
        # 0 is boundary-adjacent and isolated; 3, 4 are an isolated pair.
        report = clique.predecode((0, 3, 4))
        assert report.remaining == ()
        assert (0, BOUNDARY_SENTINEL) in report.pairs

    def test_nontrivial_pattern_forwards_everything(self):
        graph = make_path_graph(8)
        clique = CliquePredecoder(graph)
        # A 3-chain is beyond Clique's local rules.
        report = clique.predecode((2, 3, 4))
        assert report.remaining == (2, 3, 4)
        assert report.pairs == []

    def test_interior_singleton_blocks_local_decode(self):
        graph = make_graph(
            n_nodes=4,
            edges=[(0, 1, 1.0)],
            boundary=[(0, 1.0), (1, 1.0)],  # nodes 2, 3 interior, no boundary
        )
        clique = CliquePredecoder(graph)
        report = clique.predecode((0, 1, 2))
        # Node 2 is an interior singleton: no local rule applies.
        assert report.remaining == (0, 1, 2)

    def test_syndrome_never_modified_partially(self, d5_stack, d5_syndromes):
        """NSM contract: either everything is decoded or nothing is."""
        _exp, _dem, graph = d5_stack
        clique = CliquePredecoder(graph)
        for events in d5_syndromes.events[:100]:
            report = clique.predecode(events)
            assert report.remaining == () or (
                report.remaining == tuple(events) and not report.pairs
            )
