"""Batched predecoded pipelines: ``decode_batch`` == per-shot reference.

PR 5's pipeline contract: ``PredecodedDecoder.decode_uniques`` (predecode
the distinct syndromes, second-level dedup of the residuals, main decode
through the decoder's own batch fast path) must be element-wise identical
to the per-shot ``decode`` loop for every predecoder + main combination
in the paper's tables, including abort and capability-failure shots, and
the ``||`` combinator on top.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_path_graph  # noqa: E402

from repro.core import PromatchPredecoder
from repro.decoders import (
    AstreaDecoder,
    AstreaGDecoder,
    CliquePredecoder,
    MWPMDecoder,
    ParallelDecoder,
    PredecodedDecoder,
    SmithPredecoder,
    UnionFindDecoder,
)
from repro.sim import DemSampler


PREDECODER_FACTORIES = {
    "Promatch": PromatchPredecoder,
    "Smith": SmithPredecoder,
    "Clique": CliquePredecoder,
}


def _mixed_workload(dem, p, seed, shots=120):
    """Monte-Carlo shots with repeats so the dedup layers have work."""
    batch = DemSampler(dem, p, rng=seed).sample(shots)
    events = list(batch.events)
    return events + events[: shots // 4]


class TestPredecodedBatchGrid:
    """Randomized (distance, p) grid across the predecoder zoo.

    A reduced Astrea capability (``max_hamming_weight=4``) makes the
    predecoder engage on ordinary d=3/d=5 syndromes, covering the
    low-HW bypass, the predecoded path, capability failures of the main
    decoder, and (with tight budgets) predecoder aborts.
    """

    @pytest.mark.parametrize("name", sorted(PREDECODER_FACTORIES))
    def test_batch_equals_per_shot_reference(self, name, d3_stack, d5_stack):
        factory = PREDECODER_FACTORIES[name]
        for stack, p, seed in (
            (d3_stack, 6e-3, 21),
            (d3_stack, 1.2e-2, 22),
            (d5_stack, 6e-3, 23),
        ):
            _exp, dem, graph = stack
            pipeline = PredecodedDecoder(
                graph, factory(graph), AstreaDecoder(graph, max_hamming_weight=4)
            )
            workload = _mixed_workload(dem, p, seed)
            fast = pipeline.decode_batch(workload)
            reference = pipeline.decode_batch_reference(workload)
            assert fast == reference

    def test_tight_budget_aborts_match(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        pipeline = PredecodedDecoder(
            graph,
            PromatchPredecoder(graph, main_capability=4),
            AstreaDecoder(graph, max_hamming_weight=4),
            budget_cycles=12,
        )
        workload = list(d5_syndromes.events[:80])
        fast = pipeline.decode_batch(workload)
        reference = pipeline.decode_batch_reference(workload)
        assert fast == reference
        assert any(not result.success for result in fast), (
            "budget must actually produce failures for this test to bite"
        )

    def test_parallel_promatch_ag_batch(self, d3_stack):
        """The ``Promatch || AG`` configuration over the batched pipeline."""
        _exp, dem, graph = d3_stack
        promatch_astrea = PredecodedDecoder(
            graph,
            PromatchPredecoder(graph),
            AstreaDecoder(graph, max_hamming_weight=4),
        )
        parallel = ParallelDecoder(
            graph,
            promatch_astrea,
            AstreaGDecoder(graph, prune_probability=1e-10),
            name="Promatch || AG",
        )
        workload = _mixed_workload(dem, 8e-3, 31, shots=100)
        assert parallel.decode_batch(workload) == (
            parallel.decode_batch_reference(workload)
        )

    def test_budget_blind_main_routes_through_decode_batch(self, d3_stack):
        """A non-real-time main decoder (no ``budget_cycles`` parameter)
        takes the residual-dedup + ``decode_batch`` route."""
        _exp, dem, graph = d3_stack
        for main in (MWPMDecoder(graph), UnionFindDecoder(graph)):
            pipeline = PredecodedDecoder(
                graph, PromatchPredecoder(graph, main_capability=4), main
            )
            assert not pipeline._main_accepts_budget()
            workload = _mixed_workload(dem, 8e-3, 41, shots=80)
            assert pipeline.decode_batch(workload) == (
                pipeline.decode_batch_reference(workload)
            )

    def test_budget_aware_main_detected(self, d3_stack):
        _exp, _dem, graph = d3_stack
        pipeline = PredecodedDecoder(
            graph, PromatchPredecoder(graph), AstreaDecoder(graph)
        )
        assert pipeline._main_accepts_budget()


class TestAstreaBudgetedUniques:
    def test_jobs_share_matching_across_budgets(self, d3_stack):
        _exp, dem, graph = d3_stack
        astrea = AstreaDecoder(graph)
        batch = DemSampler(dem, 8e-3, rng=51).sample(40)
        jobs = []
        for events in batch.events[:20]:
            for budget in (None, 3.0, 50.0, 240.0):
                jobs.append((tuple(events), budget))
        fast = astrea.decode_budgeted_uniques(jobs)
        reference = [
            astrea.decode_budgeted(events, budget) for events, budget in jobs
        ]
        assert fast == reference

    def test_capability_and_budget_failures_preserved(self):
        graph = make_path_graph(14)
        astrea = AstreaDecoder(graph, max_hamming_weight=4)
        jobs = [
            (tuple(range(6)), None),      # HW over capability
            ((0, 1), 0.5),                # budget too small
            ((0, 1), None),               # plain success
            ((0, 1), 0.5),                # repeated failure job
        ]
        results = astrea.decode_budgeted_uniques(jobs)
        assert not results[0].success and "exceeds" in results[0].failure_reason
        assert not results[1].success and "budget" in results[1].failure_reason
        assert results[2].success
        assert results[3] == results[1]


class TestPredecodeResultSharingGuard:
    def test_mutating_one_shot_cannot_corrupt_siblings(self, d5_stack):
        """Satellite regression: ``predecode_batch`` used to fan one
        ``PredecodeResult`` object out to every shot repeating a
        syndrome; mutating its ``pairs`` corrupted the siblings."""
        _exp, _dem, graph = d5_stack
        events = (10, 11, 30, 31)
        workload = [events, events, events]
        for predecoder in (
            PromatchPredecoder(graph, main_capability=0, collect_trace=True),
            SmithPredecoder(graph),
            CliquePredecoder(graph),
        ):
            results = predecoder.predecode_batch(workload)
            assert results[0] == results[1] == results[2]
            baseline_pairs = list(results[1].pairs)
            baseline_trace = list(results[1].trace)
            results[0].pairs.append((999, 998))
            results[0].pair_observables.append(7)
            results[0].trace.append("poison")
            assert results[1].pairs == baseline_pairs == results[2].pairs
            assert results[1].trace == baseline_trace == results[2].trace
            assert results[0] is not results[1]

    def test_copies_still_equal_per_shot_loop(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        predecoder = SmithPredecoder(graph)
        fast = predecoder.predecode_batch(d5_syndromes.events[:50])
        reference = [
            predecoder.predecode(events)
            for events in d5_syndromes.events[:50]
        ]
        assert fast == reference
