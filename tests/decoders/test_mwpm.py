"""Tests for the idealized MWPM decoder."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_graph  # noqa: E402

from repro.decoders import MWPMDecoder
from repro.sim import DemSampler


class TestMWPMOnSyntheticGraphs:
    def test_empty_syndrome(self):
        graph = make_graph(2, [(0, 1, 1.0)], [(0, 1.0), (1, 1.0)])
        result = MWPMDecoder(graph).decode(())
        assert result.success and result.observable_mask == 0

    def test_single_event_goes_to_boundary(self):
        graph = make_graph(
            2, [(0, 1, 1.0)], [(0, 1.0), (1, 1.0)],
            observables={(0, -1): 1},
        )
        result = MWPMDecoder(graph).decode((0,))
        assert result.boundary == [0]
        assert result.observable_mask == 1

    def test_adjacent_pair_matched(self):
        graph = make_graph(
            3, [(0, 1, 1.0), (1, 2, 1.0)], [(0, 5.0), (2, 5.0)],
            observables={(0, 1): 1},
        )
        result = MWPMDecoder(graph).decode((0, 1))
        assert result.pairs == [(0, 1)]
        assert result.observable_mask == 1

    def test_boundary_split_when_cheaper(self):
        graph = make_graph(
            2, [(0, 1, 10.0)], [(0, 1.0), (1, 1.0)],
        )
        result = MWPMDecoder(graph).decode((0, 1))
        # Matching both to boundary costs 2 < 10; MWPM must split --
        # whether reported as two boundary matches or a pair routed
        # through the boundary, the weight is the giveaway.
        assert result.weight == pytest.approx(2.0)


class TestMWPMOnRealGraphs:
    def test_single_fault_always_corrected(self, d3_stack):
        """Any single mechanism's syndrome must decode without logical error."""
        _exp, dem, graph = d3_stack
        decoder = MWPMDecoder(graph)
        for mechanism in dem.mechanisms:
            result = decoder.decode(mechanism.detectors)
            assert result.success
            assert result.observable_mask == mechanism.observable_mask, (
                f"single-fault miscorrection for {mechanism}"
            )

    def test_dp_and_blossom_paths_agree(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        small = MWPMDecoder(graph, dp_limit=12)
        forced_blossom = MWPMDecoder(graph, dp_limit=0)
        for events in d5_syndromes.events[:60]:
            a = small.decode(events)
            b = forced_blossom.decode(events)
            # Equal-weight ties may legitimately pick different matchings;
            # optimality (total weight) is the invariant.
            assert a.weight == pytest.approx(b.weight, rel=1e-9)

    def test_weight_reported(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        decoder = MWPMDecoder(graph)
        for events in d5_syndromes.events[:20]:
            result = decoder.decode(events)
            recomputed = sum(
                graph.distance(u, v) for u, v in result.pairs
            ) + sum(graph.boundary_distance(u) for u in result.boundary)
            assert result.weight == pytest.approx(recomputed, rel=1e-9)
