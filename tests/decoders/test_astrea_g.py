"""Tests for the Astrea-G budgeted search model."""

import pytest

from repro.decoders import AstreaGDecoder, MWPMDecoder


class TestSearchQuality:
    def test_exact_on_sparse_syndromes(self, d5_stack, d5_syndromes):
        """With a generous budget and mild pruning, AG must find the MWPM
        answer on small syndromes (the 'both succeed' regime of 4.2.3)."""
        _exp, _dem, graph = d5_stack
        ag = AstreaGDecoder(graph, prune_probability=1e-12)
        mwpm = MWPMDecoder(graph)
        checked = 0
        for events in d5_syndromes.events:
            if not 0 < len(events) <= 8:
                continue
            a = ag.decode(events)
            m = mwpm.decode(events)
            assert a.success
            assert a.weight <= m.weight + 1e-6 or a.weight == pytest.approx(
                m.weight, rel=1e-6
            )
            checked += 1
            if checked >= 50:
                break
        assert checked > 10

    def test_budget_exhaustion_still_returns(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        starved = AstreaGDecoder(graph, budget_cycles=1, options_per_cycle=2)
        big = max(d5_syndromes.events, key=len)
        result = starved.decode(big)
        assert result.success  # greedy incumbent always exists
        matched = {u for pair in result.pairs for u in pair} | set(result.boundary)
        assert matched == set(big)

    def test_starved_search_is_no_better_than_rich(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        rich = AstreaGDecoder(graph, prune_probability=1e-12)
        starved = AstreaGDecoder(
            graph, prune_probability=1e-12, budget_cycles=1, options_per_cycle=2
        )
        for events in d5_syndromes.events[:40]:
            if not events:
                continue
            assert (
                starved.decode(events).weight >= rich.decode(events).weight - 1e-9
            )

    def test_empty(self, d5_stack):
        _exp, _dem, graph = d5_stack
        assert AstreaGDecoder(graph).decode(()).success

    def test_aggressive_pruning_hurts_dense_patterns(self, d5_stack):
        """Pruning everything forces all-boundary matchings (worst case)."""
        _exp, _dem, graph = d5_stack
        # prune_probability = 1 makes every pair edge inadmissible.
        ag = AstreaGDecoder(graph, prune_probability=0.999999)
        events = (0, 1, 2, 3)
        result = ag.decode(events)
        assert result.success
        assert sorted(result.boundary) == [0, 1, 2, 3]

    def test_cycles_reported_within_budget(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        ag = AstreaGDecoder(graph)
        for events in d5_syndromes.events[:30]:
            result = ag.decode(events)
            assert result.cycles is not None
            assert result.cycles <= ag.budget_cycles
