"""Tests for the union-find (AFS proxy) decoder."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_graph, make_path_graph  # noqa: E402

from repro.decoders import (
    MWPMDecoder,
    ReferenceUnionFindDecoder,
    UnionFindDecoder,
)
from repro.eval.ler import count_failures
from repro.graph import build_decoding_graph
from repro.sim import DemSampler
from repro.sim.sampler import ExactKSampler


def _random_syndromes(graph, count, rng, include_empty=True):
    """Random event tuples over a graph's nodes (adversarial workload)."""
    shots = []
    for _ in range(count):
        k = int(rng.integers(0, graph.n_nodes + 1))
        events = tuple(
            sorted(map(int, rng.choice(graph.n_nodes, size=k, replace=False)))
        )
        shots.append(events)
    if include_empty:
        shots.append(())
    return shots


def _degenerate_graph():
    """A cycle with uniform weights: spanning trees are maximally degenerate."""
    n = 6
    edges = [(i, (i + 1) % n, 1.0) for i in range(n)]
    boundary = [(0, 1.0), (3, 1.0)]
    return make_graph(n, edges, boundary)


class TestUnionFind:
    def test_empty(self, d5_stack):
        _exp, _dem, graph = d5_stack
        assert UnionFindDecoder(graph).decode(()).success

    def test_single_fault_corrected(self, d3_stack):
        _exp, dem, graph = d3_stack
        decoder = UnionFindDecoder(graph)
        for mechanism in dem.mechanisms:
            result = decoder.decode(mechanism.detectors)
            assert result.success
            assert result.observable_mask == mechanism.observable_mask

    def test_adjacent_pair_on_line(self):
        graph = make_path_graph(5)
        result = UnionFindDecoder(graph).decode((1, 2))
        assert result.success

    def test_single_event_reaches_boundary(self):
        graph = make_path_graph(5)
        result = UnionFindDecoder(graph).decode((2,))
        assert result.success

    def test_sampled_syndromes_all_decoded(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        decoder = UnionFindDecoder(graph)
        for events in d5_syndromes.events[:150]:
            assert decoder.decode(events).success

    def test_accuracy_between_nothing_and_mwpm(self, d5_stack, d5_syndromes):
        """UF must beat 'no correction' and lose (or tie) against MWPM --
        the Figure 4 ordering."""
        _exp, _dem, graph = d5_stack
        uf_failures, shots = count_failures(UnionFindDecoder(graph), d5_syndromes)
        mwpm_failures, _ = count_failures(MWPMDecoder(graph), d5_syndromes)
        no_correction_failures = int(
            (d5_syndromes.observables & 1).sum()
        )
        assert mwpm_failures <= uf_failures
        assert uf_failures < max(no_correction_failures, 1) * 2

    def test_invalid_weight_resolution_rejected(self):
        graph = make_path_graph(3)
        with pytest.raises(ValueError):
            UnionFindDecoder(graph, weight_resolution=0.0)


class TestDeterministicPeeling:
    """Regression: peeling must not depend on set/dict iteration order.

    The historic peel sorted component roots by ``(n != boundary,)``
    only (a stable sort over set-iteration order) and walked neighbors
    in dict-insertion order, so corrections for degenerate spanning
    trees depended on hash-table internals.  Components are now rooted
    by ``(n != boundary, n)`` and adjacency lists are built in ascending
    edge-index order, so every fresh decoder instance peels the same
    way.
    """

    def test_identical_corrections_across_fresh_instances(self):
        graph = _degenerate_graph()
        rng = np.random.default_rng(3)
        syndromes = _random_syndromes(graph, 60, rng)
        baseline = None
        for _ in range(3):
            decoder = UnionFindDecoder(graph)  # fresh instance each pass
            peels = []
            for events in syndromes:
                grown, _stages = decoder._grow_clusters(events)
                peels.append(decoder._peel(events, grown))
            if baseline is None:
                baseline = peels
            else:
                assert peels == baseline

    def test_full_decode_identical_across_fresh_instances(self):
        graph = _degenerate_graph()
        rng = np.random.default_rng(5)
        syndromes = _random_syndromes(graph, 40, rng)
        first = [UnionFindDecoder(graph).decode(e) for e in syndromes]
        second = [UnionFindDecoder(graph).decode(e) for e in syndromes]
        reference = [ReferenceUnionFindDecoder(graph).decode(e) for e in syndromes]
        assert first == second == reference

    def test_component_roots_are_canonical(self):
        """Equal-weight two-event syndrome on a cycle: both decodes of
        the same degenerate instance must commit the same correction."""
        graph = _degenerate_graph()
        a = UnionFindDecoder(graph).decode((1, 4))
        b = UnionFindDecoder(graph).decode((1, 4))
        assert a == b and a.success


class TestCycleAccounting:
    """``cycles >= 1`` must hold for every decode, not just non-degenerate
    ones: the pipeline always latches a result, so zero-latency decodes
    cannot exist (the empty syndrome already reported 1)."""

    def test_empty_syndrome_floor(self):
        graph = make_path_graph(4)
        assert UnionFindDecoder(graph).decode(()).cycles == 1

    def test_isolated_event_node_floor(self):
        # Node 2 has no incident edges: growth cannot make progress and
        # peeling fails, but the decode still consumed pipeline cycles.
        graph = make_graph(3, edges=[(0, 1, 1.0)], boundary=[(0, 1.0)])
        for decoder in (UnionFindDecoder(graph), ReferenceUnionFindDecoder(graph)):
            result = decoder.decode((2,))
            assert not result.success
            assert result.cycles >= 1
            [batched] = decoder.decode_batch([(2,)])
            assert batched == result

    def test_edgeless_graph_floor(self):
        graph = make_graph(2, edges=[], boundary=[])
        result = UnionFindDecoder(graph).decode((0,))
        assert not result.success
        assert result.cycles >= 1

    def test_all_sampled_decodes_respect_floor(self, d3_stack):
        _exp, dem, graph = d3_stack
        decoder = UnionFindDecoder(graph)
        batch = DemSampler(dem, 5e-3, rng=9).sample(300)
        assert all(r.cycles >= 1 for r in decoder.decode_batch(batch))


class TestVectorizedGrowthEngine:
    """The lock-step batch engine vs the retained reference decoder.

    Bar from the growth-engine rewrite: element-wise identical
    ``DecodeResult``s (success, observable_mask, weight, cycles) across
    a randomized (distance, p) grid, including high-HW tails and p well
    above the paper's operating point where dedup stops paying.
    """

    @pytest.mark.parametrize("p", [1e-3, 4e-3, 8e-3])
    def test_randomized_grid_d3(self, d3_stack, p):
        _exp, dem, _graph = d3_stack
        graph = build_decoding_graph(dem, p)
        batch = DemSampler(dem, p, rng=int(p * 1e6)).sample(400)
        batch.extend(ExactKSampler(dem, p, rng=2).sample(6, 40))
        fast = UnionFindDecoder(graph)
        reference = ReferenceUnionFindDecoder(graph)
        assert fast.decode_batch(batch) == reference.decode_batch(batch)

    @pytest.mark.parametrize("p", [3e-3, 6e-3])
    def test_randomized_grid_d5(self, d5_stack, p):
        _exp, dem, _graph = d5_stack
        graph = build_decoding_graph(dem, p)
        batch = DemSampler(dem, p, rng=int(p * 1e6) + 1).sample(250)
        fast = UnionFindDecoder(graph)
        reference = ReferenceUnionFindDecoder(graph)
        assert fast.decode_batch(batch) == reference.decode_batch(batch)

    def test_chunked_growth_matches_single_chunk(self, d3_stack):
        """Forcing many lock-step chunks must not change any result."""
        _exp, dem, graph = d3_stack
        batch = DemSampler(dem, 6e-3, rng=13).sample(300)
        whole = UnionFindDecoder(graph)
        chunked = UnionFindDecoder(graph)
        chunked.GROWTH_CHUNK = 7
        assert chunked.decode_batch(batch) == whole.decode_batch(batch)

    def test_scalar_frontier_equals_reference_engine(self, d3_stack):
        """The frontier scan must visit exactly the reference's border."""
        _exp, dem, graph = d3_stack
        fast = UnionFindDecoder(graph)
        reference = ReferenceUnionFindDecoder(graph)
        rng = np.random.default_rng(17)
        for events in _random_syndromes(graph, 50, rng):
            grown_fast, stages_fast = fast._grow_clusters(events)
            grown_ref, stages_ref = reference._grow_clusters(events)
            assert grown_fast == grown_ref
            assert stages_fast == stages_ref
