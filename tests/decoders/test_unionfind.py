"""Tests for the union-find (AFS proxy) decoder."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_path_graph  # noqa: E402

from repro.decoders import MWPMDecoder, UnionFindDecoder
from repro.eval.ler import count_failures


class TestUnionFind:
    def test_empty(self, d5_stack):
        _exp, _dem, graph = d5_stack
        assert UnionFindDecoder(graph).decode(()).success

    def test_single_fault_corrected(self, d3_stack):
        _exp, dem, graph = d3_stack
        decoder = UnionFindDecoder(graph)
        for mechanism in dem.mechanisms:
            result = decoder.decode(mechanism.detectors)
            assert result.success
            assert result.observable_mask == mechanism.observable_mask

    def test_adjacent_pair_on_line(self):
        graph = make_path_graph(5)
        result = UnionFindDecoder(graph).decode((1, 2))
        assert result.success

    def test_single_event_reaches_boundary(self):
        graph = make_path_graph(5)
        result = UnionFindDecoder(graph).decode((2,))
        assert result.success

    def test_sampled_syndromes_all_decoded(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        decoder = UnionFindDecoder(graph)
        for events in d5_syndromes.events[:150]:
            assert decoder.decode(events).success

    def test_accuracy_between_nothing_and_mwpm(self, d5_stack, d5_syndromes):
        """UF must beat 'no correction' and lose (or tie) against MWPM --
        the Figure 4 ordering."""
        _exp, _dem, graph = d5_stack
        uf_failures, shots = count_failures(UnionFindDecoder(graph), d5_syndromes)
        mwpm_failures, _ = count_failures(MWPMDecoder(graph), d5_syndromes)
        no_correction_failures = int(
            (d5_syndromes.observables & 1).sum()
        )
        assert mwpm_failures <= uf_failures
        assert uf_failures < max(no_correction_failures, 1) * 2
