"""Tests for the LILLIPUT-style lookup-table decoder."""

import pytest

from repro.circuits import build_memory_circuit
from repro.codes import RotatedSurfaceCode
from repro.decoders import LookupTableDecoder, MWPMDecoder
from repro.decoders.lookup import (
    lut_storage_bits,
    memory_experiment_detector_count,
)
from repro.graph import build_decoding_graph
from repro.noise import CodeCapacityNoiseModel
from repro.sim import DemSampler, build_detector_error_model


@pytest.fixture(scope="module")
def code_capacity_d3():
    code = RotatedSurfaceCode(3)
    exp = build_memory_circuit(code, rounds=1, noise=CodeCapacityNoiseModel())
    dem = build_detector_error_model(exp.circuit)
    graph = build_decoding_graph(dem, 0.05)
    return dem, graph


class TestLookupDecoder:
    def test_matches_mwpm_everywhere(self, code_capacity_d3):
        """The LUT is MWPM by construction: verify over every *reachable*
        syndrome (patterns over detectors that actually have incident
        error mechanisms -- the closure layer of the code-capacity graph
        is silent and therefore never addressed)."""
        _dem, graph = code_capacity_d3
        lut = LookupTableDecoder(graph, lazy=False)
        mwpm = MWPMDecoder(graph)
        connected = [
            node
            for node in range(graph.n_nodes)
            if graph.neighbors(node) or graph.boundary_edge(node)
        ]
        for pattern in range(1 << len(connected)):
            events = tuple(
                connected[i]
                for i in range(len(connected))
                if pattern & (1 << i)
            )
            assert (
                lut.decode(events).observable_mask
                == mwpm.decode(events).observable_mask
            )

    def test_lazy_equals_eager(self, code_capacity_d3):
        dem, graph = code_capacity_d3
        lazy = LookupTableDecoder(graph, lazy=True)
        eager = LookupTableDecoder(graph, lazy=False)
        batch = DemSampler(dem, 0.05, rng=3).sample(300)
        for events in batch.events:
            assert (
                lazy.decode(events).observable_mask
                == eager.decode(events).observable_mask
            )

    def test_constant_latency(self, code_capacity_d3):
        _dem, graph = code_capacity_d3
        lut = LookupTableDecoder(graph)
        assert lut.decode(()).cycles == lut.decode((0, 1)).cycles

    def test_refuses_large_graphs(self):
        code = RotatedSurfaceCode(5)
        from repro.noise import CircuitNoiseModel
        from repro.eval.cache import load_or_build_dem

        dem = load_or_build_dem(code, 5, CircuitNoiseModel())
        graph = build_decoding_graph(dem, 1e-3)
        with pytest.raises(ValueError, match="exponential"):
            LookupTableDecoder(graph)

    def test_table_entries(self, code_capacity_d3):
        _dem, graph = code_capacity_d3
        lut = LookupTableDecoder(graph)
        assert lut.table_entries == 1 << graph.n_nodes


class TestStorageScaling:
    def test_exponential_growth(self):
        assert lut_storage_bits(10) == 1024
        assert lut_storage_bits(11) == 2 * lut_storage_bits(10)

    def test_detector_counts(self):
        # (d^2-1)/2 plaquettes x (d+1) layers.
        assert memory_experiment_detector_count(3) == 16
        assert memory_experiment_detector_count(11) == 720
        assert memory_experiment_detector_count(13) == 1176

    def test_lut_wall_versus_promatch_tables(self):
        """Figure 2(c)'s point: the full-distance LUT is astronomically
        larger than Promatch's polynomial tables even at d = 5."""
        n5 = memory_experiment_detector_count(5)
        lut_bits = lut_storage_bits(n5)
        promatch_path_table_bits = n5 * n5 * 2
        assert lut_bits > promatch_path_table_bits * 10**15

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            lut_storage_bits(-1)
