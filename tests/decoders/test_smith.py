"""Tests for the Smith et al. predecoder baseline."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import figure7_graph, make_path_graph  # noqa: E402

from repro.decoders import SmithPredecoder
from repro.graph.subgraph import DecodingSubgraph


class TestSmith:
    def test_high_coverage_no_adjacent_leftovers(self, d5_stack, d5_syndromes):
        """After the sweep, no two adjacent flipped bits remain unmatched."""
        _exp, _dem, graph = d5_stack
        smith = SmithPredecoder(graph)
        for events in d5_syndromes.events[:80]:
            report = smith.predecode(events)
            leftover = DecodingSubgraph(graph, report.remaining)
            assert leftover.n_edges == 0

    def test_matches_are_real_edges(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        smith = SmithPredecoder(graph)
        for events in d5_syndromes.events[:40]:
            report = smith.predecode(events)
            for u, v in report.pairs:
                assert graph.direct_edge_weight(u, v) is not None

    def test_blind_to_singleton_creation(self):
        """On the Figure-7 chain, Smith strands the outer nodes: scanning
        in index order, node 0 grabs node 1 (its only neighbor), then node
        2 grabs node 3 -- by luck correct here; on the reversed-weight
        chain (cheap middle), index order still matches (0,1) first, but a
        chain starting mid-pattern strands ends."""
        graph = make_path_graph(3)  # 0 - 1 - 2
        smith = SmithPredecoder(graph)
        report = smith.predecode((0, 1, 2))
        assert report.pairs == [(0, 1)]
        assert report.remaining == (2,)  # stranded singleton

    def test_pairs_disjoint(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        smith = SmithPredecoder(graph)
        for events in d5_syndromes.events[:40]:
            report = smith.predecode(events)
            used = [u for pair in report.pairs for u in pair]
            assert len(used) == len(set(used))
            assert set(used) | set(report.remaining) == set(events)

    def test_cycles_charged(self, d5_stack):
        _exp, _dem, graph = d5_stack
        report = SmithPredecoder(graph).predecode(())
        assert report.cycles >= 1


class TestSmithAbortAccounting:
    def test_abort_rolls_back_to_empty_matching(self, d5_stack, d5_syndromes):
        """Satellite regression: an aborted sweep used to keep its
        ``pairs``/``pair_observables``/``weight`` while the matched
        nodes were missing from ``remaining`` -- violating the abort
        invariant (an aborted round's commits never reach the main
        decoder).  The rollback must leave an empty matching, the full
        syndrome in ``remaining``, and the cycles clamped to the
        budget."""
        _exp, _dem, graph = d5_stack
        smith = SmithPredecoder(graph)
        busy = [e for e in d5_syndromes.events if len(e) >= 6]
        assert busy
        aborted = 0
        for events in busy[:40]:
            full = smith.predecode(events)
            if full.cycles <= 1:
                continue
            budget = full.cycles - 0.5  # sweep can't fit: must abort
            report = smith.predecode(events, budget_cycles=budget)
            aborted += 1
            assert report.aborted
            assert report.pairs == []
            assert report.pair_observables == []
            assert report.weight == 0.0
            assert report.remaining == tuple(sorted(events))
            assert report.cycles == budget
        assert aborted > 0

    def test_fitting_budget_never_aborts(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        smith = SmithPredecoder(graph)
        for events in d5_syndromes.events[:40]:
            full = smith.predecode(events)
            report = smith.predecode(events, budget_cycles=full.cycles)
            assert not report.aborted
            assert report == full

    def test_abort_invariant_pairs_remaining_disjoint(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        smith = SmithPredecoder(graph)
        for events in d5_syndromes.events[:40]:
            for budget in (0.5, 1, 3, 10):
                report = smith.predecode(events, budget_cycles=budget)
                matched = {u for pair in report.pairs for u in pair}
                assert not matched & set(report.remaining)
                if report.aborted:
                    assert set(report.remaining) == set(events)
