"""Tests for the Smith et al. predecoder baseline."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import figure7_graph, make_path_graph  # noqa: E402

from repro.decoders import SmithPredecoder
from repro.graph.subgraph import DecodingSubgraph


class TestSmith:
    def test_high_coverage_no_adjacent_leftovers(self, d5_stack, d5_syndromes):
        """After the sweep, no two adjacent flipped bits remain unmatched."""
        _exp, _dem, graph = d5_stack
        smith = SmithPredecoder(graph)
        for events in d5_syndromes.events[:80]:
            report = smith.predecode(events)
            leftover = DecodingSubgraph(graph, report.remaining)
            assert leftover.n_edges == 0

    def test_matches_are_real_edges(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        smith = SmithPredecoder(graph)
        for events in d5_syndromes.events[:40]:
            report = smith.predecode(events)
            for u, v in report.pairs:
                assert graph.direct_edge_weight(u, v) is not None

    def test_blind_to_singleton_creation(self):
        """On the Figure-7 chain, Smith strands the outer nodes: scanning
        in index order, node 0 grabs node 1 (its only neighbor), then node
        2 grabs node 3 -- by luck correct here; on the reversed-weight
        chain (cheap middle), index order still matches (0,1) first, but a
        chain starting mid-pattern strands ends."""
        graph = make_path_graph(3)  # 0 - 1 - 2
        smith = SmithPredecoder(graph)
        report = smith.predecode((0, 1, 2))
        assert report.pairs == [(0, 1)]
        assert report.remaining == (2,)  # stranded singleton

    def test_pairs_disjoint(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        smith = SmithPredecoder(graph)
        for events in d5_syndromes.events[:40]:
            report = smith.predecode(events)
            used = [u for pair in report.pairs for u in pair]
            assert len(used) == len(set(used))
            assert set(used) | set(report.remaining) == set(events)

    def test_cycles_charged(self, d5_stack):
        _exp, _dem, graph = d5_stack
        report = SmithPredecoder(graph).predecode(())
        assert report.cycles >= 1
