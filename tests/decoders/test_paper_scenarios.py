"""The paper's Section 4.2.3 scenarios as concrete test cases.

Figures 12 and 13 illustrate *when* each side of the parallel
combination wins:

* Figure 12 -- closely-spaced components whose correct matching never
  crosses components: Promatch's local rules succeed; Astrea-G cannot
  prune the inter-component edges and may pair across them.
* Figure 13 -- components with odd event counts that *require*
  cross-component matchings: Promatch's local focus strands someone;
  Astrea-G's wider search finds the right pairing.

These tests build synthetic decoding graphs with exactly those shapes
and pin each decoder's behaviour, plus the combination's rescue of both.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_graph  # noqa: E402

from repro.core import PromatchPredecoder
from repro.decoders import AstreaDecoder, AstreaGDecoder, PredecodedDecoder
from repro.decoders.combined import ParallelDecoder


def figure12_graph():
    """Three tight pairs, mutually close but correctly matched within.

    Nodes (0,1), (2,3), (4,5) are adjacent pairs (weight 2); cross-pair
    shortcuts exist at weight 3 -- close enough that a pruned exhaustive
    search sees them, wrong to take.
    """
    edges = []
    for base in (0, 2, 4):
        edges.append((base, base + 1, 2.0))
    for a in range(6):
        for b in range(a + 1, 6):
            if (a, b) not in [(0, 1), (2, 3), (4, 5)]:
                edges.append((a, b, 3.0))
    boundary = [(i, 40.0) for i in range(6)]
    return make_graph(6, edges, boundary)


def figure13_graph():
    """Two 'components' of odd size: correct matching crosses them.

    Nodes 0, 1, 2 cluster on the left (cheap internal edges); nodes 3, 4
    on the right; node 2 must pair with node 3 across the gap (weight 4)
    -- cheaper than any boundary escape (weight 40).
    """
    edges = [
        (0, 1, 1.0),
        (0, 2, 1.5),
        (1, 2, 1.5),
        (3, 4, 1.0),
        (2, 3, 4.0),
    ]
    boundary = [(i, 40.0) for i in range(5)]
    return make_graph(5, edges, boundary)


class TestFigure12:
    def test_promatch_matches_within_components(self):
        graph = figure12_graph()
        promatch = PromatchPredecoder(graph, main_capability=0)
        report = promatch.predecode((0, 1, 2, 3, 4, 5))
        assert sorted(report.pairs) == [(0, 1), (2, 3), (4, 5)]
        assert report.remaining == ()

    def test_starved_search_may_err_but_parallel_recovers(self):
        graph = figure12_graph()
        promatch_astrea = PredecodedDecoder(
            graph,
            PromatchPredecoder(graph, main_capability=0),
            AstreaDecoder(graph),
            name="PA",
        )
        # A pathologically starved Astrea-G models the paper's "cannot
        # prune the tightly packed components in time".
        starved_ag = AstreaGDecoder(
            graph, prune_probability=1e-12, budget_cycles=1, options_per_cycle=1
        )
        parallel = ParallelDecoder(graph, promatch_astrea, starved_ag)
        events = (0, 1, 2, 3, 4, 5)
        combined = parallel.decode(events)
        optimal_weight = 6.0  # three internal pairs
        assert combined.weight == pytest.approx(optimal_weight)

    def test_rich_search_also_finds_it(self):
        graph = figure12_graph()
        ag = AstreaGDecoder(graph, prune_probability=1e-12)
        result = ag.decode((0, 1, 2, 3, 4, 5))
        assert result.weight == pytest.approx(6.0)


class TestFigure13:
    def test_promatch_alone_struggles(self):
        """Promatch matches locally; the leftover odd nodes cannot pair at
        chain length 1, so it hands an unmatchable remainder onward (or
        pays for a risky long match via Step 3)."""
        graph = figure13_graph()
        promatch = PromatchPredecoder(graph, main_capability=0)
        report = promatch.predecode((0, 1, 2, 3, 4))
        # Whatever route it took, its committed weight is at least the
        # optimal solution's (1.0 + 1.5-ish + ...): the point is it cannot
        # beat the cross-component optimum below.
        optimal = 1.0 + 1.5 + 40.0  # (3,4) + two of the left + boundary...
        # Optimal true matching: (0,1) + (2,3) + (4 boundary)? weight
        # 1.0 + 4.0 + 40.0 = 45 vs (0,1)+(3,4)+2->boundary = 1+1+40 = 42.
        assert report.coverage_pairs <= 2 or report.weight >= 2.5

    def test_astrea_g_finds_cross_component_optimum(self):
        graph = figure13_graph()
        ag = AstreaGDecoder(graph, prune_probability=1e-12)
        result = ag.decode((0, 1, 2, 3, 4))
        # Exhaustive-with-budget search must find the global optimum:
        # (0,1) + (3,4) + boundary(2) = 1 + 1 + 40 = 42.
        assert result.weight == pytest.approx(42.0)

    def test_parallel_combination_takes_ag_solution(self):
        graph = figure13_graph()
        promatch_astrea = PredecodedDecoder(
            graph,
            PromatchPredecoder(graph, main_capability=0),
            AstreaDecoder(graph),
            name="PA",
        )
        ag = AstreaGDecoder(graph, prune_probability=1e-12)
        parallel = ParallelDecoder(graph, promatch_astrea, ag)
        combined = parallel.decode((0, 1, 2, 3, 4))
        assert combined.weight == pytest.approx(42.0)
