"""Tests for the Astrea behavioural model."""

import pytest

from repro.decoders import AstreaDecoder, MWPMDecoder
from repro.hardware.latency import astrea_cycles


class TestCapability:
    def test_refuses_high_hw(self, d5_stack):
        _exp, _dem, graph = d5_stack
        decoder = AstreaDecoder(graph)
        events = tuple(range(11))
        result = decoder.decode(events)
        assert not result.success
        assert "exceeds" in result.failure_reason

    def test_budget_failure(self, d5_stack):
        _exp, _dem, graph = d5_stack
        decoder = AstreaDecoder(graph)
        events = tuple(range(10))
        result = decoder.decode(events, budget_cycles=5)
        assert not result.success
        assert result.cycles == astrea_cycles(10)

    def test_empty_syndrome(self, d5_stack):
        _exp, _dem, graph = d5_stack
        result = AstreaDecoder(graph).decode(())
        assert result.success and result.cycles == astrea_cycles(0)


class TestExactness:
    def test_matches_mwpm_on_low_hw(self, d5_stack, d5_syndromes):
        """Astrea's brute force is exact: same weight as idealized MWPM."""
        _exp, _dem, graph = d5_stack
        astrea = AstreaDecoder(graph)
        mwpm = MWPMDecoder(graph)
        checked = 0
        for events, obs in zip(d5_syndromes.events, d5_syndromes.observables):
            if len(events) > 10:
                continue
            a = astrea.decode(events)
            m = mwpm.decode(events)
            assert a.success
            assert a.weight == pytest.approx(m.weight, rel=1e-9)
            checked += 1
            if checked >= 80:
                break
        assert checked > 20  # the batch must actually exercise this path

    def test_latency_grows_with_hw(self, d5_stack, d5_syndromes):
        _exp, _dem, graph = d5_stack
        astrea = AstreaDecoder(graph)
        by_hw = {}
        for events in d5_syndromes.events:
            if 0 < len(events) <= 10:
                result = astrea.decode(events)
                by_hw[len(events)] = result.cycles
        weights = sorted(by_hw)
        cycles = [by_hw[h] for h in weights]
        assert cycles == sorted(cycles)
