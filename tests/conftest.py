"""Shared fixtures: small pre-built stacks reused across the suite.

Session scope keeps the suite fast: the d=3 and d=5 stacks (code, DEM,
graph) are built once; the on-disk DEM cache makes repeat runs cheap.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# The repo root is importable so tests can reach the in-repo tooling
# (tools.reprolint for the lint suite and the hygiene checks).
_REPO_ROOT = str(Path(__file__).resolve().parents[1])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from repro.codes import RotatedSurfaceCode
from repro.circuits import build_memory_circuit
from repro.eval.cache import load_or_build_dem
from repro.graph import build_decoding_graph
from repro.noise import CircuitNoiseModel, CodeCapacityNoiseModel
from repro.sim import DemSampler


@pytest.fixture(scope="session")
def d3_stack():
    """(experiment, dem, graph) for d=3 circuit noise at p=3e-3."""
    code = RotatedSurfaceCode(3)
    noise = CircuitNoiseModel()
    experiment = build_memory_circuit(code, rounds=3, noise=noise)
    dem = load_or_build_dem(code, 3, noise)
    graph = build_decoding_graph(dem, 3e-3)
    return experiment, dem, graph


@pytest.fixture(scope="session")
def d5_stack():
    """(experiment, dem, graph) for d=5 circuit noise at p=3e-3."""
    code = RotatedSurfaceCode(5)
    noise = CircuitNoiseModel()
    experiment = build_memory_circuit(code, rounds=5, noise=noise)
    dem = load_or_build_dem(code, 5, noise)
    graph = build_decoding_graph(dem, 3e-3)
    return experiment, dem, graph


@pytest.fixture(scope="session")
def d5_code_capacity_stack():
    """(experiment, dem, graph) for d=5, one perfect round (hand-checkable)."""
    code = RotatedSurfaceCode(5)
    noise = CodeCapacityNoiseModel()
    experiment = build_memory_circuit(code, rounds=1, noise=noise)
    dem = load_or_build_dem(code, 1, noise)
    graph = build_decoding_graph(dem, 1e-2)
    return experiment, dem, graph


@pytest.fixture(scope="session")
def d5_syndromes(d5_stack):
    """A reusable batch of sampled d=5 syndromes (dense enough to be busy)."""
    _experiment, dem, _graph = d5_stack
    return DemSampler(dem, 6e-3, rng=20240613).sample(400)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
