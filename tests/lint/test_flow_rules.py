"""Per-rule fixture tests for the RPL1xx flow rules.

Each fixture is a scratch tree seeded with one cross-file violation
that no per-file rule can see -- the effect and the entry point live in
different functions (often different files).  The headline regression
(an acceptance criterion): a ``time.sleep`` hoisted out of an ``async
def`` into a sync helper is invisible to RPL006 but caught by RPL101,
with a witness chain naming every hop.
"""

from __future__ import annotations

from tests.lint.conftest import codes

# -- RPL101: transitive async blocking ---------------------------------


#: The RPL006 gap in one file: the async body contains no blocking
#: call, only a call to a sync helper that sleeps.
HOISTED_SLEEP = {
    "src/repro/serve/pump.py": """
        import time


        def _drain():
            time.sleep(0.1)


        async def pump():
            _drain()
        """
}


def test_rpl101_catches_helper_hoisted_sleep(flow_tree):
    result = flow_tree(HOISTED_SLEEP, select=["RPL101"])
    assert codes(result) == ["RPL101"]
    finding = result.findings[0]
    assert finding.path == "src/repro/serve/pump.py"
    assert "pump" in finding.message and "time.sleep" in finding.message


def test_rpl006_misses_the_same_tree(lint_tree):
    """The regression fixture of the RPL006 fold: same tree, per-file
    rule only -- nothing fires, because the sleep is not lexically
    inside the async body."""
    result = lint_tree(HOISTED_SLEEP, select=["RPL006"])
    assert codes(result) == []


def test_rpl101_chain_crosses_files(flow_tree):
    result = flow_tree(
        {
            "src/repro/serve/helpers.py": """
                import time


                def slow_io(path):
                    time.sleep(1)
                """,
            "src/repro/serve/loop.py": """
                from repro.serve.helpers import slow_io


                def _relay(path):
                    return slow_io(path)


                async def handle(path):
                    _relay(path)
                """,
        },
        select=["RPL101"],
    )
    assert codes(result) == ["RPL101"]
    chain = result.findings[0].chain
    assert chain is not None
    assert [hop.function.rsplit(".", 1)[1] for hop in chain] == [
        "handle",
        "_relay",
        "slow_io",
    ]
    assert chain[-1].note == "calls time.sleep()"
    assert chain[-1].path == "src/repro/serve/helpers.py"


def test_rpl101_executor_handoff_is_not_an_edge(flow_tree):
    """Passing a helper *as a value* to run_in_executor is the
    sanctioned pattern: no by-name call, no edge, no finding."""
    result = flow_tree(
        {
            "src/repro/serve/exec.py": """
                import asyncio
                import time


                async def pump(loop):
                    def helper():
                        time.sleep(1)

                    await loop.run_in_executor(None, helper)
                """
        },
        select=["RPL101"],
    )
    assert codes(result) == []


def test_rpl101_reports_innermost_async_only(flow_tree):
    """A chain through another async def is skipped: the inner
    coroutine gets the finding, closer to the offending call."""
    result = flow_tree(
        {
            "src/repro/serve/nested.py": """
                import time


                def _drain():
                    time.sleep(1)


                async def inner():
                    _drain()


                async def outer():
                    await inner()
                """
        },
        select=["RPL101"],
    )
    assert codes(result) == ["RPL101"]
    assert "inner" in result.findings[0].message


def test_rpl101_direct_block_left_to_rpl006(flow_tree):
    result = flow_tree(
        {
            "src/repro/serve/direct.py": """
                import time


                async def pump():
                    time.sleep(1)
                """
        },
        select=["RPL101"],
    )
    assert codes(result) == []


def test_rpl101_outside_serve_not_flagged(flow_tree):
    result = flow_tree(
        {
            "src/repro/eval/batch.py": """
                import time


                def _drain():
                    time.sleep(0.1)


                async def pump():
                    _drain()
                """
        },
        select=["RPL101"],
    )
    assert codes(result) == []


# -- RPL102: hot-path purity -------------------------------------------


def test_rpl102_env_read_reachable_from_decode_uniques(flow_tree):
    """Acceptance criterion: a decode_uniques override that reads
    os.environ through a helper is flagged with the full chain."""
    result = flow_tree(
        {
            "src/repro/decoders/tuned.py": """
                import os


                def _tuning_knob():
                    return os.environ.get("REPRO_TUNE", "0")


                class TunedDecoder:
                    def decode_uniques(self, uniques):
                        level = _tuning_knob()
                        return [(u, level) for u in uniques]
                """
        },
        select=["RPL102"],
    )
    assert codes(result) == ["RPL102"]
    finding = result.findings[0]
    assert "reads_env" in finding.message
    assert finding.chain[-1].note == "reads os.environ"
    assert [h.function.rsplit(".", 1)[1] for h in finding.chain] == [
        "decode_uniques",
        "_tuning_knob",
    ]


def test_rpl102_clock_read_via_base_class_dispatch(flow_tree):
    """decode_batch on the base class reaches the subclass override
    through self-dispatch over-approximation."""
    result = flow_tree(
        {
            "src/repro/decoders/zoo.py": """
                import time


                class Decoder:
                    def decode_batch(self, batch):
                        return self.decode_uniques(batch)

                    def decode_uniques(self, uniques):
                        raise NotImplementedError


                class TimedDecoder(Decoder):
                    def decode_uniques(self, uniques):
                        start = time.perf_counter()
                        return [(u, start) for u in uniques]
                """
        },
        select=["RPL102"],
    )
    found = {(f.path, "reads_clock" in f.message) for f in result.findings}
    assert codes(result) == ["RPL102", "RPL102"]  # base hook + override
    assert found == {("src/repro/decoders/zoo.py", True)}


def test_rpl102_pure_decoder_is_clean(flow_tree):
    result = flow_tree(
        {
            "src/repro/decoders/pure.py": """
                class PureDecoder:
                    def decode_uniques(self, uniques):
                        return sorted(uniques)
                """
        },
        select=["RPL102"],
    )
    assert codes(result) == []


# -- RPL103: store-lock reachability -----------------------------------


def test_rpl103_unguarded_append_write(flow_tree):
    result = flow_tree(
        {
            "src/repro/eval/rogue.py": """
                def scribble(path, row):
                    with open(path, "a") as handle:
                        handle.write(row)
                """
        },
        select=["RPL103"],
    )
    assert codes(result) == ["RPL103"]
    assert "append-write" in result.findings[0].message


def test_rpl103_lock_in_subtree_is_clean(flow_tree):
    result = flow_tree(
        {
            "src/repro/eval/locked.py": """
                import fcntl


                def _lock(handle):
                    fcntl.flock(handle, fcntl.LOCK_EX)


                def append(path, row):
                    with open(path, "a") as handle:
                        _lock(handle)
                        handle.write(row)
                """
        },
        select=["RPL103"],
    )
    assert codes(result) == []


# -- RPL104: worker-boundary hygiene -----------------------------------


def test_rpl104_payload_mutating_global(flow_tree):
    result = flow_tree(
        {
            "src/repro/eval/jobs.py": """
                _LAST = None


                def _leaky_worker(shared, task):
                    global _LAST
                    _LAST = task
                    return task


                def run(pool, shared, tasks):
                    return pool.map(shared, _leaky_worker, tasks)
                """
        },
        select=["RPL104"],
    )
    assert codes(result) == ["RPL104"]
    finding = result.findings[0]
    assert "_leaky_worker" in finding.message
    assert finding.chain[-1].note == "assigns global _LAST"


def test_rpl104_run_sharded_payload(flow_tree):
    result = flow_tree(
        {
            "src/repro/eval/shards.py": """
                _STATE = {}


                def _stash(value):
                    global _STATE
                    _STATE = value


                def _shard_worker(shared, task):
                    _stash(task)
                    return task


                def run_sharded(shared, worker, tasks):
                    return [worker(shared, t) for t in tasks]


                def launch(shared, tasks):
                    return run_sharded(shared, _shard_worker, tasks)
                """
        },
        select=["RPL104"],
    )
    assert codes(result) == ["RPL104"]


def test_rpl104_clean_worker_not_flagged(flow_tree):
    result = flow_tree(
        {
            "src/repro/eval/okjobs.py": """
                def _pure_worker(shared, task):
                    return task * 2


                def run(pool, shared, tasks):
                    return pool.map(shared, _pure_worker, tasks)
                """
        },
        select=["RPL104"],
    )
    assert codes(result) == []


# -- shared plumbing ---------------------------------------------------


def test_flow_findings_respect_suppressions(flow_tree):
    files = {
        "src/repro/serve/pump.py": """
            import time


            def _drain():
                time.sleep(0.1)


            async def pump():  # reprolint: disable=RPL101 -- fixture
                _drain()
            """
    }
    result = flow_tree(files, select=["RPL101"])
    assert codes(result) == []
    assert result.suppressed == 1


def test_every_flow_finding_carries_a_chain(flow_tree):
    trees = dict(HOISTED_SLEEP)
    trees["src/repro/decoders/tuned.py"] = """
        import os


        def _knob():
            return os.environ.get("X")


        class D:
            def decode_uniques(self, uniques):
                _knob()
                return uniques
        """
    result = flow_tree(trees)
    assert len(result.findings) >= 2
    for finding in result.findings:
        assert finding.chain, finding
        assert all(hop.path and hop.line for hop in finding.chain)
