"""Shared helpers for the repro-lint tests: scratch trees on disk.

Fixture snippets live as *string literals* written into ``tmp_path``
trees, never as checked-in ``.py`` files — a checked-in bad fixture
would (correctly) trip the real full-tree lint run.  The AST engine
does not look inside string literals, so these snippets are invisible
to the suite-wide scan of this very file.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest


@pytest.fixture()
def lint_tree(tmp_path):
    """Materialize ``{relpath: source}`` under tmp_path and lint it."""
    from tools.reprolint.engine import run_lint

    def _lint(files, rules=None, paths=("src", "tests"), select=None):
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source), encoding="utf-8")
        return run_lint(tmp_path, paths=list(paths), rules=rules, select=select)

    _lint.root = tmp_path
    return _lint


@pytest.fixture()
def flow_tree(tmp_path):
    """Materialize ``{relpath: source}`` and run the deep analysis.

    The facts cache is off by default so fixture trees never touch a
    real cache directory; pass ``cache_dir`` to exercise it.
    """
    from tools.reproflow.analysis import run_flow

    def _flow(files, select=None, use_cache=False, cache_dir=None):
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source), encoding="utf-8")
        return run_flow(
            tmp_path, select=select, use_cache=use_cache, cache_dir=cache_dir
        )

    _flow.root = tmp_path
    return _flow


@pytest.fixture()
def race_tree(tmp_path):
    """Materialize ``{relpath: source}`` and run the race analysis.

    Same contract as ``flow_tree``: cache off unless ``cache_dir`` is
    passed.
    """
    from tools.reprorace.analysis import run_race

    def _race(files, select=None, use_cache=False, cache_dir=None):
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source), encoding="utf-8")
        return run_race(
            tmp_path, select=select, use_cache=use_cache, cache_dir=cache_dir
        )

    _race.root = tmp_path
    return _race


def codes(result) -> list:
    return [f.code for f in result.findings]
