"""The --deep CLI contract: merged findings, chains in reports, the
facts cache, the shared baseline, and the standalone reproflow CLI."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.reprolint.__main__ import main as lint_main
from tools.reproflow.__main__ import main as flow_main
from tools.reproflow.analysis import run_flow

REPO = Path(__file__).resolve().parents[2]

DEEP_DIRTY = {
    "src/repro/serve/pump.py": """
        import time


        def _drain():
            time.sleep(0.1)


        async def pump():
            _drain()
        """
}


def _materialize(root, files):
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")


def test_real_tree_is_deep_clean(capsys):
    rc = lint_main(
        ["--root", str(REPO), "--deep", "--no-cache", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0, payload["findings"]
    assert payload["findings"] == []
    assert payload["deep"]["functions"] > 300
    assert payload["deep"]["edges"] > 300


def test_deep_seeded_violation_trips_and_serializes_chain(tmp_path, capsys):
    _materialize(tmp_path, DEEP_DIRTY)
    rc = lint_main(
        [
            "--root", str(tmp_path), "--no-baseline", "--deep",
            "--no-cache", "--format", "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    # The helper's sleep also trips per-file RPL001: both families merge.
    assert payload["counts"] == {"RPL001": 1, "RPL101": 1}
    (finding,) = [f for f in payload["findings"] if f["code"] == "RPL101"]
    assert set(finding) == {"code", "path", "line", "col", "message", "chain"}
    assert [hop["function"].rsplit(".", 1)[1] for hop in finding["chain"]] == [
        "pump",
        "_drain",
    ]
    assert finding["chain"][-1]["note"] == "calls time.sleep()"


def test_per_file_findings_keep_exact_key_set_under_deep(tmp_path, capsys):
    """Schema v1 stays intact: a chainless (per-file) finding gains no
    keys even when --deep is on."""
    _materialize(
        tmp_path, {"src/repro/x.py": "import time\ntime.sleep(1)\n"}
    )
    rc = lint_main(
        [
            "--root", str(tmp_path), "--no-baseline", "--deep",
            "--no-cache", "--format", "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    (finding,) = payload["findings"]
    assert set(finding) == {"code", "path", "line", "col", "message"}


def test_explain_path_prints_hops(tmp_path, capsys):
    _materialize(tmp_path, DEEP_DIRTY)
    rc = lint_main(
        [
            "--root", str(tmp_path), "--no-baseline", "--deep",
            "--no-cache", "--explain-path",
        ]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "-> " in out and "calls time.sleep()" in out


def test_deep_findings_share_the_baseline(tmp_path, capsys):
    _materialize(tmp_path, DEEP_DIRTY)
    baseline = tmp_path / "baseline.json"
    rc = lint_main(
        [
            "--root", str(tmp_path), "--deep", "--no-cache",
            "--baseline", str(baseline), "--write-baseline",
        ]
    )
    assert rc == 0
    capsys.readouterr()
    rc = lint_main(
        [
            "--root", str(tmp_path), "--deep", "--no-cache",
            "--baseline", str(baseline),
        ]
    )
    assert rc == 0
    # RPL001 (per-file) + RPL101 (flow) both grandfathered together.
    assert "2 baselined" in capsys.readouterr().out


def test_deep_select_accepts_flow_codes(tmp_path, capsys):
    _materialize(tmp_path, DEEP_DIRTY)
    rc = lint_main(
        [
            "--root", str(tmp_path), "--no-baseline", "--deep",
            "--no-cache", "--select", "RPL101", "--format", "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert set(payload["counts"]) == {"RPL101"}
    # Without --deep the same code is a usage error.
    with pytest.raises(SystemExit) as exc:
        lint_main(["--root", str(tmp_path), "--select", "RPL101"])
    assert exc.value.code == 2


class TestFactsCache:
    def test_second_run_hits(self, tmp_path):
        _materialize(tmp_path, DEEP_DIRTY)
        cache_dir = tmp_path / "cache"
        first = run_flow(tmp_path, use_cache=True, cache_dir=cache_dir)
        assert first.cache_hits == 0 and first.cache_misses == 1
        second = run_flow(tmp_path, use_cache=True, cache_dir=cache_dir)
        assert second.cache_hits == 1 and second.cache_misses == 0
        assert [f.code for f in second.findings] == ["RPL101"]

    def test_edited_file_misses_only_itself(self, tmp_path):
        _materialize(tmp_path, DEEP_DIRTY)
        _materialize(
            tmp_path, {"src/repro/other.py": "def quiet():\n    return 1\n"}
        )
        cache_dir = tmp_path / "cache"
        run_flow(tmp_path, use_cache=True, cache_dir=cache_dir)
        (tmp_path / "src/repro/other.py").write_text(
            "def quiet():\n    return 2\n", encoding="utf-8"
        )
        rerun = run_flow(tmp_path, use_cache=True, cache_dir=cache_dir)
        assert rerun.cache_hits == 1 and rerun.cache_misses == 1

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        _materialize(tmp_path, DEEP_DIRTY)
        cache_dir = tmp_path / "cache"
        run_flow(tmp_path, use_cache=True, cache_dir=cache_dir)
        monkeypatch.setattr("tools.reproflow.cache.ANALYSIS_VERSION", 999)
        rerun = run_flow(tmp_path, use_cache=True, cache_dir=cache_dir)
        assert rerun.cache_hits == 0 and rerun.cache_misses == 1

    def _index(self, cache_dir):
        return json.loads(
            (cache_dir / "facts.json").read_text(encoding="utf-8")
        )

    def test_save_prunes_deleted_files(self, tmp_path):
        _materialize(tmp_path, DEEP_DIRTY)
        _materialize(
            tmp_path, {"src/repro/doomed.py": "def gone():\n    return 1\n"}
        )
        cache_dir = tmp_path / "cache"
        run_flow(tmp_path, use_cache=True, cache_dir=cache_dir)
        assert "src/repro/doomed.py" in self._index(cache_dir)
        (tmp_path / "src/repro/doomed.py").unlink()
        run_flow(tmp_path, use_cache=True, cache_dir=cache_dir)
        index = self._index(cache_dir)
        assert "src/repro/doomed.py" not in index
        assert "src/repro/serve/pump.py" in index

    def test_save_prunes_superseded_versions(self, tmp_path, monkeypatch):
        _materialize(tmp_path, DEEP_DIRTY)
        cache_dir = tmp_path / "cache"
        monkeypatch.setattr("tools.reproflow.cache.ANALYSIS_VERSION", 1)
        run_flow(tmp_path, use_cache=True, cache_dir=cache_dir)
        assert all(
            entry["version"] == 1 for entry in self._index(cache_dir).values()
        )
        monkeypatch.setattr("tools.reproflow.cache.ANALYSIS_VERSION", 2)
        run_flow(tmp_path, use_cache=True, cache_dir=cache_dir)
        # The v1 entry is replaced, not accreted alongside the v2 one.
        index = self._index(cache_dir)
        assert list(index) == ["src/repro/serve/pump.py"]
        assert index["src/repro/serve/pump.py"]["version"] == 2


class TestStandaloneCli:
    def test_list_rules(self, capsys):
        rc = flow_main(["--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for code in ("RPL101", "RPL102", "RPL103", "RPL104"):
            assert code in out

    def test_findings_exit_one_with_chain(self, tmp_path, capsys):
        _materialize(tmp_path, DEEP_DIRTY)
        rc = flow_main(
            [
                "--root", str(tmp_path), "--no-baseline", "--no-cache",
                "--format", "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["counts"] == {"RPL101": 1}
        assert payload["findings"][0]["chain"]
        assert payload["deep"]["functions"] == 2

    def test_summary_mode(self, tmp_path, capsys):
        _materialize(tmp_path, DEEP_DIRTY)
        rc = flow_main(
            ["--root", str(tmp_path), "--no-cache", "--summary", "pump"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pump" in out and "blocks" in out
        assert "calls time.sleep()" in out

    def test_summary_unknown_function_is_usage_error(self, tmp_path, capsys):
        _materialize(tmp_path, DEEP_DIRTY)
        rc = flow_main(
            ["--root", str(tmp_path), "--no-cache", "--summary", "nope"]
        )
        assert rc == 2

    def test_unknown_code_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            flow_main(["--root", str(tmp_path), "--select", "RPL001"])
        assert exc.value.code == 2
