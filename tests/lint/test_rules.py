"""Per-rule fixtures: one good and one bad snippet for every RPL code.

Each rule's *bad* fixture must produce exactly the expected code and
its *good* twin must stay silent — the catalog in docs/linting.md is
only trustworthy if both directions are pinned.
"""

from __future__ import annotations

import pytest

from tests.lint.conftest import codes
from tools.reprolint.rules import (
    ALL_RULES,
    AsyncBlockingRule,
    BroadExceptRule,
    KnobDisciplineRule,
    OracleContractRule,
    SetIterationRule,
    StoreLockRule,
    UnseededRandomnessRule,
    WallClockRule,
)


class TestWallClock:
    def test_bad_sleep_in_src(self, lint_tree):
        result = lint_tree(
            {"src/repro/x.py": "import time\ntime.sleep(1)\n"},
            rules=[WallClockRule],
        )
        assert codes(result) == ["RPL001"]

    def test_bad_perf_counter_in_tests(self, lint_tree):
        result = lint_tree(
            {
                "tests/test_x.py": (
                    "from time import perf_counter\nstart = perf_counter()\n"
                )
            },
            rules=[WallClockRule],
        )
        assert codes(result) == ["RPL001"]

    def test_bad_datetime_now(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/x.py": (
                    "from datetime import datetime\nstamp = datetime.now()\n"
                )
            },
            rules=[WallClockRule],
        )
        assert codes(result) == ["RPL001"]

    def test_good_clock_module_exempt(self, lint_tree):
        result = lint_tree(
            {"src/repro/serve/clock.py": "import time\ntime.monotonic()\n"},
            rules=[WallClockRule],
        )
        assert codes(result) == []

    def test_good_mention_in_string_not_flagged(self, lint_tree):
        # The regex scanner this engine superseded would flag this line.
        result = lint_tree(
            {"src/repro/x.py": 'BANNED = "time.sleep(1)"\n'},
            rules=[WallClockRule],
        )
        assert codes(result) == []

    def test_good_local_variable_named_time(self, lint_tree):
        result = lint_tree(
            {"src/repro/x.py": "time = object()\ntime.sleep = print\n"},
            rules=[WallClockRule],
        )
        assert codes(result) == []


class TestUnseededRandomness:
    def test_bad_stdlib_random(self, lint_tree):
        result = lint_tree(
            {"src/repro/x.py": "import random\nv = random.randint(0, 7)\n"},
            rules=[UnseededRandomnessRule],
        )
        assert codes(result) == ["RPL002"]

    def test_bad_legacy_numpy_api(self, lint_tree):
        result = lint_tree(
            {"src/repro/x.py": "import numpy as np\nv = np.random.rand(3)\n"},
            rules=[UnseededRandomnessRule],
        )
        assert codes(result) == ["RPL002"]

    def test_bad_seedless_default_rng(self, lint_tree):
        bad = "from numpy.random import default_rng\nr = default_rng()\n"
        result = lint_tree(
            {"src/repro/x.py": bad}, rules=[UnseededRandomnessRule]
        )
        assert codes(result) == ["RPL002"]

    def test_bad_explicit_none_seed(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/x.py": (
                    "import numpy as np\nr = np.random.default_rng(None)\n"
                )
            },
            rules=[UnseededRandomnessRule],
        )
        assert codes(result) == ["RPL002"]

    def test_good_seeded_default_rng(self, lint_tree):
        good = (
            "import numpy as np\n"
            "r1 = np.random.default_rng(2024)\n"
            "r2 = np.random.default_rng(seed=7)\n"
            "gen = np.random.Generator(np.random.PCG64(3))\n"
        )
        result = lint_tree(
            {"src/repro/x.py": good}, rules=[UnseededRandomnessRule]
        )
        assert codes(result) == []

    def test_good_generator_method_untouched(self, lint_tree):
        # rng.random() is a *Generator method*, not the global module.
        result = lint_tree(
            {"src/repro/x.py": "def f(rng):\n    return rng.random()\n"},
            rules=[UnseededRandomnessRule],
        )
        assert codes(result) == []


class TestSetIteration:
    def test_bad_set_variable_iteration(self, lint_tree):
        bad = (
            "def walk(events):\n"
            "    seen = set(events)\n"
            "    return [e for e in seen]\n"
        )
        result = lint_tree(
            {"src/repro/decoders/x.py": bad}, rules=[SetIterationRule]
        )
        assert codes(result) == ["RPL003"]

    def test_bad_set_difference_iteration(self, lint_tree):
        bad = (
            "def walk(a):\n"
            "    removed = {1, 2}\n"
            "    for k in a - removed:\n"
            "        print(k)\n"
        )
        result = lint_tree(
            {"src/repro/graph/x.py": bad}, rules=[SetIterationRule]
        )
        assert codes(result) == ["RPL003"]

    def test_bad_unsorted_dict_values(self, lint_tree):
        bad = "def walk(d):\n    return [v for v in d.values()]\n"
        result = lint_tree(
            {"src/repro/core/x.py": bad}, rules=[SetIterationRule]
        )
        assert codes(result) == ["RPL003"]

    def test_good_sorted_iteration(self, lint_tree):
        good = (
            "def walk(events, d):\n"
            "    seen = set(events)\n"
            "    a = [e for e in sorted(seen)]\n"
            "    b = [k for k in sorted(d.keys())]\n"
            "    return a, b\n"
        )
        result = lint_tree(
            {"src/repro/decoders/x.py": good}, rules=[SetIterationRule]
        )
        assert codes(result) == []

    def test_good_membership_only(self, lint_tree):
        good = (
            "def walk(events, items):\n"
            "    seen = set(events)\n"
            "    return [i for i in items if i in seen]\n"
        )
        result = lint_tree(
            {"src/repro/decoders/x.py": good}, rules=[SetIterationRule]
        )
        assert codes(result) == []

    def test_good_outside_hot_paths(self, lint_tree):
        # The rule is scoped to decoders/graph/core: aggregation modules
        # (eval, serve) may iterate sets freely.
        bad_elsewhere = "def f(x):\n    return [e for e in set(x)]\n"
        result = lint_tree(
            {"src/repro/eval/x.py": bad_elsewhere}, rules=[SetIterationRule]
        )
        assert codes(result) == []


class TestKnobDiscipline:
    def test_bad_environ_get(self, lint_tree):
        result = lint_tree(
            {"src/repro/x.py": "import os\nv = os.environ.get('X')\n"},
            rules=[KnobDisciplineRule],
        )
        assert codes(result) == ["RPL004"]

    def test_bad_getenv_and_member_import(self, lint_tree):
        bad = (
            "import os\n"
            "from os import environ\n"
            "a = os.getenv('X')\n"
            "b = environ['Y']\n"
        )
        result = lint_tree(
            {"src/repro/x.py": bad}, rules=[KnobDisciplineRule]
        )
        assert codes(result) == ["RPL004", "RPL004"]

    def test_good_knobs_module_exempt(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/eval/knobs.py": (
                    "import os\nv = os.environ.get('X')\n"
                )
            },
            rules=[KnobDisciplineRule],
        )
        assert codes(result) == []


class TestStoreLock:
    def test_bad_fcntl_import(self, lint_tree):
        result = lint_tree(
            {"src/repro/x.py": "import fcntl\n"}, rules=[StoreLockRule]
        )
        assert codes(result) == ["RPL005"]

    def test_bad_append_open(self, lint_tree):
        bad = (
            "def log(path, line):\n"
            "    with open(path, 'a') as handle:\n"
            "        handle.write(line)\n"
        )
        result = lint_tree({"src/repro/x.py": bad}, rules=[StoreLockRule])
        assert codes(result) == ["RPL005"]

    def test_bad_os_open_append(self, lint_tree):
        bad = (
            "import os\n"
            "def log(path):\n"
            "    return os.open(path, os.O_WRONLY | os.O_APPEND)\n"
        )
        result = lint_tree({"src/repro/x.py": bad}, rules=[StoreLockRule])
        assert codes(result) == ["RPL005"]

    def test_good_store_module_exempt(self, lint_tree):
        result = lint_tree(
            {"src/repro/eval/store.py": "import fcntl\n"},
            rules=[StoreLockRule],
        )
        assert codes(result) == []

    def test_good_read_modes(self, lint_tree):
        good = (
            "from pathlib import Path\n"
            "def load(path):\n"
            "    with open(path, 'rb') as handle:\n"
            "        data = handle.read()\n"
            "    with Path(path).open('w') as handle:\n"
            "        handle.write('x')\n"
            "    return data\n"
        )
        result = lint_tree({"src/repro/x.py": good}, rules=[StoreLockRule])
        assert codes(result) == []


class TestAsyncBlocking:
    def test_bad_sleep_in_async(self, lint_tree):
        bad = (
            "import time\n"
            "async def pump():\n"
            "    time.sleep(0.1)\n"
        )
        result = lint_tree(
            {"src/repro/serve/x.py": bad}, rules=[AsyncBlockingRule]
        )
        assert codes(result) == ["RPL006"]

    def test_bad_sync_io_and_subprocess(self, lint_tree):
        bad = (
            "import subprocess\n"
            "async def pump(path):\n"
            "    data = open(path).read()\n"
            "    subprocess.run(['ls'])\n"
            "    return path.read_text(), data\n"
        )
        result = lint_tree(
            {"src/repro/serve/x.py": bad}, rules=[AsyncBlockingRule]
        )
        assert codes(result) == ["RPL006", "RPL006", "RPL006"]

    def test_good_sync_function_untouched(self, lint_tree):
        good = "import time\ndef pump():\n    time.sleep(0.1)\n"
        result = lint_tree(
            {"src/repro/serve/x.py": good}, rules=[AsyncBlockingRule]
        )
        assert codes(result) == []

    def test_good_nested_sync_helper_skipped(self, lint_tree):
        # A nested sync def may be shipped to an executor; it is not
        # lexically on the event loop.
        good = (
            "async def pump(loop, path):\n"
            "    def blocking_read():\n"
            "        return open(path).read()\n"
            "    return await loop.run_in_executor(None, blocking_read)\n"
        )
        result = lint_tree(
            {"src/repro/serve/x.py": good}, rules=[AsyncBlockingRule]
        )
        assert codes(result) == []

    def test_bad_nested_async_counted_once(self, lint_tree):
        bad = (
            "import time\n"
            "async def outer():\n"
            "    async def inner():\n"
            "        time.sleep(1)\n"
            "    await inner()\n"
        )
        result = lint_tree(
            {"src/repro/serve/x.py": bad}, rules=[AsyncBlockingRule]
        )
        assert codes(result) == ["RPL006"]


ENGINE_WITH_HOOK = """
class FancyDecoder:
    def decode_uniques(self, uniques):
        return list(uniques)
"""

REFERENCE_SUBCLASS = """
from repro.x import FancyDecoder

class ReferenceFancyDecoder(FancyDecoder):
    def decode_uniques(self, uniques):
        return [self.decode(e) for e in uniques]
"""


class TestOracleContract:
    def test_bad_engine_without_oracle_or_test(self, lint_tree):
        result = lint_tree(
            {"src/repro/x.py": ENGINE_WITH_HOOK}, rules=[OracleContractRule]
        )
        assert codes(result) == ["RPL007"]

    def test_bad_oracle_exists_but_no_equivalence_test(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/x.py": ENGINE_WITH_HOOK,
                "src/repro/ref.py": REFERENCE_SUBCLASS,
                "tests/test_x.py": "from repro.x import FancyDecoder\n",
            },
            rules=[OracleContractRule],
        )
        assert codes(result) == ["RPL007"]
        assert "ReferenceFancyDecoder" in result.findings[0].message

    def test_good_oracle_plus_equivalence_test(self, lint_tree):
        test = (
            "from repro.x import FancyDecoder\n"
            "from repro.ref import ReferenceFancyDecoder\n"
            "def test_equivalence():\n"
            "    assert FancyDecoder and ReferenceFancyDecoder\n"
        )
        result = lint_tree(
            {
                "src/repro/x.py": ENGINE_WITH_HOOK,
                "src/repro/ref.py": REFERENCE_SUBCLASS,
                "tests/test_x.py": test,
            },
            rules=[OracleContractRule],
        )
        assert codes(result) == []

    def test_good_reference_fallback_loop_test(self, lint_tree):
        test = (
            "from repro.x import FancyDecoder\n"
            "def test_batch_equals_loop(decoder, batch):\n"
            "    assert decoder.decode_batch(batch) == "
            "decoder.decode_batch_reference(batch)\n"
        )
        result = lint_tree(
            {
                "src/repro/x.py": ENGINE_WITH_HOOK,
                "tests/test_x.py": test,
            },
            rules=[OracleContractRule],
        )
        assert codes(result) == []

    def test_good_reference_class_itself_exempt(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/ref.py": (
                    "class ReferenceLoneDecoder:\n"
                    "    def decode_uniques(self, uniques):\n"
                    "        return list(uniques)\n"
                )
            },
            rules=[OracleContractRule],
        )
        assert codes(result) == []


class TestBroadExcept:
    def test_bad_silent_broad_catch(self, lint_tree):
        bad = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        result = lint_tree({"src/repro/x.py": bad}, rules=[BroadExceptRule])
        assert codes(result) == ["RPL008"]

    def test_bad_bare_except(self, lint_tree):
        bad = "def f():\n    try:\n        work()\n    except:\n        pass\n"
        result = lint_tree({"src/repro/x.py": bad}, rules=[BroadExceptRule])
        assert codes(result) == ["RPL008"]

    def test_good_annotated_catch(self, lint_tree):
        good = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:  # reprolint: broad-except -- fault isolation\n"
            "        fallback()\n"
        )
        result = lint_tree({"src/repro/x.py": good}, rules=[BroadExceptRule])
        assert codes(result) == []

    def test_good_pure_reraise(self, lint_tree):
        good = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        raise\n"
        )
        result = lint_tree({"src/repro/x.py": good}, rules=[BroadExceptRule])
        assert codes(result) == []

    def test_good_narrow_catch(self, lint_tree):
        good = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (ValueError, KeyError):\n"
            "        return None\n"
        )
        result = lint_tree({"src/repro/x.py": good}, rules=[BroadExceptRule])
        assert codes(result) == []


def test_every_rule_has_a_stable_code_and_metadata():
    seen = set()
    for rule in ALL_RULES:
        assert rule.code.startswith("RPL") and len(rule.code) == 6
        assert rule.code not in seen, f"duplicate code {rule.code}"
        seen.add(rule.code)
        assert rule.name and rule.summary and rule.scope


def test_at_least_seven_active_rules():
    assert len(ALL_RULES) >= 7
