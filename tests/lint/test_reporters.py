"""Reporter output contracts and CLI exit codes (in-process `main`)."""

from __future__ import annotations

import json

import pytest

from tools.reprolint.__main__ import main
from tools.reprolint.engine import run_lint
from tools.reprolint.reporters import render_json, render_text
from tools.reprolint.rules import WallClockRule

DIRTY = {"src/repro/x.py": "import time\ntime.sleep(1)\n"}
CLEAN = {"src/repro/x.py": "x = 1\n"}


def _materialize(root, files):
    import textwrap

    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")


class TestJsonSchema:
    def test_schema_v1_keys_and_finding_shape(self, lint_tree):
        result = lint_tree(dict(DIRTY), rules=[WallClockRule])
        payload = json.loads(render_json(result, baselined=0, stale=[]))
        assert payload["version"] == 1
        assert payload["tool"] == "reprolint"
        assert set(payload) >= {
            "version",
            "tool",
            "status",
            "files_scanned",
            "suppressed",
            "baselined",
            "stale_baseline",
            "counts",
            "findings",
            "parse_errors",
        }
        assert payload["status"] == "findings"
        assert payload["counts"] == {"RPL001": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {"code", "path", "line", "col", "message"}
        assert finding["code"] == "RPL001"
        assert finding["path"] == "src/repro/x.py"

    def test_clean_status(self, lint_tree):
        result = lint_tree(dict(CLEAN), rules=[WallClockRule])
        payload = json.loads(render_json(result, baselined=0, stale=[]))
        assert payload["status"] == "clean"
        assert payload["findings"] == []
        assert payload["counts"] == {}


class TestTextReport:
    def test_summary_line_and_rendered_finding(self, lint_tree):
        result = lint_tree(dict(DIRTY), rules=[WallClockRule])
        text = render_text(result, baselined=0, stale=[])
        assert "src/repro/x.py:2:" in text
        assert "RPL001" in text
        assert "1 finding" in text

    def test_stale_baseline_warning(self, lint_tree):
        result = lint_tree(dict(CLEAN), rules=[WallClockRule])
        text = render_text(result, baselined=0, stale=["deadbeefdeadbeef"])
        assert "stale" in text.lower()


class TestCliExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _materialize(tmp_path, CLEAN)
        rc = main(["--root", str(tmp_path), "--no-baseline"])
        assert rc == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        _materialize(tmp_path, DIRTY)
        rc = main(["--root", str(tmp_path), "--no-baseline"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPL001" in out

    def test_json_format_findings(self, tmp_path, capsys):
        _materialize(tmp_path, DIRTY)
        rc = main(["--root", str(tmp_path), "--no-baseline", "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "findings"
        assert payload["counts"] == {"RPL001": 1}

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        _materialize(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        rc = main(
            [
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--write-baseline",
            ]
        )
        assert rc == 0
        assert baseline.exists()
        capsys.readouterr()

        rc = main(["--root", str(tmp_path), "--baseline", str(baseline)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_stale_baseline_fails_run(self, tmp_path, capsys):
        _materialize(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        rc = main(
            [
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--write-baseline",
            ]
        )
        assert rc == 0
        capsys.readouterr()

        # Fix the violation: the baseline entry goes stale, and the run
        # fails until the baseline is rewritten (it must only shrink).
        _materialize(tmp_path, CLEAN)
        rc = main(["--root", str(tmp_path), "--baseline", str(baseline)])
        assert rc == 1
        assert "stale" in capsys.readouterr().out.lower()

    def test_select_flag(self, tmp_path, capsys):
        _materialize(
            tmp_path,
            {"src/repro/x.py": "import time\nimport fcntl\ntime.sleep(1)\n"},
        )
        rc = main(
            [
                "--root",
                str(tmp_path),
                "--no-baseline",
                "--select",
                "RPL005",
                "--format",
                "json",
            ]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["counts"]) == {"RPL005"}

    def test_unknown_code_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--root", str(tmp_path), "--select", "NOPE99"])
        assert exc.value.code == 2

    def test_list_rules(self, capsys):
        rc = main(["--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL008"):
            assert code in out

    def test_parse_error_exits_one(self, tmp_path, capsys):
        _materialize(tmp_path, {"src/repro/x.py": "def broken(:\n"})
        rc = main(["--root", str(tmp_path), "--no-baseline"])
        assert rc == 1
        assert "RPL000" in capsys.readouterr().out
