"""SARIF 2.1.0 output: structural validation shared by reprolint,
reproflow, and reprorace.

CI has no ``jsonschema`` package, so ``_check_sarif`` is a hand-rolled
structural validator covering the slice of the 2.1.0 schema we emit:
run/tool/driver/rules descriptors, results with resolvable
``ruleIndex`` values, 1-based regions, and ``codeFlows`` thread flows
for chained findings.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from tools.reprolint.__main__ import main as lint_main
from tools.reprolint.reporters import SARIF_SCHEMA, SARIF_VERSION
from tools.reproflow.__main__ import main as flow_main

REPO = Path(__file__).resolve().parents[2]

SARIF_DIRTY = {
    "src/repro/state.py": """
        COUNTER = 0


        def report():
            return COUNTER


        async def bump():
            global COUNTER
            COUNTER = COUNTER + 1
        """
}


def _materialize(root, files):
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")


def _check_sarif(payload):
    assert payload["$schema"] == SARIF_SCHEMA
    assert payload["version"] == SARIF_VERSION == "2.1.0"
    assert isinstance(payload["runs"], list) and len(payload["runs"]) == 1
    run = payload["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reprolint"
    rules = driver["rules"]
    assert isinstance(rules, list)
    for rule in rules:
        assert set(rule) >= {"id", "name", "shortDescription"}
        assert rule["shortDescription"]["text"]
    for result in run["results"]:
        assert result["level"] == "error"
        assert result["message"]["text"]
        # ruleIndex must resolve to the descriptor with the same id.
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
        for location in result["locations"]:
            physical = location["physicalLocation"]
            assert physical["artifactLocation"]["uriBaseId"] == "SRCROOT"
            assert physical["region"]["startLine"] >= 1
            if "startColumn" in physical["region"]:
                assert physical["region"]["startColumn"] >= 1
        for flow in result.get("codeFlows", ()):
            for thread in flow["threadFlows"]:
                assert thread["locations"]
                for entry in thread["locations"]:
                    loc = entry["location"]["physicalLocation"]
                    assert loc["region"]["startLine"] >= 1
                    assert entry["location"]["message"]["text"]
    return run


def test_sarif_clean_tree(capsys):
    rc = lint_main(["--root", str(REPO), "--format", "sarif"])
    payload = json.loads(capsys.readouterr().out)
    run = _check_sarif(payload)
    assert rc == 0
    assert run["results"] == []
    # Base invocation registers exactly the core rule descriptors.
    assert all(r["id"].startswith("RPL0") for r in run["tool"]["driver"]["rules"])
    assert run["properties"]["filesScanned"] > 50


def test_sarif_race_findings_with_code_flows(tmp_path, capsys):
    _materialize(tmp_path, SARIF_DIRTY)
    rc = lint_main(
        [
            "--root", str(tmp_path), "--no-baseline", "--deep", "--race",
            "--no-cache", "--format", "sarif",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    run = _check_sarif(payload)
    assert rc == 1
    ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    # All three registries are described when both passes are active.
    assert {"RPL001", "RPL101", "RPL201", "RPL204"} <= ids
    (result,) = [r for r in run["results"] if r["ruleId"] == "RPL201"]
    flow = result["codeFlows"][0]["threadFlows"][0]["locations"]
    assert flow[0]["location"]["message"]["text"] == "async def bump"
    assert run["properties"]["race"]["functions"] >= 2
    assert run["properties"]["deep"]["functions"] >= 2


def test_sarif_standalone_reproflow(tmp_path, capsys):
    _materialize(tmp_path, SARIF_DIRTY)
    rc = flow_main(
        ["--root", str(tmp_path), "--no-cache", "--format", "sarif"]
    )
    payload = json.loads(capsys.readouterr().out)
    run = _check_sarif(payload)
    assert rc == 0
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {
        "RPL101", "RPL102", "RPL103", "RPL104"
    }
    assert run["properties"]["deep"]["functions"] >= 2
