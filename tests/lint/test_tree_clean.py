"""The regression that gives the whole PR its teeth.

Two guarantees, both acceptance criteria:

* the real tree lints clean (exit 0) against the checked-in baseline,
  with at least seven active rules; and
* seeding one violation per rule into a scratch tree makes the CLI
  exit non-zero *with that rule's code* — i.e. every rule is live, not
  just registered.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.reprolint.__main__ import main
from tools.reprolint.rules import ALL_RULES

REPO = Path(__file__).resolve().parents[2]

# One minimal trigger per rule, placed at a path inside the rule's scope.
SEEDS = {
    "RPL001": {"src/repro/x.py": "import time\ntime.sleep(1)\n"},
    "RPL002": {"src/repro/x.py": "import random\nv = random.random()\n"},
    "RPL003": {
        "src/repro/decoders/x.py": (
            "def f(xs):\n    s = set(xs)\n    return [x for x in s]\n"
        )
    },
    "RPL004": {"src/repro/x.py": "import os\nv = os.getenv('X')\n"},
    "RPL005": {"src/repro/x.py": "import fcntl\n"},
    "RPL006": {
        "src/repro/serve/x.py": (
            "import time\nasync def pump():\n    time.sleep(1)\n"
        )
    },
    "RPL007": {
        "src/repro/x.py": (
            "class LoneDecoder:\n"
            "    def decode_uniques(self, uniques):\n"
            "        return list(uniques)\n"
        )
    },
    "RPL008": {
        "src/repro/x.py": (
            "def f():\n    try:\n        g()\n    except Exception:\n"
            "        pass\n"
        )
    },
}


def test_at_least_seven_rules_registered():
    assert len(ALL_RULES) >= 7
    assert set(SEEDS) == {rule.code for rule in ALL_RULES}


def test_full_tree_is_clean(capsys):
    rc = main(["--root", str(REPO), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0, payload["findings"]
    assert payload["status"] in ("clean", "baselined")
    assert payload["findings"] == []
    assert payload["parse_errors"] == []
    assert payload["stale_baseline"] == []
    assert payload["files_scanned"] > 100


@pytest.mark.parametrize("code", sorted(SEEDS))
def test_seeded_violation_trips_its_rule(code, tmp_path, capsys):
    for rel, source in SEEDS[code].items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    rc = main(["--root", str(tmp_path), "--no-baseline", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert code in payload["counts"], payload
