"""The --race CLI contract: merged findings, chains, cold/warm cache
equality, select validation, and the shared baseline."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.reprolint.__main__ import main as lint_main
from tools.reprorace.analysis import run_race

REPO = Path(__file__).resolve().parents[2]

RACE_DIRTY = {
    "src/repro/state.py": """
        COUNTER = 0


        def report():
            return COUNTER


        async def bump():
            global COUNTER
            COUNTER = COUNTER + 1
        """
}


def _materialize(root, files):
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")


def test_real_tree_is_race_clean(capsys):
    rc = lint_main(
        ["--root", str(REPO), "--race", "--no-cache", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0, payload["findings"]
    assert payload["findings"] == []
    race = payload["race"]
    assert race["functions"] > 300
    assert race["async_functions"] > 10  # the serve/ tier
    assert race["worker_functions"] >= 1  # pool payloads
    assert race["child_functions"] >= 1  # _init_pool_worker


def test_race_seeded_violation_trips_and_serializes_chain(tmp_path, capsys):
    _materialize(tmp_path, RACE_DIRTY)
    rc = lint_main(
        [
            "--root", str(tmp_path), "--no-baseline", "--race",
            "--no-cache", "--format", "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["counts"] == {"RPL201": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"code", "path", "line", "col", "message", "chain"}
    assert finding["chain"][0]["note"] == "async def bump"
    assert finding["chain"][-1]["note"] == (
        "conflicting read from the main context"
    )


def test_race_explain_path_prints_hops(tmp_path, capsys):
    _materialize(tmp_path, RACE_DIRTY)
    rc = lint_main(
        [
            "--root", str(tmp_path), "--no-baseline", "--race",
            "--no-cache", "--explain-path",
        ]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "-> " in out and "async def bump" in out


def test_race_findings_share_the_baseline(tmp_path, capsys):
    _materialize(tmp_path, RACE_DIRTY)
    baseline = tmp_path / "baseline.json"
    rc = lint_main(
        [
            "--root", str(tmp_path), "--race", "--no-cache",
            "--baseline", str(baseline), "--write-baseline",
        ]
    )
    assert rc == 0
    capsys.readouterr()
    rc = lint_main(
        [
            "--root", str(tmp_path), "--race", "--no-cache",
            "--baseline", str(baseline),
        ]
    )
    assert rc == 0
    assert "1 baselined" in capsys.readouterr().out


def test_race_select_accepts_race_codes(tmp_path, capsys):
    _materialize(tmp_path, RACE_DIRTY)
    rc = lint_main(
        [
            "--root", str(tmp_path), "--no-baseline", "--race",
            "--no-cache", "--select", "RPL201", "--format", "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert set(payload["counts"]) == {"RPL201"}
    # Without --race the same code is a usage error.
    with pytest.raises(SystemExit) as exc:
        lint_main(["--root", str(tmp_path), "--select", "RPL201"])
    assert exc.value.code == 2


def test_deep_and_race_sections_coexist(tmp_path, capsys):
    _materialize(tmp_path, RACE_DIRTY)
    rc = lint_main(
        [
            "--root", str(tmp_path), "--no-baseline", "--deep", "--race",
            "--no-cache", "--format", "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert "deep" in payload and "race" in payload
    assert payload["deep"]["functions"] == payload["race"]["functions"]


class TestSharedFactsCache:
    def test_cold_then_warm_same_findings(self, tmp_path):
        _materialize(tmp_path, RACE_DIRTY)
        cache_dir = tmp_path / "cache"
        cold = run_race(tmp_path, use_cache=True, cache_dir=cache_dir)
        assert cold.cache_hits == 0 and cold.cache_misses == 1
        warm = run_race(tmp_path, use_cache=True, cache_dir=cache_dir)
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        # Race facts survive the JSON round trip bit-for-bit: same
        # findings, same chains, same context census.
        assert [f.render() for f in warm.findings] == [
            f.render() for f in cold.findings
        ]
        assert [f.chain for f in warm.findings] == [
            f.chain for f in cold.findings
        ]
        assert warm.stats()["async_functions"] == cold.stats()["async_functions"]

    def test_deep_warms_the_race_cache(self, tmp_path):
        # One shared facts cache: a deep run extracts everything the
        # race pass needs and vice versa.
        from tools.reproflow.analysis import run_flow

        _materialize(tmp_path, RACE_DIRTY)
        cache_dir = tmp_path / "cache"
        run_flow(tmp_path, use_cache=True, cache_dir=cache_dir)
        warm = run_race(tmp_path, use_cache=True, cache_dir=cache_dir)
        assert warm.cache_hits == 1 and warm.cache_misses == 0
