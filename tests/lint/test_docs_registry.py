"""docs/linting.md's rule catalog must match the registries exactly.

New rules cannot ship undocumented, and the doc cannot advertise codes
that no longer exist: the catalog tables (``| RPLxxx | name | ... |``
rows) are parsed and compared -- codes *and* names -- against
``reprolint.ALL_RULES`` + ``reproflow.ALL_FLOW_RULES`` +
``reprorace.ALL_RACE_RULES``.
"""

from __future__ import annotations

import re
from pathlib import Path

from tools.reproflow.rules import ALL_FLOW_RULES
from tools.reprolint.rules import ALL_RULES
from tools.reprorace.rules import ALL_RACE_RULES

REPO = Path(__file__).resolve().parents[2]
_ROW = re.compile(r"^\|\s*(RPL\d{3})\s*\|\s*([\w-]+)\s*\|", re.MULTILINE)


def _documented() -> dict:
    doc = (REPO / "docs" / "linting.md").read_text(encoding="utf-8")
    return {code: name for code, name in _ROW.findall(doc)}


def test_catalog_codes_match_registries_exactly():
    documented = set(_documented())
    registered = (
        {rule.code for rule in ALL_RULES}
        | {rule.code for rule in ALL_FLOW_RULES}
        | {rule.code for rule in ALL_RACE_RULES}
    )
    missing = registered - documented
    stale = documented - registered
    assert not missing, f"registered but undocumented: {sorted(missing)}"
    assert not stale, f"documented but unregistered: {sorted(stale)}"


def test_catalog_names_match_rule_names():
    documented = _documented()
    for rule in (
        list(ALL_RULES) + list(ALL_FLOW_RULES) + list(ALL_RACE_RULES)
    ):
        assert documented.get(rule.code) == rule.name, (
            f"{rule.code}: doc says {documented.get(rule.code)!r}, "
            f"registry says {rule.name!r}"
        )


def test_every_code_has_a_nonempty_summary():
    for rule in (
        list(ALL_RULES) + list(ALL_FLOW_RULES) + list(ALL_RACE_RULES)
    ):
        assert rule.summary, rule.code
