"""Engine semantics: suppression comments, selection, and baselines."""

from __future__ import annotations

import json

from tests.lint.conftest import codes
from tools.reprolint import baselines
from tools.reprolint.engine import parse_suppressions, run_lint
from tools.reprolint.rules import StoreLockRule, WallClockRule


class TestSuppressions:
    def test_inline_disable_silences_one_line(self, lint_tree):
        src = (
            "import time\n"
            "time.sleep(1)  # reprolint: disable=RPL001 -- measured on purpose\n"
            "time.sleep(2)\n"
        )
        result = lint_tree({"src/repro/x.py": src}, rules=[WallClockRule])
        assert codes(result) == ["RPL001"]
        assert result.findings[0].line == 3
        assert result.suppressed == 1

    def test_disable_is_code_specific(self, lint_tree):
        src = "import time\ntime.sleep(1)  # reprolint: disable=RPL005\n"
        result = lint_tree({"src/repro/x.py": src}, rules=[WallClockRule])
        assert codes(result) == ["RPL001"]
        assert result.suppressed == 0

    def test_disable_accepts_comma_separated_codes(self, lint_tree):
        src = (
            "import time\n"
            "import fcntl  # reprolint: disable=RPL001, RPL005\n"
            "time.sleep(1)  # reprolint: disable=RPL001,RPL005\n"
        )
        result = lint_tree(
            {"src/repro/x.py": src}, rules=[WallClockRule, StoreLockRule]
        )
        assert codes(result) == []
        assert result.suppressed == 2

    def test_parse_suppressions_ignores_strings(self):
        source = 's = "# reprolint: disable=RPL001"\n'
        assert parse_suppressions(source) == {}

    def test_parse_suppressions_maps_line_to_codes(self):
        source = "x = 1  # reprolint: disable=RPL003 -- reason\n"
        assert parse_suppressions(source) == {1: {"RPL003"}}


class TestSelection:
    SRC = {"src/repro/x.py": "import time\nimport fcntl\ntime.sleep(1)\n"}

    def test_select_limits_to_named_codes(self, lint_tree):
        result = lint_tree(dict(self.SRC), select=["RPL005"])
        assert codes(result) == ["RPL005"]

    def test_ignore_drops_named_codes(self, lint_tree):
        from tools.reprolint.engine import run_lint

        lint_tree(dict(self.SRC), rules=[WallClockRule])  # materialize tree
        result = run_lint(lint_tree.root, ignore=["RPL001"])
        assert "RPL001" not in codes(result)
        assert "RPL005" in codes(result)


class TestBaselines:
    def _findings(self, lint_tree):
        src = {"src/repro/x.py": "import time\ntime.sleep(1)\ntime.sleep(2)\n"}
        return lint_tree(src, rules=[WallClockRule])

    def test_roundtrip_write_load_split(self, lint_tree, tmp_path):
        result = self._findings(lint_tree)
        assert len(result.findings) == 2
        path = tmp_path / "baseline.json"
        baselines.write(path, lint_tree.root, result.findings)

        loaded = baselines.load(path)
        fresh, baselined, stale = baselines.split(
            lint_tree.root, result.findings, loaded
        )
        assert fresh == []
        assert baselined == 2
        assert stale == []

    def test_new_finding_is_fresh_not_baselined(self, lint_tree, tmp_path):
        result = self._findings(lint_tree)
        path = tmp_path / "baseline.json"
        # Baseline only the first finding.
        baselines.write(path, lint_tree.root, result.findings[:1])

        fresh, baselined, stale = baselines.split(
            lint_tree.root, result.findings, baselines.load(path)
        )
        assert [f.line for f in fresh] == [3]
        assert baselined == 1
        assert stale == []

    def test_fixed_finding_reports_stale_entry(self, lint_tree, tmp_path):
        result = self._findings(lint_tree)
        path = tmp_path / "baseline.json"
        baselines.write(path, lint_tree.root, result.findings)

        # The second sleep gets fixed: its entry should surface as stale.
        fresh, baselined, stale = baselines.split(
            lint_tree.root, result.findings[:1], baselines.load(path)
        )
        assert fresh == []
        assert baselined == 1
        assert len(stale) == 1

    def test_fingerprint_survives_line_drift(self, lint_tree, tmp_path):
        result = self._findings(lint_tree)
        path = tmp_path / "baseline.json"
        baselines.write(path, lint_tree.root, result.findings)

        # Prepend lines: same offending text, different line numbers.
        target = lint_tree.root / "src/repro/x.py"
        target.write_text(
            '"""doc"""\nimport time\ntime.sleep(1)\ntime.sleep(2)\n',
            encoding="utf-8",
        )
        drifted = run_lint(lint_tree.root, rules=[WallClockRule])
        assert [f.line for f in drifted.findings] == [3, 4]

        fresh, baselined, stale = baselines.split(
            lint_tree.root, drifted.findings, baselines.load(path)
        )
        assert fresh == []
        assert baselined == 2
        assert stale == []

    def test_changed_line_invalidates_fingerprint(self, lint_tree, tmp_path):
        result = self._findings(lint_tree)
        path = tmp_path / "baseline.json"
        baselines.write(path, lint_tree.root, result.findings)

        target = lint_tree.root / "src/repro/x.py"
        target.write_text(
            "import time\ntime.sleep(99)\ntime.sleep(2)\n", encoding="utf-8"
        )
        changed = run_lint(lint_tree.root, rules=[WallClockRule])
        fresh, baselined, stale = baselines.split(
            lint_tree.root, changed.findings, baselines.load(path)
        )
        # The edited line is a fresh finding; its old entry is stale.
        assert [f.line for f in fresh] == [2]
        assert baselined == 1
        assert len(stale) == 1

    def test_baseline_file_is_versioned_json(self, lint_tree, tmp_path):
        result = self._findings(lint_tree)
        path = tmp_path / "baseline.json"
        baselines.write(path, lint_tree.root, result.findings)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert len(payload["entries"]) == 2
        for entry in payload["entries"]:
            assert set(entry) >= {"fingerprint", "code", "path", "line"}


class TestParseErrors:
    def test_syntax_error_is_reported_not_raised(self, lint_tree):
        result = lint_tree({"src/repro/x.py": "def broken(:\n"})
        assert result.findings == []
        assert len(result.parse_errors) == 1
        assert result.parse_errors[0].code == "RPL000"
        assert not result.clean
