"""Call-graph construction edge cases.

The linker's resolution paths each get a dedicated fixture: aliased
module imports, from-import aliases, re-exported names (``__init__``
chains), ``self`` dispatch through subclass overrides, decorated
functions, nested-def lexical scoping, and recursion (the fixed point
terminates and witness chains stay finite).
"""

from __future__ import annotations

import pytest

from tools.reproflow.effects import witness_chain


def _qual(graph, suffix):
    matches = [q for q in graph.functions if q.endswith(suffix)]
    assert len(matches) == 1, (suffix, matches)
    return matches[0]


def _callees(graph, qualname):
    return {callee for callee, _line, _note in graph.edges.get(qualname, ())}


TIMING = """
    import time


    def stamp():
        return time.time()
    """


def test_aliased_module_import(flow_tree):
    result = flow_tree(
        {
            "src/repro/util/timing.py": TIMING,
            "src/repro/app.py": """
                import repro.util.timing as t


                def run():
                    return t.stamp()
                """,
        }
    )
    graph = result.graph
    run = _qual(graph, "app.run")
    assert _callees(graph, run) == {"repro.util.timing.stamp"}
    assert "reads_clock" in result.summaries[run]


def test_from_import_alias(flow_tree):
    result = flow_tree(
        {
            "src/repro/util/timing.py": TIMING,
            "src/repro/app.py": """
                from repro.util.timing import stamp as now


                def run():
                    return now()
                """,
        }
    )
    run = _qual(result.graph, "app.run")
    assert _callees(result.graph, run) == {"repro.util.timing.stamp"}


def test_reexported_name_resolves_through_init(flow_tree):
    result = flow_tree(
        {
            "src/repro/util/timing.py": TIMING,
            "src/repro/util/__init__.py": """
                from repro.util.timing import stamp
                """,
            "src/repro/app.py": """
                from repro.util import stamp


                def run():
                    return stamp()
                """,
        }
    )
    run = _qual(result.graph, "app.run")
    assert _callees(result.graph, run) == {"repro.util.timing.stamp"}
    assert "reads_clock" in result.summaries[run]


def test_self_dispatch_reaches_subclass_overrides(flow_tree):
    """The AstreaDecoder.decode_budgeted_uniques shape: a base-class
    driver calling ``self.kernel`` must reach every override, so a
    subclass effect surfaces in the base driver's summary."""
    result = flow_tree(
        {
            "src/repro/decoders/zoo.py": """
                import os


                class Base:
                    def decode_budgeted_uniques(self, uniques, budget):
                        return self.kernel(uniques)

                    def kernel(self, uniques):
                        return uniques


                class Tuned(Base):
                    def kernel(self, uniques):
                        return [os.getenv("X")] * len(uniques)


                class Deep(Tuned):
                    pass
                """
        }
    )
    graph = result.graph
    driver = _qual(graph, "Base.decode_budgeted_uniques")
    assert _callees(graph, driver) == {
        "repro.decoders.zoo.Base.kernel",
        "repro.decoders.zoo.Tuned.kernel",
    }
    assert "reads_env" in result.summaries[driver]
    # The chain names the override hop explicitly.
    hops, _ = witness_chain(graph, result.summaries, driver, "reads_env")
    assert [h.function.rsplit(".", 1)[1] for h in hops] == [
        "decode_budgeted_uniques",
        "kernel",
    ]


def test_decorated_function_still_resolves(flow_tree):
    result = flow_tree(
        {
            "src/repro/app.py": """
                import functools
                import time


                def logged(fn):
                    @functools.wraps(fn)
                    def wrapper(*args, **kwargs):
                        return fn(*args, **kwargs)

                    return wrapper


                @logged
                def slow():
                    time.sleep(1)


                def caller():
                    return slow()
                """
        }
    )
    graph = result.graph
    caller = _qual(graph, "app.caller")
    assert _callees(graph, caller) == {"repro.app.slow"}
    assert "blocks" in result.summaries[caller]


def test_nested_def_called_by_name_propagates(flow_tree):
    result = flow_tree(
        {
            "src/repro/app.py": """
                import time


                def outer():
                    def helper():
                        time.sleep(1)

                    helper()
                """
        }
    )
    graph = result.graph
    outer = _qual(graph, "app.outer")
    assert _callees(graph, outer) == {"repro.app.outer.helper"}
    assert "blocks" in result.summaries[outer]


def test_recursion_terminates_with_finite_chain(flow_tree):
    result = flow_tree(
        {
            "src/repro/app.py": """
                import time


                def ping(n):
                    if n:
                        return pong(n - 1)
                    return 0


                def pong(n):
                    time.sleep(0)
                    return ping(n)
                """
        }
    )
    graph, summaries = result.graph, result.summaries
    ping = _qual(graph, "app.ping")
    pong = _qual(graph, "app.pong")
    assert "blocks" in summaries[ping] and "blocks" in summaries[pong]
    for start in (ping, pong):
        hops, quals = witness_chain(graph, summaries, start, "blocks")
        assert len(hops) <= 3  # finite despite the cycle
        assert len(quals) == len(set(quals))  # no repeated node
        assert hops[-1].note == "calls time.sleep()"


def test_self_recursive_function_terminates(flow_tree):
    result = flow_tree(
        {
            "src/repro/app.py": """
                def loop(n):
                    if n:
                        return loop(n - 1)
                    return 0
                """
        }
    )
    loop = _qual(result.graph, "app.loop")
    assert result.summaries[loop] == {}


def test_constructor_edge_from_instantiation(flow_tree):
    result = flow_tree(
        {
            "src/repro/app.py": """
                import os


                class Config:
                    def __init__(self):
                        self.level = os.getenv("LEVEL")


                def build():
                    return Config()
                """
        }
    )
    build = _qual(result.graph, "app.build")
    assert _callees(result.graph, build) == {"repro.app.Config.__init__"}
    assert "reads_env" in result.summaries[build]


def test_untyped_attribute_call_is_not_an_edge(flow_tree):
    """Calls on untyped values resolve to nothing -- the documented
    under-approximation (docs/static_analysis.md)."""
    result = flow_tree(
        {
            "src/repro/app.py": """
                def drive(lane):
                    return lane.decoder.decode_batch([])
                """
        }
    )
    drive = _qual(result.graph, "app.drive")
    assert _callees(result.graph, drive) == set()
