"""Race-tier rules (RPL201-RPL204) on seeded fixture trees.

Each bad fixture trips exactly its own code; the good variants pin the
semantic boundaries the ISSUE calls out: fork isolation (worker-private
globals never pair), the asyncio single-loop guard, nested ``with``
regions, a lock released on one branch path, seeds derived through
helper functions, and sibling-shard constant collisions.
"""

from __future__ import annotations

from tests.lint.conftest import codes

# -- RPL201: unguarded shared state ---------------------------------------

ASYNC_VS_MAIN = {
    "src/app/state.py": """
    COUNTER = 0

    def report():
        return COUNTER

    async def bump():
        global COUNTER
        COUNTER = COUNTER + 1
    """,
}


class TestUnguardedSharedState:
    def test_async_write_vs_main_read_fires(self, race_tree):
        result = race_tree(ASYNC_VS_MAIN)
        assert codes(result) == ["RPL201"]
        (finding,) = result.findings
        assert finding.line == 9  # the async-side write
        assert "app.state.COUNTER" in finding.message
        assert finding.chain is not None and len(finding.chain) >= 2
        assert finding.chain[0].note.startswith("async def")
        assert "main" in finding.chain[-1].note

    def test_read_read_pair_is_clean(self, race_tree):
        result = race_tree(
            {
                "src/app/state.py": """
                COUNTER = 0

                def report():
                    return COUNTER

                async def peek():
                    return COUNTER
                """,
            }
        )
        assert codes(result) == []

    def test_async_vs_async_single_loop_is_clean(self, race_tree):
        # Two coroutines interleave only at awaits on one loop: the
        # implicit event-loop guard silences the pair.
        result = race_tree(
            {
                "src/app/state.py": """
                COUNTER = 0

                async def bump():
                    global COUNTER
                    COUNTER = COUNTER + 1

                async def peek():
                    return COUNTER
                """,
            }
        )
        assert codes(result) == []

    def test_fork_isolation_worker_globals_do_not_pair(self, race_tree):
        # The payload writes a module global *in the forked child*; the
        # parent's copy is untouched, so the main-side read never races.
        result = race_tree(
            {
                "src/app/pool.py": """
                _SHARED = None

                def run_sharded(shared, worker, tasks):
                    return [worker(t) for t in tasks]

                def _worker(task):
                    global _SHARED
                    _SHARED = task
                    return task

                def driver(tasks):
                    run_sharded(None, _worker, tasks)
                    return _SHARED
                """,
            }
        )
        assert codes(result) == []

    def test_common_lock_silences_the_pair(self, race_tree):
        result = race_tree(
            {
                "src/app/state.py": """
                import threading

                _LOCK = threading.Lock()
                COUNTER = 0

                def report():
                    with _LOCK:
                        return COUNTER

                async def bump():
                    global COUNTER
                    with _LOCK:
                        COUNTER = COUNTER + 1
                """,
            },
            # The blocking with-acquire under async is RPL203's concern;
            # isolate the pairing semantics here.
            select=["RPL201"],
        )
        assert codes(result) == []

    def test_nested_with_inner_region_ends_outer_persists(self, race_tree):
        # After the inner ``with`` closes, only the outer lock is held:
        # a write there still shares the outer lock with the reader,
        # but a write after the *outer* block closes is unguarded.
        files = {
            "src/app/state.py": """
            import threading

            _OUTER_LOCK = threading.Lock()
            _INNER_LOCK = threading.Lock()
            COUNTER = 0

            def writer():
                global COUNTER
                with _OUTER_LOCK:
                    with _INNER_LOCK:
                        pass
                    COUNTER = 1
                COUNTER = 2

            async def reader():
                with _OUTER_LOCK:
                    return COUNTER
            """,
        }
        result = race_tree(files, select=["RPL201"])
        # Only the post-outer write (line 14) pairs lock-free; the
        # finding sits on the async side but pairs against that write.
        assert codes(result) == ["RPL201"]
        (finding,) = result.findings
        assert "(src/app/state.py:14)" in finding.message


# -- RPL202: store writes outside fcntl regions ---------------------------


class TestStoreRegion:
    def test_bare_append_fires(self, race_tree):
        result = race_tree(
            {
                "src/app/store.py": """
                def save(path, line):
                    with open(path, "a") as fh:
                        fh.write(line)
                """,
            }
        )
        assert codes(result) == ["RPL202"]
        (finding,) = result.findings
        assert finding.chain is not None
        assert "outside any fcntl region" in finding.chain[-1].note

    def test_direct_fcntl_bracketing_is_clean(self, race_tree):
        result = race_tree(
            {
                "src/app/store.py": """
                import fcntl
                import os

                def save(path, line):
                    fd = os.open(path + ".lock", os.O_CREAT | os.O_WRONLY)
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    try:
                        with open(path, "a") as fh:
                            fh.write(line)
                    finally:
                        fcntl.flock(fd, fcntl.LOCK_UN)
                        os.close(fd)
                """,
            }
        )
        assert codes(result) == []

    def test_acquire_helper_resolves_through_the_graph(self, race_tree):
        # ``self._acquire_lock()`` is only a guard because the graph
        # proves the helper really takes fcntl -- the store.py shape.
        result = race_tree(
            {
                "src/app/store.py": """
                import fcntl
                import os

                class Store:
                    def _acquire_lock(self):
                        fd = os.open("lock", os.O_CREAT | os.O_WRONLY)
                        fcntl.flock(fd, fcntl.LOCK_EX)
                        return fd

                    def save(self, path, line):
                        fd = self._acquire_lock()
                        try:
                            with open(path, "a") as fh:
                                fh.write(line)
                        finally:
                            os.close(fd)
                """,
            }
        )
        assert codes(result) == []

    def test_acquire_named_helper_that_never_locks_guards_nothing(
        self, race_tree
    ):
        result = race_tree(
            {
                "src/app/store.py": """
                class Store:
                    def _acquire_lock(self):
                        return object()

                    def save(self, path, line):
                        fd = self._acquire_lock()
                        with open(path, "a") as fh:
                            fh.write(line)
                """,
            }
        )
        assert codes(result) == ["RPL202"]

    def test_lock_released_on_one_branch_fires(self, race_tree):
        result = race_tree(
            {
                "src/app/store.py": """
                import fcntl
                import os

                def save(path, line, early):
                    fd = os.open(path + ".lock", os.O_CREAT | os.O_WRONLY)
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    if early:
                        fcntl.flock(fd, fcntl.LOCK_UN)
                    with open(path, "a") as fh:
                        fh.write(line)
                """,
            }
        )
        assert codes(result) == ["RPL202"]

    def test_entry_meet_over_callers(self, race_tree):
        # The writer holds no lock itself; one caller brackets it, the
        # other does not -- the meet is empty and the witness chain
        # walks the unlocked path.
        files = {
            "src/app/store.py": """
            import fcntl
            import os

            def _write(path, line):
                with open(path, "a") as fh:
                    fh.write(line)

            def locked(path, line):
                fd = os.open(path + ".lock", os.O_CREAT | os.O_WRONLY)
                fcntl.flock(fd, fcntl.LOCK_EX)
                _write(path, line)
                fcntl.flock(fd, fcntl.LOCK_UN)

            def unlocked(path, line):
                _write(path, line)
            """,
        }
        result = race_tree(files)
        assert codes(result) == ["RPL202"]
        (finding,) = result.findings
        assert any(
            hop.function.endswith("unlocked") for hop in finding.chain
        )

    def test_entry_meet_all_callers_locked_is_clean(self, race_tree):
        result = race_tree(
            {
                "src/app/store.py": """
                import fcntl
                import os

                def _write(path, line):
                    with open(path, "a") as fh:
                        fh.write(line)

                def locked(path, line):
                    fd = os.open(path + ".lock", os.O_CREAT | os.O_WRONLY)
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    _write(path, line)
                    fcntl.flock(fd, fcntl.LOCK_UN)
                """,
            }
        )
        assert codes(result) == []


# -- RPL203: blocking lock acquisition under async ------------------------


class TestAsyncBlockingLock:
    def test_threading_acquire_reached_from_async_fires(self, race_tree):
        result = race_tree(
            {
                "src/app/srv.py": """
                import threading

                _LOCK = threading.Lock()

                def grab():
                    _LOCK.acquire()

                async def handle():
                    grab()
                """,
            },
            select=["RPL203"],
        )
        assert codes(result) == ["RPL203"]
        (finding,) = result.findings
        assert finding.line == 7  # the acquire site, not the coroutine
        chain = finding.chain
        assert chain[0].note == "async def handle"
        assert chain[-1].note.startswith("blocking acquire")

    def test_awaited_asyncio_lock_is_clean(self, race_tree):
        result = race_tree(
            {
                "src/app/srv.py": """
                import asyncio

                _LOCK = asyncio.Lock()

                async def handle():
                    await _LOCK.acquire()
                    _LOCK.release()
                """,
            },
            select=["RPL203"],
        )
        assert codes(result) == []

    def test_nonblocking_acquire_is_clean(self, race_tree):
        result = race_tree(
            {
                "src/app/srv.py": """
                import threading

                _LOCK = threading.Lock()

                async def handle():
                    if _LOCK.acquire(blocking=False):
                        _LOCK.release()
                """,
            },
            select=["RPL203"],
        )
        assert codes(result) == []

    def test_same_acquire_outside_async_reach_is_clean(self, race_tree):
        result = race_tree(
            {
                "src/app/util.py": """
                import threading

                _LOCK = threading.Lock()

                def grab():
                    _LOCK.acquire()

                def main_path():
                    grab()
                """,
            },
            select=["RPL203"],
        )
        assert codes(result) == []


# -- RPL204: seed provenance ----------------------------------------------


class TestSeedProvenance:
    def test_pid_seed_through_innocuous_helper_fires(self, race_tree):
        # The helper's *name* says nothing; its return slice reaches
        # os.getpid(), so the graph refuses the derivation.
        result = race_tree(
            {
                "src/app/rng.py": """
                import os
                from numpy.random import default_rng

                def _pid_seed():
                    return os.getpid()

                def make():
                    return default_rng(_pid_seed())
                """,
            }
        )
        assert codes(result) == ["RPL204"]

    def test_seedish_named_helper_returning_entropy_still_fires(
        self, race_tree
    ):
        result = race_tree(
            {
                "src/app/rng.py": """
                import time
                from numpy.random import default_rng

                def fresh_seed():
                    return int(time.time())

                def make():
                    return default_rng(fresh_seed())
                """,
            }
        )
        assert codes(result) == ["RPL204"]

    def test_seed_derived_through_helper_chain_is_clean(self, race_tree):
        result = race_tree(
            {
                "src/app/rng.py": """
                import hashlib
                from numpy.random import default_rng

                def stable_seed(*parts):
                    digest = hashlib.sha256(repr(parts).encode()).digest()
                    return int.from_bytes(digest[:8], "little") & (2**63 - 1)

                def shard_seed(config_seed, shard):
                    return stable_seed(config_seed, shard)

                def make(config_seed, shard):
                    return default_rng(shard_seed(config_seed, shard))
                """,
            }
        )
        assert codes(result) == []

    def test_direct_entropy_fires(self, race_tree):
        result = race_tree(
            {
                "src/app/rng.py": """
                import time
                from numpy.random import default_rng

                def make():
                    return default_rng(int(time.time()))
                """,
            }
        )
        assert codes(result) == ["RPL204"]
        (finding,) = result.findings
        assert "time.time" in finding.message

    def test_param_seed_is_clean(self, race_tree):
        result = race_tree(
            {
                "src/app/rng.py": """
                from numpy.random import default_rng

                def make(seed):
                    return default_rng(int(seed))
                """,
            }
        )
        assert codes(result) == []

    def test_sibling_shard_constant_collision_fires_on_both(self, race_tree):
        result = race_tree(
            {
                "src/app/shards.py": """
                from numpy.random import default_rng

                def shard_a():
                    return default_rng(1234)

                def shard_b():
                    return default_rng(1234)
                """,
            }
        )
        assert codes(result) == ["RPL204", "RPL204"]
        for finding in result.findings:
            assert "collides" in finding.message
            assert len(finding.chain) == 2

    def test_distinct_constants_are_clean(self, race_tree):
        result = race_tree(
            {
                "src/app/shards.py": """
                from numpy.random import default_rng

                def shard_a():
                    return default_rng(1234)

                def shard_b():
                    return default_rng(5678)
                """,
            }
        )
        assert codes(result) == []

    def test_seedless_site_is_not_rpl204(self, race_tree):
        # No seed argument at all is RPL002's (per-file) finding.
        result = race_tree(
            {
                "src/app/rng.py": """
                from numpy.random import default_rng

                def make():
                    return default_rng()
                """,
            }
        )
        assert codes(result) == []


# -- cross-cutting: suppressions ride the shared machinery ----------------


def test_race_findings_honor_line_suppressions(race_tree):
    files = dict(ASYNC_VS_MAIN)
    files["src/app/state.py"] = files["src/app/state.py"].replace(
        "COUNTER = COUNTER + 1",
        "COUNTER = COUNTER + 1  # reprolint: disable=RPL201 -- test shim",
    )
    result = race_tree(files)
    assert codes(result) == []
    assert result.suppressed == 1


def test_every_finding_carries_a_chain(race_tree):
    bad = {
        "src/app/all.py": """
        import threading
        import time
        from numpy.random import default_rng

        _LOCK = threading.Lock()
        STATE = 0

        def save(path):
            with open(path, "a") as fh:
                fh.write("x")

        def read_state():
            return STATE

        def make_rng():
            return default_rng(int(time.time()))

        async def handle():
            global STATE
            STATE = 1
            _LOCK.acquire()
        """,
    }
    result = race_tree(bad)
    assert sorted(set(codes(result))) == ["RPL201", "RPL202", "RPL203", "RPL204"]
    for finding in result.findings:
        assert finding.chain, finding.render()
        for hop in finding.chain:
            assert hop.path and hop.line >= 1
