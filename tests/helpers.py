"""Test helpers: synthetic decoding graphs with hand-specified topology.

The Promatch algorithm tests need precise control over the decoding
subgraph shape (the paper's Figures 7, 9, 12, 13).  These helpers build a
:class:`~repro.graph.decoding_graph.DecodingGraph` directly from an edge
list, bypassing circuits entirely.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.decoding_graph import BOUNDARY_SENTINEL, DecodingGraph, GraphEdge
from repro.utils.bits import probability_to_weight, weight_to_probability


def make_graph(
    n_nodes: int,
    edges: Iterable[Tuple[int, int, float]],
    boundary: Iterable[Tuple[int, float]] = (),
    observables: Optional[Dict[Tuple[int, int], int]] = None,
) -> DecodingGraph:
    """Build a synthetic decoding graph.

    Args:
        n_nodes: Number of detector nodes.
        edges: (u, v, weight) internal edges.
        boundary: (u, weight) boundary edges.
        observables: Optional (u, v) -> observable-mask overrides
            (use v = BOUNDARY_SENTINEL for boundary edges); default 0.
    """
    observables = observables or {}
    graph_edges: List[GraphEdge] = []
    for u, v, weight in edges:
        graph_edges.append(
            GraphEdge(
                u=min(u, v),
                v=max(u, v),
                probability=weight_to_probability(weight),
                weight=float(weight),
                observable_mask=observables.get((min(u, v), max(u, v)), 0),
            )
        )
    for u, weight in boundary:
        graph_edges.append(
            GraphEdge(
                u=u,
                v=BOUNDARY_SENTINEL,
                probability=weight_to_probability(weight),
                weight=float(weight),
                observable_mask=observables.get((u, BOUNDARY_SENTINEL), 0),
            )
        )
    return DecodingGraph(n_nodes=n_nodes, edges=graph_edges)


def make_path_graph(n_nodes: int, weight: float = 1.0) -> DecodingGraph:
    """A line 0 - 1 - ... - (n-1) with boundary edges at both ends."""
    edges = [(i, i + 1, weight) for i in range(n_nodes - 1)]
    boundary = [(0, weight), (n_nodes - 1, weight)]
    return make_graph(n_nodes, edges, boundary)


def figure7_graph() -> DecodingGraph:
    """The paper's Figure 7 pattern: a 4-chain 1-2-3-4.

    Nodes 0..3 model flipped bits 1..4; the correct prematching is
    (0, 1) and (2, 3); matching (1, 2) strands 0 and 3 as singletons.
    Edge weights make the middle edge slightly the cheapest, so a purely
    weight-greedy matcher takes the wrong pair.
    """
    return make_graph(
        n_nodes=4,
        edges=[(0, 1, 2.0), (1, 2, 1.5), (2, 3, 2.0)],
        boundary=[(0, 50.0), (1, 50.0), (2, 50.0), (3, 50.0)],
    )


def figure9_graph() -> DecodingGraph:
    """The paper's Figure 9 pattern.

    Node 0 = bit ``a`` with degree-1 neighbors 1, 2, 3 (= b, c, d);
    node 4 = bit ``e`` adjacent to 0 and to 5 (= f).  Matching (a, b)
    strands c and d; e survives thanks to f.
    """
    return make_graph(
        n_nodes=6,
        edges=[
            (0, 1, 1.0),
            (0, 2, 1.2),
            (0, 3, 1.4),
            (0, 4, 1.6),
            (4, 5, 1.1),
        ],
        boundary=[(i, 60.0) for i in range(6)],
    )
