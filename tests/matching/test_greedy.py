"""Tests for the greedy completion matcher."""

import numpy as np
import pytest

from repro.matching.exact import solve_exact_matching
from repro.matching.greedy import greedy_matching


def instance(rng, n):
    pair = rng.uniform(0.5, 10.0, size=(n, n))
    pair = (pair + pair.T) / 2
    np.fill_diagonal(pair, 0.0)
    boundary = rng.uniform(0.5, 10.0, size=n)
    return pair, boundary


class TestGreedy:
    @pytest.mark.parametrize("n", [1, 2, 5, 10])
    def test_always_complete(self, n, rng):
        pair, boundary = instance(rng, n)
        solution = greedy_matching(pair, boundary)
        assert solution.covers(n)

    def test_never_better_than_optimal(self, rng):
        for _ in range(10):
            pair, boundary = instance(rng, 8)
            greedy = greedy_matching(pair, boundary)
            optimal = solve_exact_matching(pair, boundary)
            assert greedy.total_weight >= optimal.total_weight - 1e-9

    def test_takes_obvious_cheap_pair(self):
        pair = np.array([[0.0, 0.1], [0.1, 0.0]])
        boundary = np.array([5.0, 5.0])
        solution = greedy_matching(pair, boundary)
        assert solution.pairs == [(0, 1)]

    def test_allowed_pairs_respected(self, rng):
        pair, boundary = instance(rng, 4)
        solution = greedy_matching(pair, boundary, allowed_pairs=[(0, 1)])
        for i, j in solution.pairs:
            assert (i, j) == (0, 1)
        assert solution.covers(4)

    def test_subset_of_events(self, rng):
        pair, boundary = instance(rng, 6)
        solution = greedy_matching(pair, boundary, events=[1, 3, 5])
        matched = {i for p in solution.pairs for i in p} | set(solution.boundary)
        assert matched == {1, 3, 5}

    def test_empty_allowed_pairs_forces_boundary(self, rng):
        pair, boundary = instance(rng, 3)
        solution = greedy_matching(pair, boundary, allowed_pairs=[])
        assert solution.boundary == [0, 1, 2]
