"""Tests for the exact matching engines (DP, blossom, brute force)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.exact import (
    MatchingSolution,
    _solve_bitmask_dp,
    _solve_blossom,
    brute_force_minimum,
    enumerate_matchings,
    involution_count,
    solve_exact_matching,
)


def random_instance(rng: np.random.Generator, n: int):
    pair = rng.uniform(0.5, 10.0, size=(n, n))
    pair = (pair + pair.T) / 2
    np.fill_diagonal(pair, 0.0)
    boundary = rng.uniform(0.5, 10.0, size=n)
    return pair, boundary


class TestInvolutions:
    def test_known_values(self):
        assert involution_count(0) == 1
        assert involution_count(1) == 1
        assert involution_count(2) == 2
        assert involution_count(4) == 10
        assert involution_count(10) == 9496  # the paper's HW=10 search space

    def test_enumeration_matches_count(self):
        for n in range(6):
            assert len(list(enumerate_matchings(n))) == involution_count(n)

    def test_enumeration_covers(self):
        for pairs, boundary in enumerate_matchings(4):
            used = sorted([i for p in pairs for i in p] + list(boundary))
            assert used == [0, 1, 2, 3]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            involution_count(-1)


class TestEnginesAgree:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 7, 8])
    def test_dp_equals_brute_force(self, n, rng):
        pair, boundary = random_instance(rng, n)
        dp = _solve_bitmask_dp(pair, boundary)
        brute = brute_force_minimum(pair, boundary)
        assert dp.total_weight == pytest.approx(brute.total_weight)
        assert dp.covers(n)

    @pytest.mark.parametrize("n", [2, 5, 9, 12])
    def test_blossom_equals_dp(self, n, rng):
        pair, boundary = random_instance(rng, n)
        dp = _solve_bitmask_dp(pair, boundary)
        blossom = _solve_blossom(pair, boundary)
        assert blossom.total_weight == pytest.approx(dp.total_weight)
        assert blossom.covers(n)

    def test_dispatch_small_and_large(self, rng):
        pair, boundary = random_instance(rng, 15)
        solution = solve_exact_matching(pair, boundary, dp_limit=12)
        assert solution.covers(15)

    def test_empty(self):
        solution = solve_exact_matching(np.zeros((0, 0)), np.zeros(0))
        assert solution.pairs == [] and solution.boundary == []
        assert solution.total_weight == 0.0

    def test_boundary_only_optimum(self):
        pair = np.full((2, 2), 100.0)
        np.fill_diagonal(pair, 0)
        boundary = np.array([1.0, 1.0])
        solution = solve_exact_matching(pair, boundary)
        assert solution.boundary == [0, 1]
        assert solution.total_weight == pytest.approx(2.0)

    def test_pair_preferred_when_cheap(self):
        pair = np.array([[0.0, 1.0], [1.0, 0.0]])
        boundary = np.array([10.0, 10.0])
        solution = solve_exact_matching(pair, boundary)
        assert solution.pairs == [(0, 1)]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=2**31 - 1))
def test_property_dp_optimal(n, seed):
    rng = np.random.default_rng(seed)
    pair, boundary = random_instance(rng, n)
    dp = _solve_bitmask_dp(pair, boundary)
    brute = brute_force_minimum(pair, boundary)
    assert dp.total_weight == pytest.approx(brute.total_weight)


class TestSolutionType:
    def test_covers_detects_missing(self):
        solution = MatchingSolution(pairs=[(0, 1)], boundary=[])
        assert solution.covers(2)
        assert not solution.covers(3)
