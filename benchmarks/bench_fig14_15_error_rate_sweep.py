"""Figures 14 and 15: LER vs physical error rate, d = 11 and d = 13.

Paper's sweep: p = 1e-4 .. 5e-4 for MWPM, Promatch, Astrea-G, Smith,
Smith || AG, Promatch || AG.  The claims to reproduce:

* every series rises steeply with p,
* Promatch || AG stays within ~1.1x (d=11) / ~13.9x (d=13) of MWPM,
* Smith || AG trails Promatch || AG,
* Astrea-G detaches furthest.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    eval_batch_size,
    eval_shards,
    get_workbench,
    headline_distances,
    k_max,
    ler_store_kwargs,
    run_once,
    save_results,
    shots_per_k,
    worker_pool,
)

from repro.eval.ler import estimate_ler_suite  # noqa: E402
from repro.eval.reporting import format_scientific, format_table  # noqa: E402
from repro.utils.rng import stable_seed  # noqa: E402

ERROR_RATES = (1e-4, 2e-4, 3e-4, 4e-4, 5e-4)
COMPONENTS = ("MWPM", "Promatch+Astrea", "Astrea-G", "Smith+Astrea")
PARALLEL = {
    "Promatch || AG": ("Promatch+Astrea", "Astrea-G"),
    "Smith || AG": ("Smith+Astrea", "Astrea-G"),
}


def run_sweep() -> dict:
    payload = {"error_rates": list(ERROR_RATES), "series": {}}
    sweep_shots = max(60, shots_per_k() // 2)
    for distance in headline_distances():
        per_p = {}
        for p in ERROR_RATES:
            bench = get_workbench(distance, p)
            results = estimate_ler_suite(
                components={name: bench.decoders[name] for name in COMPONENTS},
                parallel_specs=PARALLEL,
                dem=bench.dem,
                p=p,
                k_max=k_max(),
                shots_per_k=sweep_shots,
                rng=stable_seed("fig14_15", distance, p),
                shards=eval_shards(),
                batch_size=eval_batch_size(),
                pool=worker_pool(),
                **ler_store_kwargs(bench),
            )
            per_p[f"{p:.0e}"] = {name: r.ler for name, r in results.items()}
        payload["series"][str(distance)] = per_p
    return payload


def bench_fig14_15_error_rate_sweep(benchmark):
    payload = run_once(benchmark, run_sweep)
    names = list(COMPONENTS) + list(PARALLEL)
    for distance, per_p in payload["series"].items():
        rates = list(per_p)
        rows = [
            [name] + [format_scientific(per_p[r][name]) for r in rates]
            for name in names
        ]
        print()
        print(
            format_table(
                ["Decoder"] + [f"p={r}" for r in rates],
                rows,
                title=f"Figures 14/15 | LER vs p, d={distance}",
            )
        )
    save_results("fig14_15_error_rate_sweep", payload)
