"""Figures 14 and 15: LER vs physical error rate, d = 11 and d = 13.

Paper's sweep: p = 1e-4 .. 5e-4 for MWPM, Promatch, Astrea-G, Smith,
Smith || AG, Promatch || AG.  The claims to reproduce:

* every series rises steeply with p,
* Promatch || AG stays within ~1.1x (d=11) / ~13.9x (d=13) of MWPM,
* Smith || AG trails Promatch || AG,
* Astrea-G detaches furthest.

The workload lives in ``campaigns/fig14_15.toml``; this driver runs the
spec (store-covered steps are skipped with zero decode work) and
reshapes the consolidated payload into the legacy layout.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    run_campaign_spec,
    run_once,
    save_results,
)

from repro.eval.reporting import format_scientific, format_table  # noqa: E402

ERROR_RATES = (1e-4, 2e-4, 3e-4, 4e-4, 5e-4)
# Components first, then the derived parallel configurations -- the
# estimator's own assembly order, kept so the artifact bytes match the
# legacy driver's.
NAMES = (
    "MWPM",
    "Promatch+Astrea",
    "Astrea-G",
    "Smith+Astrea",
    "Promatch || AG",
    "Smith || AG",
)


def run_sweep() -> dict:
    result = run_campaign_spec("fig14_15.toml")
    payload = {"error_rates": list(ERROR_RATES), "series": {}}
    for outcome in result.outcomes:
        step = outcome.step
        decoders = outcome.payload["decoders"]
        per_p = payload["series"].setdefault(str(step.distance), {})
        per_p[f"{step.p:.0e}"] = {
            name: decoders[name]["ler"] for name in NAMES
        }
    return payload


def bench_fig14_15_error_rate_sweep(benchmark):
    payload = run_once(benchmark, run_sweep)
    for distance, per_p in payload["series"].items():
        rates = list(per_p)
        rows = [
            [name] + [format_scientific(per_p[r][name]) for r in rates]
            for name in NAMES
        ]
        print()
        print(
            format_table(
                ["Decoder"] + [f"p={r}" for r in rates],
                rows,
                title=f"Figures 14/15 | LER vs p, d={distance}",
            )
        )
    save_results("fig14_15_error_rate_sweep", payload)
