"""Tables 7 and 8: FPGA utilization and on-chip storage.

Paper's numbers:

    Table 7: edge-processing pipeline, 3% LUT / 1% FF at 250 MHz
             (Kintex UltraScale+).
    Table 8: Edge Table 3.6 KB (d=11) / 6 KB (d=13);
             Path Table 129 KB (d=11) / 345 KB (d=13).

This bench regenerates both from the *actual* decoding graphs this
reproduction builds (edge counts and detector counts), through the
analytic models in :mod:`repro.hardware.resources`.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import get_workbench, run_once, save_results  # noqa: E402

from repro.hardware.resources import (  # noqa: E402
    estimate_fpga_utilization,
    estimate_storage,
)
from repro.eval.reporting import format_table  # noqa: E402

P = 1e-4
PAPER_TABLE8 = {11: (3.6, 129.0), 13: (6.0, 345.0)}


def run_hardware() -> dict:
    payload = {"storage": {}, "utilization": {}}
    for distance in (11, 13):
        graph = get_workbench(distance, P).graph
        estimate = estimate_storage(graph)
        payload["storage"][str(distance)] = {
            "n_detectors": estimate.n_detectors,
            "n_edges": estimate.n_edges,
            "edge_table_kb": estimate.edge_table_kb,
            "path_table_kb": estimate.path_table_kb,
        }
    util = estimate_fpga_utilization()
    payload["utilization"] = {
        "luts": util.luts,
        "lut_percent": util.lut_percent,
        "flip_flops": util.flip_flops,
        "ff_percent": util.ff_percent,
        "clock_mhz": util.clock_mhz,
    }
    return payload


def bench_table7_8_hardware(benchmark):
    payload = run_once(benchmark, run_hardware)
    rows = []
    for distance, stats in payload["storage"].items():
        paper_edge, paper_path = PAPER_TABLE8[int(distance)]
        rows.append(
            [
                distance,
                f"{stats['edge_table_kb']:.1f} KB",
                f"{paper_edge} KB",
                f"{stats['path_table_kb']:.1f} KB",
                f"{paper_path} KB",
            ]
        )
    print()
    print(
        format_table(
            ["d", "Edge table", "(paper)", "Path table", "(paper)"],
            rows,
            title="Table 8 | storage requirements",
        )
    )
    util = payload["utilization"]
    print()
    print(
        format_table(
            ["Resource", "Used", "Percent", "(paper)"],
            [
                ["LUT", str(util["luts"]), f"{util['lut_percent']:.1f}%", "3%"],
                ["FF", str(util["flip_flops"]), f"{util['ff_percent']:.1f}%", "1%"],
                ["Clock", f"{util['clock_mhz']} MHz", "-", "250 MHz"],
            ],
            title="Table 7 | FPGA utilization (edge-processing pipeline)",
        )
    )
    save_results("table7_8_hardware", payload)
