"""Decoding-service benchmark: micro-batching vs per-request decode.

The workload is replicated-shard replay: ``serve_clients()`` clients
each stream the *same* fixed-seed d=9 shard of distinct sampled
syndromes through the service (the way sweep shards consume a stored
batch), per decoder config.  That is the cross-client coalescing regime
the micro-batching window exists for — at any instant the in-flight
requests of different clients overlap heavily, so one coalesced
``decode_batch`` call serves each distinct syndrome once for ~clients
submissions of it.

Two ways to serve it:

* **per-request** -- every request decoded individually (one ``decode``
  call per arrival), the way a naive service would;
* **micro-batch** -- the real :class:`~repro.serve.server.DecodeService`
  front end coalescing across clients inside the batching window.

Results must be element-wise identical; the bench additionally replays a
forced-fault schedule on the virtual clock to confirm failure isolation,
and asserts the micro-batching throughput beats per-request by
``serve_speedup_floor()`` (2x by default; CI smoke drops the floor since
at toy scale the asyncio overhead, not decoding, dominates).

The artifact lands in ``benchmarks/results/serve_microbatch.json`` with
sustained throughput and p50/p95/p99 tail latency for both modes.
"""

from __future__ import annotations

import asyncio
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    get_workbench,
    run_once,
    save_results,
    serve_clients,
    serve_decoders,
    serve_distance,
    serve_max_batch,
    serve_p,
    serve_requests,
    serve_speedup_floor,
    serve_window_ms,
)

from repro.serve import (  # noqa: E402
    DecodeService,
    DecoderPool,
    FaultyDecoder,
    InjectedFault,
    VirtualClock,
    poisson_arrivals,
    run_traffic,
    shard_replay_arrivals,
)

SEED = 20240803


def _quantiles_ms(samples) -> dict:
    if not len(samples):
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    p50, p95, p99 = np.percentile(np.asarray(samples, dtype=float), [50, 95, 99])
    return {
        "p50_ms": float(p50) * 1e3,
        "p95_ms": float(p95) * 1e3,
        "p99_ms": float(p99) * 1e3,
    }


def _schedule(bench, names):
    """The fixed-seed replicated-shard schedule shared by both modes."""
    clients = serve_clients()
    keys = {name: bench.store_key(f"serve:{name}") for name in names}
    shard_len = max(1, serve_requests() // (clients * len(names)))
    batch = bench.sample(4 * shard_len)
    shard, seen = [], set()
    for events in batch.events:
        syndrome = tuple(int(e) for e in events)
        if syndrome not in seen:
            seen.add(syndrome)
            shard.append(syndrome)
        if len(shard) == shard_len:
            break
    arrivals = shard_replay_arrivals(
        {keys[name]: shard for name in names},
        clients=clients,
        rate_hz=None,  # saturation: offered load exceeds capacity
        rng=SEED,
    )
    return keys, arrivals


def _per_request(decoders_by_key, arrivals):
    """The naive service: one decode call per arrival, no coalescing."""
    latencies = []
    results = []
    start = time.perf_counter()
    for arrival in arrivals:
        t0 = time.perf_counter()
        results.append(decoders_by_key[arrival.config].decode(arrival.events))
        latencies.append(time.perf_counter() - t0)
    seconds = time.perf_counter() - start
    return results, seconds, latencies


def _micro_batch(pool, arrivals):
    """The real service front end on the event-loop clock."""

    async def main():
        service = DecodeService(
            pool,
            window=serve_window_ms() / 1e3,
            max_batch=serve_max_batch(),
            max_pending=max(4096, len(arrivals)),
        )
        start = time.perf_counter()
        outcomes = await run_traffic(service, arrivals)
        seconds = time.perf_counter() - start
        latencies = [
            latency
            for account in service.accounts.values()
            for latency in account.latencies
        ]
        batches = service.batches_flushed
        await service.close()
        return outcomes, seconds, latencies, batches

    return asyncio.run(main())


def _check_fault_isolation(bench, names) -> bool:
    """Forced-fault replay on the virtual clock: only poisoned requests fail."""
    batch = bench.sample(256)
    syndromes = [tuple(int(e) for e in ev) for ev in batch.events]
    poisoned = next((ev for ev in syndromes if ev), None)
    if poisoned is None:
        return False

    async def main():
        pool = DecoderPool()
        key = "faulted"
        pool.register(
            key, FaultyDecoder(bench.decoders[names[0]], fail_on=[poisoned]),
            warm=False,
        )
        arrivals = poisson_arrivals(
            {key: syndromes}, requests=200, clients=serve_clients(), rng=SEED
        )
        service = DecodeService(pool, clock=VirtualClock(), window=1e-3)
        outcomes = await run_traffic(service, arrivals)
        await service.close()
        poisoned_fail = all(
            isinstance(o.error, InjectedFault)
            for o in outcomes if o.arrival.events == poisoned
        )
        healthy_ok = all(
            o.ok for o in outcomes if o.arrival.events != poisoned
        )
        return poisoned_fail and healthy_ok

    return bool(asyncio.run(main()))


def bench_serve_microbatch(benchmark):
    """Sustained service throughput: coalescing vs per-request decode."""
    distance, p = serve_distance(), serve_p()
    bench = get_workbench(distance, p)
    bench.graph.ensure_distances()
    names = serve_decoders()
    unknown = [n for n in names if n not in bench.decoders]
    assert not unknown, f"unknown serve decoders: {unknown}"
    keys, arrivals = _schedule(bench, names)
    decoders_by_key = {keys[name]: bench.decoders[name] for name in names}

    pool = DecoderPool()
    for name in names:
        pool.register(keys[name], bench.decoders[name])  # warm

    # Warm the per-request path's lazy state identically before timing.
    for decoder in decoders_by_key.values():
        decoder.decode_batch([()])

    loop_results, loop_s, loop_latencies = _per_request(
        decoders_by_key, arrivals
    )
    outcomes, serve_s, serve_latencies, batches = run_once(
        benchmark, lambda: _micro_batch(pool, arrivals)
    )

    assert all(o.ok for o in outcomes)
    stream_equals_batch = all(
        o.result == expected for o, expected in zip(outcomes, loop_results)
    )
    assert stream_equals_batch, "streamed results diverged from per-request"
    fault_isolation = _check_fault_isolation(bench, names)
    assert fault_isolation, "fault isolation failed under forced faults"

    requests = len(arrivals)
    speedup = loop_s / serve_s
    per_request = {
        "seconds": loop_s,
        "shots_per_s": requests / loop_s,
        **_quantiles_ms(loop_latencies),
    }
    microbatch = {
        "seconds": serve_s,
        "shots_per_s": requests / serve_s,
        "batches_flushed": batches,
        **_quantiles_ms(serve_latencies),
    }

    print()
    print(f"decode service, d={distance}, p={p:g}, {requests} requests "
          f"({serve_clients()} clients x shared shard), "
          f"{len(names)} configs ({', '.join(names)}), "
          f"window {serve_window_ms()} ms, max batch {serve_max_batch()}:")
    for label, stats in (("per-request", per_request),
                         ("micro-batch", microbatch)):
        print(f"  {label:12s} {stats['shots_per_s']:10.0f} req/s   "
              f"p50 {stats['p50_ms']:7.3f} ms   "
              f"p95 {stats['p95_ms']:7.3f} ms   "
              f"p99 {stats['p99_ms']:7.3f} ms")
    print(f"  speedup {speedup:5.1f}x   stream == batch: "
          f"{'OK' if stream_equals_batch else 'FAILED'}   "
          f"fault isolation: {'OK' if fault_isolation else 'FAILED'}")

    floor = serve_speedup_floor()
    assert speedup >= floor, (
        f"micro-batching speedup {speedup:.2f}x below the {floor}x floor"
    )

    benchmark.extra_info["speedup"] = speedup
    save_results("serve_microbatch", {
        "distance": distance,
        "p": p,
        "requests": requests,
        "window_ms": serve_window_ms(),
        "max_batch": serve_max_batch(),
        "clients": serve_clients(),
        "configs": {name: keys[name] for name in names},
        "per_request": per_request,
        "microbatch": microbatch,
        "speedup": speedup,
        "stream_equals_batch": stream_equals_batch,
        "fault_isolation": fault_isolation,
    })
