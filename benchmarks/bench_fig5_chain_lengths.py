"""Figure 5: error-chain length distribution on high-HW syndromes.

Paper's claim (d=13, p=1e-4, HW > 10 syndromes decoded by MWPM):
"More than 90% of error chains ... has length of 1" -- the physical
justification for locality-aware predecoding.

Shape criteria: length-1 mass > 0.9 at d = 13 and a steeply decaying
tail.

The workload lives in ``campaigns/fig5.toml``; census results are
cached as store artifacts, so a covered re-run performs no decoding.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    run_campaign_spec,
    run_once,
    save_results,
)

from repro.eval.reporting import format_table  # noqa: E402

P = 1e-4
MAX_LENGTH = 8


def run_fig5() -> dict:
    result = run_campaign_spec("fig5.toml")
    payload = {"p": P, "histograms": {}}
    for outcome in result.outcomes:
        payload["histograms"][str(outcome.step.distance)] = list(
            outcome.payload["data"]["histogram"]
        )
    return payload


def bench_fig5_chain_lengths(benchmark):
    payload = run_once(benchmark, run_fig5)
    distances = list(payload["histograms"])
    rows = []
    for length in range(1, MAX_LENGTH + 1):
        label = f"{length}" if length < MAX_LENGTH else f">={MAX_LENGTH}"
        rows.append(
            [label]
            + [
                f"{payload['histograms'][d][length]:.4f}"
                for d in distances
            ]
        )
    print()
    print(
        format_table(
            ["Chain length"] + [f"d={d}" for d in distances],
            rows,
            title="Figure 5 | MWPM chain-length distribution, HW>10 syndromes",
        )
    )
    for d in distances:
        print(f"  d={d}: length-1 fraction = {payload['histograms'][d][1]:.3f}"
              " (paper: >0.9)")
    save_results("fig5_chain_lengths", payload)
