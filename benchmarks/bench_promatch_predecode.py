"""Promatch predecode throughput: batched+incremental vs dedup-only.

The high-HW censuses (Figures 16/17, Tables 4-6) push census-sized
batches of *all-distinct* heavy syndromes through
``PromatchPredecoder.predecode_batch``.  With every syndrome distinct the
shared dedup fast path degenerates to the per-shot loop, so throughput is
set entirely by the per-syndrome engine:

* ``dedup-only`` -- :class:`ReferencePromatchPredecoder.predecode_batch`,
  the historic path: rebuild the decoding subgraph from the residual
  events every round (per-node ``graph.neighbors`` walk) and run the
  scalar per-edge candidate scan;
* ``batched+incremental`` -- :class:`PromatchPredecoder.predecode_batch`:
  one vectorized columnar subgraph construction per syndrome, in-place
  node removal between rounds, vectorized candidate scans.

The same workload is also pushed through the full ``Promatch + Astrea``
pipeline both ways: the batched ``PredecodedDecoder.decode_uniques`` core
(second-level residual dedup + Astrea's budget-aware matching cache)
against a pipeline pinned to the historic dedup-only per-unique loop.

Results must be element-wise identical (the reference predecoder's
distinct ``name`` only surfaces inside pipeline failure strings, so the
pipeline comparison strips ``failure_reason``); the artifact records
shots/sec for both engines plus the speedup (acceptance bar: >= 3x).
Every engine is timed ``REPRO_BENCH_PROMATCH_REPEATS`` times and the
fastest pass is kept -- predecode batches are sub-second, so one
scheduler preemption otherwise dominates the measurement.  The CI smoke
job shrinks the workload via ``REPRO_BENCH_PROMATCH_SHOTS_PER_K``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    get_workbench,
    promatch_distance,
    promatch_k_max,
    promatch_p,
    promatch_repeats,
    promatch_shots_per_k,
    run_once,
    save_results,
)

from repro.core import PromatchPredecoder, ReferencePromatchPredecoder  # noqa: E402
from repro.decoders import AstreaDecoder, PredecodedDecoder  # noqa: E402
from repro.decoders.base import Decoder, unique_syndromes  # noqa: E402
from repro.eval.reporting import format_table  # noqa: E402


class _DedupOnlyPipeline(PredecodedDecoder):
    """``PredecodedDecoder`` pinned to the historic batch path.

    Restores the base per-unique scalar loop ("dedup IS the batch
    implementation"), bypassing the batched ``decode_uniques`` core --
    the baseline the pipeline measurement compares against.
    """

    decode_uniques = Decoder.decode_uniques


def _best_of(repeats: int, fn):
    """Run ``fn`` ``repeats`` times; return (fastest seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_promatch_predecode() -> dict:
    distance, p = promatch_distance(), promatch_p()
    shots_per_k, k_max = promatch_shots_per_k(), promatch_k_max()
    repeats = promatch_repeats()
    bench = get_workbench(distance, p)
    batch = bench.sample_high_hw(
        shots_per_k=shots_per_k, k_max=k_max, rng=20260727
    )
    uniques, _inverse = unique_syndromes(batch)
    bench.graph.ensure_distances()  # warm the shared shortest-path cache

    incremental = PromatchPredecoder(bench.graph)
    reference = ReferencePromatchPredecoder(bench.graph)
    dedup_s, dedup_results = _best_of(
        repeats, lambda: reference.predecode_batch(batch)
    )
    fast_s, fast_results = _best_of(
        repeats, lambda: incremental.predecode_batch(batch)
    )
    assert fast_results == dedup_results, (
        "incremental Promatch diverged from the rebuild-per-round reference"
    )

    pipeline_fast = PredecodedDecoder(
        bench.graph, incremental, AstreaDecoder(bench.graph)
    )
    pipeline_dedup = _DedupOnlyPipeline(
        bench.graph, reference, AstreaDecoder(bench.graph)
    )
    pipe_dedup_s, pipe_dedup_results = _best_of(
        repeats, lambda: pipeline_dedup.decode_batch(batch)
    )
    pipe_fast_s, pipe_fast_results = _best_of(
        repeats, lambda: pipeline_fast.decode_batch(batch)
    )
    # The engines are interchangeable except for the reference's distinct
    # ``name``, which leaks into pipeline failure strings.
    assert [replace(r, failure_reason="") for r in pipe_fast_results] == [
        replace(r, failure_reason="") for r in pipe_dedup_results
    ], "batched pipeline diverged from the dedup-only pipeline"

    return {
        "distance": distance,
        "p": p,
        "shots_per_k": shots_per_k,
        "k_max": k_max,
        "repeats": repeats,
        "shots": batch.shots,
        "unique_syndromes": len(uniques),
        "dedup_shots_per_s": batch.shots / dedup_s,
        "incremental_shots_per_s": batch.shots / fast_s,
        "speedup": dedup_s / fast_s,
        "pipeline_dedup_shots_per_s": batch.shots / pipe_dedup_s,
        "pipeline_batched_shots_per_s": batch.shots / pipe_fast_s,
        "pipeline_speedup": pipe_dedup_s / pipe_fast_s,
    }


def bench_promatch_predecode(benchmark):
    payload = run_once(benchmark, run_promatch_predecode)
    print()
    print(format_table(
        ["path", "shots/s"],
        [
            ["predecode dedup-only (reference)",
             f"{payload['dedup_shots_per_s']:.0f}"],
            ["predecode batched+incremental",
             f"{payload['incremental_shots_per_s']:.0f}"],
            ["pipeline dedup-only",
             f"{payload['pipeline_dedup_shots_per_s']:.0f}"],
            ["pipeline batched",
             f"{payload['pipeline_batched_shots_per_s']:.0f}"],
        ],
        title=(
            f"Promatch predecode batch | d={payload['distance']}, "
            f"p={payload['p']:g}, {payload['shots']} high-HW shots "
            f"({payload['unique_syndromes']} distinct) | "
            f"predecode speedup {payload['speedup']:.1f}x, "
            f"pipeline speedup {payload['pipeline_speedup']:.1f}x"
        ),
    ))
    save_results("promatch_predecode_batch", payload)
