"""Figure 2(c): why each real-time decoder class stops scaling.

The paper's Figure 2(c) charts the real-time frontier: LILLIPUT (lookup
tables) reaches d = 5, Astrea d = 7-9, and beyond that only non-real-
time software MWPM existed before Promatch.  This bench regenerates the
quantitative skeleton behind that chart:

* LUT storage (2^detectors) against Promatch's polynomial tables,
* Astrea's brute-force search cycles against the 240-cycle budget,
* which decoder classes remain feasible at each distance.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import run_once, save_results  # noqa: E402

from repro.decoders.lookup import (  # noqa: E402
    lut_storage_bits,
    memory_experiment_detector_count,
)
from repro.eval.reporting import format_table  # noqa: E402
from repro.hardware.latency import BUDGET_CYCLES, astrea_cycles  # noqa: E402
from repro.matching.exact import involution_count  # noqa: E402

DISTANCES = (3, 5, 7, 9, 11, 13)

#: Mean high-HW syndrome Hamming weight scales with distance; the search
#: the paper quotes is over the HW the decoder must guarantee: 2 flips
#: per correctable chain -> HW up to d - 1.
GUARANTEED_HW = {d: d - 1 for d in DISTANCES}


def run_scaling() -> dict:
    rows = {}
    for d in DISTANCES:
        n_det = memory_experiment_detector_count(d)
        lut_bits = lut_storage_bits(min(n_det, 120))  # cap the bigint blowup
        lut_feasible = n_det <= 30
        hw = GUARANTEED_HW[d]
        search = involution_count(min(hw, 14))
        astrea_feasible = astrea_cycles(min(hw, 14)) <= BUDGET_CYCLES
        promatch_feasible = d <= 13  # the paper's demonstrated reach
        rows[str(d)] = {
            "detectors": n_det,
            "lut_bits_log2": float(n_det),  # log2 of exact table size
            "lut_feasible": lut_feasible,
            "guaranteed_hw": hw,
            "astrea_search_space": search,
            "astrea_feasible": astrea_feasible,
            "promatch_feasible": promatch_feasible,
        }
    return {"rows": rows}


def bench_fig2c_decoder_scaling(benchmark):
    payload = run_once(benchmark, run_scaling)
    rows = []
    for d, stats in payload["rows"].items():
        rows.append(
            [
                d,
                str(stats["detectors"]),
                f"2^{int(stats['lut_bits_log2'])}",
                "yes" if stats["lut_feasible"] else "NO",
                str(stats["astrea_search_space"]),
                "yes" if stats["astrea_feasible"] else "NO",
                "yes" if stats["promatch_feasible"] else "NO",
            ]
        )
    print()
    print(
        format_table(
            [
                "d",
                "detectors",
                "LUT entries",
                "LUT RT?",
                "Astrea search (HW=d-1)",
                "Astrea RT?",
                "Promatch RT?",
            ],
            rows,
            title="Figure 2(c) | real-time feasibility by decoder class",
        )
    )
    save_results("fig2c_decoder_scaling", payload)
