"""Shared benchmark plumbing: scaling knobs, workbench cache, result files.

Every benchmark regenerates one table or figure of the paper.  Shot
counts are laptop-scale by default and adjustable through environment
variables:

* ``REPRO_BENCH_SHOTS_PER_K``  -- syndromes per injected-fault count
  (Eq. (1) workloads; default 250).
* ``REPRO_BENCH_CENSUS_SHOTS`` -- syndromes per k for the high-HW
  censuses (default 150).
* ``REPRO_BENCH_KMAX``         -- largest injected-fault count (default 16).
* ``REPRO_BENCH_DISTANCES``    -- comma-separated distances for the
  headline tables (default "11,13").
* ``REPRO_BENCH_SHARDS``       -- worker processes for the Eq. (1)
  estimators (default 1 = inline; estimates are identical either way).
* ``REPRO_BENCH_BATCH_SIZE``   -- cap on shots per decode_batch call
  (default 0 = unbounded).
* ``REPRO_BENCH_SPEEDUP_DISTANCE`` / ``REPRO_BENCH_SPEEDUP_SHOTS`` --
  workload of the batch-vs-loop speedup bench (defaults 5 / 20000;
  CI smoke shrinks both).

Each benchmark prints its table (so ``pytest benchmarks/ --benchmark-only
-s`` shows the paper-shaped output) and writes a JSON artifact under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.eval.experiments import Workbench
from repro.utils.rng import stable_seed

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def shots_per_k() -> int:
    return env_int("REPRO_BENCH_SHOTS_PER_K", 250)


def census_shots() -> int:
    return env_int("REPRO_BENCH_CENSUS_SHOTS", 150)


def k_max() -> int:
    return env_int("REPRO_BENCH_KMAX", 16)


def headline_distances() -> List[int]:
    raw = os.environ.get("REPRO_BENCH_DISTANCES", "11,13")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def eval_shards() -> int:
    return max(1, env_int("REPRO_BENCH_SHARDS", 1))


def eval_batch_size() -> Optional[int]:
    value = env_int("REPRO_BENCH_BATCH_SIZE", 0)
    return value if value > 0 else None


_WORKBENCHES: Dict = {}


def get_workbench(distance: int, p: float) -> Workbench:
    """Process-wide workbench cache (graphs and distances are reused)."""
    key = (distance, p)
    if key not in _WORKBENCHES:
        _WORKBENCHES[key] = Workbench.build(
            distance=distance, p=p, rng=stable_seed("bench", distance, p)
        )
    return _WORKBENCHES[key]


def save_results(name: str, payload: dict) -> Path:
    """Persist a benchmark's numbers for the EXPERIMENTS.md comparison."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with path.open("w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
