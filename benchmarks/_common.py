"""Shared benchmark plumbing: scaling knobs, workbench cache, result files.

Every benchmark regenerates one table or figure of the paper.  Shot
counts are laptop-scale by default and adjustable through the knob
registry (:mod:`repro.eval.knobs`): every knob has one definition (env
var, parser, default) and one precedence rule --

    CLI flag  >  environment variable  >  spec value  >  default

-- shared with campaign specs (:mod:`repro.eval.campaign`) and the CLI,
so ``REPRO_BENCH_*`` env vars keep working exactly as before and now
also override whatever a campaign spec declares.  The env vars:

* ``REPRO_BENCH_SHOTS_PER_K``  -- syndromes per injected-fault count
  (Eq. (1) workloads; default 250).
* ``REPRO_BENCH_CENSUS_SHOTS`` -- syndromes per k for the high-HW
  censuses (default 150).
* ``REPRO_BENCH_KMAX``         -- largest injected-fault count (default 16).
* ``REPRO_BENCH_DISTANCES``    -- comma-separated distances for the
  headline tables (default "11,13").
* ``REPRO_BENCH_SHARDS``       -- worker processes for the Eq. (1)
  estimators (default 1 = inline; estimates are identical either way).
* ``REPRO_BENCH_CENSUS_SHARDS`` -- worker processes for the high-HW
  censuses (default = ``REPRO_BENCH_SHARDS``; identical results).
* ``REPRO_BENCH_BATCH_SIZE``   -- cap on shots per decode_batch call
  (default 0 = unbounded).
* ``REPRO_BENCH_STORE``        -- experiment-store file (``--store``):
  every completed Eq. (1) / direct-MC work slice is persisted so a
  killed sweep keeps its progress (default unset = no store).
* ``REPRO_BENCH_RESUME``       -- ``1`` replays slices already in the
  store and runs only the residual shots (``--resume``); bitwise
  identical to an uninterrupted run.  Default 1 when a store is set.
  (Campaign-backed drivers always resume -- the store is their cache.)
* ``REPRO_BENCH_MIN_REL_PRECISION`` -- optional relative-precision
  target (``--min-rel-precision``): shots keep doubling on the widest
  k rows until every decoder's statistical CI width is below
  ``target * LER`` (default unset = fixed budgets).
* ``REPRO_BENCH_GRID``             -- the sweep benchmark's operating
  grid as ``"d1,d2:p1,p2"`` (distances before the colon, error rates
  after; default = the headline distances x the Figures 14/15 rates).
* ``REPRO_BENCH_SPEEDUP_DISTANCE`` / ``REPRO_BENCH_SPEEDUP_SHOTS`` --
  workload of the batch-vs-loop speedup bench (defaults 5 / 20000;
  CI smoke shrinks both).
* ``REPRO_BENCH_AFS_DISTANCE`` / ``REPRO_BENCH_AFS_P`` /
  ``REPRO_BENCH_AFS_SHOTS`` -- operating point of the AFS union-find
  growth-engine bench (defaults 9 / 3e-3 / 20000: the regime where
  syndromes stop repeating and dedup stops paying; CI smoke shrinks
  the shot count).
* ``REPRO_BENCH_SERVE_DISTANCE`` / ``REPRO_BENCH_SERVE_P`` /
  ``REPRO_BENCH_SERVE_REQUESTS`` / ``REPRO_BENCH_SERVE_WINDOW_MS`` /
  ``REPRO_BENCH_SERVE_MAX_BATCH`` / ``REPRO_BENCH_SERVE_CLIENTS`` /
  ``REPRO_BENCH_SERVE_DECODERS`` / ``REPRO_BENCH_SERVE_SPEEDUP_FLOOR``
  -- workload of the decoding-service bench (defaults 9 / 3e-3 / 4000
  / 1.0 / 256 / 4 / "Promatch+Astrea,UnionFind" / 2.0: replicated
  clients streaming one heavy d=9 shard, the cross-client coalescing
  regime; CI smoke shrinks the scale and drops the speedup floor,
  which only means anything at full scale).
* ``REPRO_BENCH_PROMATCH_DISTANCE`` / ``REPRO_BENCH_PROMATCH_P`` /
  ``REPRO_BENCH_PROMATCH_SHOTS_PER_K`` / ``REPRO_BENCH_PROMATCH_KMAX``
  / ``REPRO_BENCH_PROMATCH_REPEATS`` -- workload of the Promatch
  predecode bench (defaults 9 / 1e-3 / 20 / 40 / 5: a d=9 census-style
  batch of all-distinct high-HW syndromes with a heavy tail, the
  regime where predecoding rounds dominate; every engine is timed
  ``REPEATS`` times and the fastest pass is kept, damping scheduler
  noise on loaded machines; CI smoke shrinks the shot count).

Most paper drivers are thin wrappers around a checked-in campaign spec
under ``benchmarks/campaigns/`` (see docs/campaigns.md): the spec
declares the step grid, :func:`run_campaign_spec` executes it against
the shared store and pool, and the driver reshapes the consolidated
payload into the legacy table layout.  Steps already covered by the
store are skipped with zero decode work.

When ``REPRO_BENCH_SHARDS > 1`` every driver shares one persistent
:func:`worker_pool` (a :class:`repro.eval.pool.WorkerPool`), so a bench
session forks its worker set once instead of once per estimator round.

Each benchmark prints its table (so ``pytest benchmarks/ --benchmark-only
-s`` shows the paper-shaped output) and writes a JSON artifact under
``benchmarks/results/`` for EXPERIMENTS.md; the artifact embeds the
run context (shot knobs, store/resume state) so resumed and fresh
sweeps are distinguishable after the fact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.eval.experiments import Workbench
from repro.eval.knobs import (
    CORE_KNOBS,
    parse_float,
    parse_int,
)
from repro.eval.pool import WorkerPool
from repro.eval.store import ExperimentStore, atomic_write_json
from repro.utils.rng import stable_seed

RESULTS_DIR = Path(__file__).resolve().parent / "results"
CAMPAIGNS_DIR = Path(__file__).resolve().parent / "campaigns"


def _parse_grid(text: str) -> Tuple[List[int], List[float]]:
    distance_part, _, rate_part = text.partition(":")
    distances = [int(tok) for tok in distance_part.split(",") if tok.strip()]
    rates = [float(tok) for tok in rate_part.split(",") if tok.strip()]
    if not distances or not rates:
        raise ValueError(
            f"REPRO_BENCH_GRID must look like 'd1,d2:p1,p2', got {text!r}"
        )
    return distances, rates


#: The bench knob registry: the core workload knobs shared with campaign
#: specs and the CLI, plus the benchmark-only extras below.
KNOBS = CORE_KNOBS
KNOBS.register("afs_distance", "REPRO_BENCH_AFS_DISTANCE", parse_int, 9,
               "AFS growth-engine bench code distance")
KNOBS.register("afs_p", "REPRO_BENCH_AFS_P", parse_float, 3e-3,
               "AFS growth-engine bench physical error rate")
KNOBS.register("afs_shots", "REPRO_BENCH_AFS_SHOTS", parse_int, 20000,
               "AFS growth-engine bench shots")
KNOBS.register("promatch_distance", "REPRO_BENCH_PROMATCH_DISTANCE",
               parse_int, 9, "Promatch predecode bench code distance")
KNOBS.register("promatch_p", "REPRO_BENCH_PROMATCH_P", parse_float, 1e-3,
               "Promatch predecode bench physical error rate")
KNOBS.register("promatch_shots_per_k", "REPRO_BENCH_PROMATCH_SHOTS_PER_K",
               parse_int, 20, "Promatch predecode bench shots per k")
KNOBS.register("promatch_k_max", "REPRO_BENCH_PROMATCH_KMAX", parse_int, 40,
               "Promatch predecode bench largest fault count")
KNOBS.register("promatch_repeats", "REPRO_BENCH_PROMATCH_REPEATS",
               parse_int, 5, "Promatch predecode bench timing repeats")
KNOBS.register("speedup_distance", "REPRO_BENCH_SPEEDUP_DISTANCE",
               parse_int, 5, "batch-vs-loop speedup bench code distance")
KNOBS.register("speedup_shots", "REPRO_BENCH_SPEEDUP_SHOTS", parse_int,
               20000, "batch-vs-loop speedup bench shots")
KNOBS.register("serve_distance", "REPRO_BENCH_SERVE_DISTANCE", parse_int, 9,
               "serving bench code distance")
KNOBS.register("serve_p", "REPRO_BENCH_SERVE_P", parse_float, 3e-3,
               "serving bench physical error rate")
KNOBS.register("serve_requests", "REPRO_BENCH_SERVE_REQUESTS", parse_int,
               4000, "serving bench total requests")
KNOBS.register("serve_window_ms", "REPRO_BENCH_SERVE_WINDOW_MS", parse_float,
               1.0, "serving bench micro-batching window (ms)")
KNOBS.register("serve_max_batch", "REPRO_BENCH_SERVE_MAX_BATCH", parse_int,
               256, "serving bench early-flush batch size")
KNOBS.register("serve_clients", "REPRO_BENCH_SERVE_CLIENTS", parse_int, 4,
               "serving bench replicated clients per shard")
KNOBS.register("serve_decoders", "REPRO_BENCH_SERVE_DECODERS", str,
               "Promatch+Astrea,UnionFind",
               "serving bench decoder zoo (comma-separated)")
KNOBS.register("serve_speedup_floor", "REPRO_BENCH_SERVE_SPEEDUP_FLOOR",
               parse_float, 2.0,
               "minimum micro-batch/per-request throughput ratio the "
               "bench asserts (CI smoke sets 0 at toy scale)")
KNOBS.register("grid", "REPRO_BENCH_GRID", _parse_grid, None,
               "sweep bench operating grid as 'd1,d2:p1,p2'")


def shots_per_k() -> int:
    return int(KNOBS.resolve("shots_per_k"))


def census_shots() -> int:
    return int(KNOBS.resolve("census_shots"))


def k_max() -> int:
    return int(KNOBS.resolve("k_max"))


def headline_distances() -> List[int]:
    return [int(d) for d in KNOBS.resolve("distances")]


def afs_distance() -> int:
    return int(KNOBS.resolve("afs_distance"))


def afs_p() -> float:
    return float(KNOBS.resolve("afs_p"))


def afs_shots() -> int:
    return int(KNOBS.resolve("afs_shots"))


def promatch_distance() -> int:
    return int(KNOBS.resolve("promatch_distance"))


def promatch_p() -> float:
    return float(KNOBS.resolve("promatch_p"))


def promatch_shots_per_k() -> int:
    return int(KNOBS.resolve("promatch_shots_per_k"))


def promatch_k_max() -> int:
    return int(KNOBS.resolve("promatch_k_max"))


def promatch_repeats() -> int:
    return max(1, int(KNOBS.resolve("promatch_repeats")))


def speedup_distance() -> int:
    return int(KNOBS.resolve("speedup_distance"))


def speedup_shots() -> int:
    return int(KNOBS.resolve("speedup_shots"))


def serve_distance() -> int:
    return int(KNOBS.resolve("serve_distance"))


def serve_p() -> float:
    return float(KNOBS.resolve("serve_p"))


def serve_requests() -> int:
    return int(KNOBS.resolve("serve_requests"))


def serve_window_ms() -> float:
    return float(KNOBS.resolve("serve_window_ms"))


def serve_max_batch() -> int:
    return int(KNOBS.resolve("serve_max_batch"))


def serve_clients() -> int:
    return int(KNOBS.resolve("serve_clients"))


def serve_decoders() -> List[str]:
    value = KNOBS.resolve("serve_decoders")
    return [n.strip() for n in value.split(",") if n.strip()]


def serve_speedup_floor() -> float:
    return float(KNOBS.resolve("serve_speedup_floor"))


def eval_shards() -> int:
    return max(1, int(KNOBS.resolve("shards")))


def eval_batch_size() -> Optional[int]:
    return KNOBS.resolve("batch_size")


def census_shards() -> int:
    value = KNOBS.resolve("census_shards")
    return eval_shards() if value is None else max(1, int(value))


def grid_from_env() -> Tuple[List[int], List[float]]:
    """The sweep benchmark's (distances, error rates) operating grid.

    ``REPRO_BENCH_GRID`` is ``"d1,d2:p1,p2"``; unset falls back to the
    headline distances x the Figures 14/15 error-rate range.
    """
    value = KNOBS.resolve("grid")
    if value is None:
        return headline_distances(), [1e-4, 3e-4, 5e-4]
    return value


_WORKER_POOL: Optional[WorkerPool] = None


def worker_pool() -> Optional[WorkerPool]:
    """The bench session's shared persistent worker pool.

    One :class:`WorkerPool` of ``eval_shards()`` processes serves every
    driver in the process (``None`` when sharding is off), so the fork
    cost is paid once per bench session rather than once per estimator
    round; results are identical either way.
    """
    global _WORKER_POOL
    if eval_shards() <= 1:
        return None
    if _WORKER_POOL is None:
        _WORKER_POOL = WorkerPool(eval_shards())
    return _WORKER_POOL


def experiment_store() -> Optional[ExperimentStore]:
    """The shared experiment store, or ``None`` when not configured."""
    path = KNOBS.resolve("store")
    return ExperimentStore(path) if path else None


def resume_enabled() -> bool:
    """Resume defaults on whenever a store is configured."""
    return bool(KNOBS.resolve("resume"))


def min_rel_precision() -> Optional[float]:
    value = KNOBS.resolve("min_rel_precision")
    return None if value is None else float(value)


def ler_store_kwargs(bench: Workbench, kind: str = "eq1") -> dict:
    """Store/resume/precision kwargs for one estimator call.

    The store key is derived from the workbench's full configuration
    (code, distance, rounds, noise, p, estimator kind), so each
    operating point of a sweep owns an independent set of slices in the
    shared store file.
    """
    store = experiment_store()
    return dict(
        store=store,
        store_key=bench.store_key(kind) if store is not None else None,
        resume=store is not None and resume_enabled(),
        min_rel_precision=min_rel_precision(),
    )


def run_campaign_spec(spec_name: str, progress=None):
    """Run one checked-in campaign spec against the bench environment.

    Resolves ``benchmarks/campaigns/<spec_name>``, lets the knob
    registry apply any ``REPRO_BENCH_*`` overrides, and executes it on
    the bench session's shared store and worker pool.  Steps the store
    already covers are skipped with zero decode work, so a re-run of an
    already-computed table is free.
    """
    from repro.eval.campaign import load_campaign, run_campaign

    campaign = load_campaign(CAMPAIGNS_DIR / spec_name)
    return run_campaign(
        campaign,
        pool=worker_pool(),
        workbench_factory=get_workbench,
        progress=progress,
    )


def run_context() -> dict:
    """The knob state embedded into every result artifact."""
    store = experiment_store()
    return {
        "shots_per_k": shots_per_k(),
        "census_shots": census_shots(),
        "k_max": k_max(),
        "shards": eval_shards(),
        "census_shards": census_shards(),
        "store": str(store.path) if store is not None else None,
        "resume": store is not None and resume_enabled(),
        "min_rel_precision": min_rel_precision(),
    }


_WORKBENCHES: Dict = {}


def get_workbench(distance: int, p: float) -> Workbench:
    """Process-wide workbench cache (graphs and distances are reused)."""
    key = (distance, p)
    if key not in _WORKBENCHES:
        _WORKBENCHES[key] = Workbench.build(
            distance=distance, p=p, rng=stable_seed("bench", distance, p)
        )
    return _WORKBENCHES[key]


def save_results(name: str, payload: dict) -> Path:
    """Persist a benchmark's numbers for the EXPERIMENTS.md comparison.

    The run context (shot knobs, store/resume state) is attached under
    ``"context"`` unless the payload already carries one.  The write is
    atomic (temp file + rename), so a crashed bench never leaves a
    truncated artifact behind.
    """
    payload = dict(payload)
    payload.setdefault("context", run_context())
    return atomic_write_json(RESULTS_DIR / f"{name}.json", payload)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
