"""Shared benchmark plumbing: scaling knobs, workbench cache, result files.

Every benchmark regenerates one table or figure of the paper.  Shot
counts are laptop-scale by default and adjustable through environment
variables:

* ``REPRO_BENCH_SHOTS_PER_K``  -- syndromes per injected-fault count
  (Eq. (1) workloads; default 250).
* ``REPRO_BENCH_CENSUS_SHOTS`` -- syndromes per k for the high-HW
  censuses (default 150).
* ``REPRO_BENCH_KMAX``         -- largest injected-fault count (default 16).
* ``REPRO_BENCH_DISTANCES``    -- comma-separated distances for the
  headline tables (default "11,13").
* ``REPRO_BENCH_SHARDS``       -- worker processes for the Eq. (1)
  estimators (default 1 = inline; estimates are identical either way).
* ``REPRO_BENCH_CENSUS_SHARDS`` -- worker processes for the high-HW
  censuses (default = ``REPRO_BENCH_SHARDS``; identical results).
* ``REPRO_BENCH_BATCH_SIZE``   -- cap on shots per decode_batch call
  (default 0 = unbounded).
* ``REPRO_BENCH_STORE``        -- experiment-store file (``--store``):
  every completed Eq. (1) / direct-MC work slice is persisted so a
  killed sweep keeps its progress (default unset = no store).
* ``REPRO_BENCH_RESUME``       -- ``1`` replays slices already in the
  store and runs only the residual shots (``--resume``); bitwise
  identical to an uninterrupted run.  Default 1 when a store is set.
* ``REPRO_BENCH_MIN_REL_PRECISION`` -- optional relative-precision
  target (``--min-rel-precision``): shots keep doubling on the widest
  k rows until every decoder's statistical CI width is below
  ``target * LER`` (default unset = fixed budgets).
* ``REPRO_BENCH_GRID``             -- the sweep benchmark's operating
  grid as ``"d1,d2:p1,p2"`` (distances before the colon, error rates
  after; default = the headline distances x the Figures 14/15 rates).
* ``REPRO_BENCH_SPEEDUP_DISTANCE`` / ``REPRO_BENCH_SPEEDUP_SHOTS`` --
  workload of the batch-vs-loop speedup bench (defaults 5 / 20000;
  CI smoke shrinks both).
* ``REPRO_BENCH_AFS_DISTANCE`` / ``REPRO_BENCH_AFS_P`` /
  ``REPRO_BENCH_AFS_SHOTS`` -- operating point of the AFS union-find
  growth-engine bench (defaults 9 / 3e-3 / 20000: the regime where
  syndromes stop repeating and dedup stops paying; CI smoke shrinks
  the shot count).
* ``REPRO_BENCH_PROMATCH_DISTANCE`` / ``REPRO_BENCH_PROMATCH_P`` /
  ``REPRO_BENCH_PROMATCH_SHOTS_PER_K`` / ``REPRO_BENCH_PROMATCH_KMAX``
  / ``REPRO_BENCH_PROMATCH_REPEATS`` -- workload of the Promatch
  predecode bench (defaults 9 / 1e-3 / 20 / 40 / 5: a d=9 census-style
  batch of all-distinct high-HW syndromes with a heavy tail, the
  regime where predecoding rounds dominate; every engine is timed
  ``REPEATS`` times and the fastest pass is kept, damping scheduler
  noise on loaded machines; CI smoke shrinks the shot count).

When ``REPRO_BENCH_SHARDS > 1`` every driver shares one persistent
:func:`worker_pool` (a :class:`repro.eval.pool.WorkerPool`), so a bench
session forks its worker set once instead of once per estimator round.

Each benchmark prints its table (so ``pytest benchmarks/ --benchmark-only
-s`` shows the paper-shaped output) and writes a JSON artifact under
``benchmarks/results/`` for EXPERIMENTS.md; the artifact embeds the
run context (shot knobs, store/resume state) so resumed and fresh
sweeps are distinguishable after the fact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.eval.experiments import Workbench
from repro.eval.pool import WorkerPool
from repro.eval.store import ExperimentStore
from repro.utils.rng import stable_seed

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def shots_per_k() -> int:
    return env_int("REPRO_BENCH_SHOTS_PER_K", 250)


def census_shots() -> int:
    return env_int("REPRO_BENCH_CENSUS_SHOTS", 150)


def k_max() -> int:
    return env_int("REPRO_BENCH_KMAX", 16)


def headline_distances() -> List[int]:
    raw = os.environ.get("REPRO_BENCH_DISTANCES", "11,13")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def afs_distance() -> int:
    return env_int("REPRO_BENCH_AFS_DISTANCE", 9)


def afs_p() -> float:
    return float(os.environ.get("REPRO_BENCH_AFS_P", "3e-3"))


def afs_shots() -> int:
    return env_int("REPRO_BENCH_AFS_SHOTS", 20000)


def promatch_distance() -> int:
    return env_int("REPRO_BENCH_PROMATCH_DISTANCE", 9)


def promatch_p() -> float:
    return float(os.environ.get("REPRO_BENCH_PROMATCH_P", "1e-3"))


def promatch_shots_per_k() -> int:
    return env_int("REPRO_BENCH_PROMATCH_SHOTS_PER_K", 20)


def promatch_k_max() -> int:
    return env_int("REPRO_BENCH_PROMATCH_KMAX", 40)


def promatch_repeats() -> int:
    return max(1, env_int("REPRO_BENCH_PROMATCH_REPEATS", 5))


def eval_shards() -> int:
    return max(1, env_int("REPRO_BENCH_SHARDS", 1))


def eval_batch_size() -> Optional[int]:
    value = env_int("REPRO_BENCH_BATCH_SIZE", 0)
    return value if value > 0 else None


def census_shards() -> int:
    return max(1, env_int("REPRO_BENCH_CENSUS_SHARDS", eval_shards()))


def grid_from_env() -> Tuple[List[int], List[float]]:
    """The sweep benchmark's (distances, error rates) operating grid.

    ``REPRO_BENCH_GRID`` is ``"d1,d2:p1,p2"``; unset falls back to the
    headline distances x the Figures 14/15 error-rate range.
    """
    raw = os.environ.get("REPRO_BENCH_GRID", "").strip()
    if not raw:
        return headline_distances(), [1e-4, 3e-4, 5e-4]
    distance_part, _, rate_part = raw.partition(":")
    distances = [int(tok) for tok in distance_part.split(",") if tok.strip()]
    rates = [float(tok) for tok in rate_part.split(",") if tok.strip()]
    if not distances or not rates:
        raise ValueError(
            f"REPRO_BENCH_GRID must look like 'd1,d2:p1,p2', got {raw!r}"
        )
    return distances, rates


_WORKER_POOL: Optional[WorkerPool] = None


def worker_pool() -> Optional[WorkerPool]:
    """The bench session's shared persistent worker pool.

    One :class:`WorkerPool` of ``eval_shards()`` processes serves every
    driver in the process (``None`` when sharding is off), so the fork
    cost is paid once per bench session rather than once per estimator
    round; results are identical either way.
    """
    global _WORKER_POOL
    if eval_shards() <= 1:
        return None
    if _WORKER_POOL is None:
        _WORKER_POOL = WorkerPool(eval_shards())
    return _WORKER_POOL


def experiment_store() -> Optional[ExperimentStore]:
    """The shared experiment store, or ``None`` when not configured."""
    path = os.environ.get("REPRO_BENCH_STORE", "").strip()
    return ExperimentStore(path) if path else None


def resume_enabled() -> bool:
    """Resume defaults on whenever a store is configured."""
    return bool(env_int("REPRO_BENCH_RESUME", 1))


def min_rel_precision() -> Optional[float]:
    raw = os.environ.get("REPRO_BENCH_MIN_REL_PRECISION", "").strip()
    return float(raw) if raw else None


def ler_store_kwargs(bench: Workbench, kind: str = "eq1") -> dict:
    """Store/resume/precision kwargs for one estimator call.

    The store key is derived from the workbench's full configuration
    (code, distance, rounds, noise, p, estimator kind), so each
    operating point of a sweep owns an independent set of slices in the
    shared store file.
    """
    store = experiment_store()
    return dict(
        store=store,
        store_key=bench.store_key(kind) if store is not None else None,
        resume=store is not None and resume_enabled(),
        min_rel_precision=min_rel_precision(),
    )


def run_context() -> dict:
    """The knob state embedded into every result artifact."""
    store = experiment_store()
    return {
        "shots_per_k": shots_per_k(),
        "census_shots": census_shots(),
        "k_max": k_max(),
        "shards": eval_shards(),
        "census_shards": census_shards(),
        "store": str(store.path) if store is not None else None,
        "resume": store is not None and resume_enabled(),
        "min_rel_precision": min_rel_precision(),
    }


_WORKBENCHES: Dict = {}


def get_workbench(distance: int, p: float) -> Workbench:
    """Process-wide workbench cache (graphs and distances are reused)."""
    key = (distance, p)
    if key not in _WORKBENCHES:
        _WORKBENCHES[key] = Workbench.build(
            distance=distance, p=p, rng=stable_seed("bench", distance, p)
        )
    return _WORKBENCHES[key]


def save_results(name: str, payload: dict) -> Path:
    """Persist a benchmark's numbers for the EXPERIMENTS.md comparison.

    The run context (shot knobs, store/resume state) is attached under
    ``"context"`` unless the payload already carries one.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = dict(payload)
    payload.setdefault("context", run_context())
    path = RESULTS_DIR / f"{name}.json"
    with path.open("w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
