"""Ablations of Promatch's design choices (DESIGN.md Section 5).

Not a paper table -- these benches quantify the design decisions the
paper argues for qualitatively.  Two subtleties shape the methodology:

* Under the *adaptive* configuration the ablations are invisible at
  laptop scale: Promatch stops at HW <= 10 and Astrea repairs whatever
  the predecoder left, so variant differences surface only in ~1e-4 of
  high-HW syndromes.  The bench therefore forces **full predecoding
  depth** (``main_capability = 1``), where every matching decision is
  the predecoder's own.
* Binary disagreement is high-variance at these rates; **weight regret**
  (committed matching weight minus the MWPM optimum) is the
  low-variance, continuous quality metric, measured on syndromes whose
  decoding subgraph actually contains complex (degree >= 2) patterns --
  the Figure 7 territory.

Variants:

1. full Promatch (hardware singleton test, Step 3 on),
2. singleton avoidance disabled (pure lowest-weight greed),
3. Step 3 disabled (no singleton rescue; defers leftovers),
4. exact singleton test (catches the degree-2 corner the Figure 11
   hardware logic misses).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import census_shots, get_workbench, run_once, save_results  # noqa: E402

from repro.core import PromatchPredecoder  # noqa: E402
from repro.decoders import AstreaDecoder, MWPMDecoder  # noqa: E402
from repro.eval.reporting import format_table  # noqa: E402
from repro.graph.subgraph import DecodingSubgraph  # noqa: E402

P = 1e-4
DISTANCE = 11
INJECTED_FAULTS = 14


def run_ablations() -> dict:
    bench = get_workbench(DISTANCE, P)
    graph = bench.graph
    # Syndromes with genuinely complex local structure (some flipped bit
    # has two or more flipped neighbors): where matching decisions bite.
    batch = bench.sample_exact_k(INJECTED_FAULTS, 6 * census_shots())
    workload = [
        events
        for events in batch.events
        if len(events) > 10
        and any(d >= 2 for d in DecodingSubgraph(graph, events).degree)
    ]
    variants = {
        "Promatch (full)": PromatchPredecoder(graph, main_capability=1),
        "no singleton avoidance": PromatchPredecoder(
            graph, main_capability=1, enable_singleton_avoidance=False
        ),
        "no step 3": PromatchPredecoder(
            graph, main_capability=1, enable_step3=False
        ),
        "exact singleton check": PromatchPredecoder(
            graph, main_capability=1, exact_singleton_check=True
        ),
    }
    mwpm = MWPMDecoder(graph)
    astrea = AstreaDecoder(graph)
    payload = {
        "p": P,
        "distance": DISTANCE,
        "k": INJECTED_FAULTS,
        "workload": len(workload),
        "rows": {},
    }
    optima = {events: mwpm.decode(events).weight for events in workload}
    for name, predecoder in variants.items():
        total_regret = 0.0
        worst_regret = 0.0
        decided = 0
        deferred = 0
        for events in workload:
            report = predecoder.predecode(events)
            remainder = astrea.decode(report.remaining)
            if report.aborted or not remainder.success:
                deferred += 1
                continue
            decided += 1
            regret = report.weight + remainder.weight - optima[events]
            total_regret += regret
            worst_regret = max(worst_regret, regret)
        payload["rows"][name] = {
            "mean_weight_regret": total_regret / decided if decided else 0.0,
            "worst_weight_regret": worst_regret,
            "decided": decided,
            "deferred": deferred,
        }
    return payload


def bench_ablations(benchmark):
    payload = run_once(benchmark, run_ablations)
    rows = [
        [
            name,
            f"{stats['mean_weight_regret']:.4f}",
            f"{stats['worst_weight_regret']:.2f}",
            str(stats["decided"]),
        ]
        for name, stats in payload["rows"].items()
    ]
    print()
    print(
        format_table(
            ["Variant", "mean regret", "worst regret", "syndromes"],
            rows,
            title=(
                f"Ablations | d={DISTANCE}, k={INJECTED_FAULTS} faults, "
                "forced full predecoding on complex patterns "
                "(regret = matching weight above the MWPM optimum)"
            ),
        )
    )
    save_results("ablations", payload)
