"""AFS (union-find) growth-engine throughput: lock-step vs dedup-only.

The Figure 4 AFS series decodes with :class:`UnionFindDecoder`.  At the
paper's p = 1e-4 a Monte-Carlo batch is dominated by repeated sparse
syndromes and the shared dedup fast path carries the whole batch; at
higher physical error rates and d >= 9 almost every syndrome is
distinct, dedup stops paying, and throughput collapses onto the scalar
growth loop -- exactly the line-rate regime AFS-class hardware decoders
target.

This bench decodes one fixed Monte-Carlo workload in that regime with
both engines:

* ``dedup-only`` -- :class:`ReferenceUnionFindDecoder.decode_batch`,
  the historic "dedup IS the batch implementation" path (full-edge-
  rescan scalar growth per distinct syndrome);
* ``vectorized`` -- :class:`UnionFindDecoder.decode_batch`, the
  lock-step numpy growth engine (scalar fallback only for peeling).

Results must be element-wise identical; the artifact records shots/sec
for both plus the speedup (acceptance bar: >= 3x at d >= 9).  The CI
smoke job shrinks the workload via ``REPRO_BENCH_AFS_SHOTS``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    afs_distance,
    afs_p,
    afs_shots,
    get_workbench,
    run_once,
    save_results,
)

from repro.decoders import ReferenceUnionFindDecoder, UnionFindDecoder  # noqa: E402
from repro.decoders.base import unique_syndromes  # noqa: E402
from repro.eval.reporting import format_table  # noqa: E402
from repro.sim.sampler import DemSampler  # noqa: E402


def run_afs_unionfind() -> dict:
    distance, p, shots = afs_distance(), afs_p(), afs_shots()
    bench = get_workbench(distance, p)
    batch = DemSampler(bench.dem, p, rng=20260727).sample(shots)
    uniques, _inverse = unique_syndromes(batch)
    vectorized = UnionFindDecoder(bench.graph)
    reference = ReferenceUnionFindDecoder(bench.graph)

    start = time.perf_counter()
    dedup_results = reference.decode_batch(batch)
    dedup_s = time.perf_counter() - start

    start = time.perf_counter()
    fast_results = vectorized.decode_batch(batch)
    fast_s = time.perf_counter() - start

    assert fast_results == dedup_results, (
        "vectorized union-find diverged from the dedup-only reference"
    )
    assert all(r.cycles >= 1 for r in fast_results)
    return {
        "distance": distance,
        "p": p,
        "shots": batch.shots,
        "unique_syndromes": len(uniques),
        "dedup_shots_per_s": batch.shots / dedup_s,
        "vectorized_shots_per_s": batch.shots / fast_s,
        "speedup": dedup_s / fast_s,
    }


def bench_afs_unionfind_batch(benchmark):
    payload = run_once(benchmark, run_afs_unionfind)
    print()
    print(format_table(
        ["engine", "shots/s"],
        [
            ["dedup-only (reference)", f"{payload['dedup_shots_per_s']:.0f}"],
            ["vectorized lock-step", f"{payload['vectorized_shots_per_s']:.0f}"],
        ],
        title=(
            f"AFS union-find batch | d={payload['distance']}, "
            f"p={payload['p']:g}, {payload['shots']} shots "
            f"({payload['unique_syndromes']} distinct) | "
            f"speedup {payload['speedup']:.1f}x"
        ),
    ))
    save_results("afs_unionfind_batch", payload)
