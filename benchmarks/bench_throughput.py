"""Software throughput microbenchmarks (not a paper table).

The paper's latency numbers come from the cycle model (Tables 4/5); these
benches time the *Python implementation* itself on a fixed high-HW
workload, so regressions in the algorithmic hot paths (subgraph builds,
candidate scans, exact matching) show up in CI.  Unlike the experiment
benches these use pytest-benchmark's statistical timing loop.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import get_workbench  # noqa: E402

from repro.core import PromatchPredecoder  # noqa: E402
from repro.decoders import AstreaDecoder, MWPMDecoder, PredecodedDecoder  # noqa: E402

P = 1e-4
DISTANCE = 11


def _workload(bench, count=24, k=8):
    batch = bench.sample_exact_k(k, count)
    return [e for e in batch.events if len(e) > 10] or batch.events


def bench_promatch_predecode_throughput(benchmark):
    bench = get_workbench(DISTANCE, P)
    bench.graph.ensure_distances()
    events = _workload(bench)
    promatch = PromatchPredecoder(bench.graph)

    def run():
        for e in events:
            promatch.predecode(e)

    benchmark(run)


def bench_promatch_astrea_pipeline_throughput(benchmark):
    bench = get_workbench(DISTANCE, P)
    bench.graph.ensure_distances()
    events = _workload(bench)
    pipeline = PredecodedDecoder(
        bench.graph, PromatchPredecoder(bench.graph), AstreaDecoder(bench.graph)
    )

    def run():
        for e in events:
            pipeline.decode(e)

    benchmark(run)


def bench_mwpm_decode_throughput(benchmark):
    bench = get_workbench(DISTANCE, P)
    bench.graph.ensure_distances()
    events = _workload(bench)
    mwpm = MWPMDecoder(bench.graph)

    def run():
        for e in events:
            mwpm.decode(e)

    benchmark(run)


def bench_subgraph_construction(benchmark):
    from repro.graph.subgraph import DecodingSubgraph

    bench = get_workbench(DISTANCE, P)
    events = _workload(bench, count=16, k=10)

    def run():
        for e in events:
            DecodingSubgraph(bench.graph, e)

    benchmark(run)
