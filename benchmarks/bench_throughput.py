"""Software throughput microbenchmarks (not a paper table).

The paper's latency numbers come from the cycle model (Tables 4/5); these
benches time the *Python implementation* itself on a fixed high-HW
workload, so regressions in the algorithmic hot paths (subgraph builds,
candidate scans, exact matching) show up in CI.  Unlike the experiment
benches these use pytest-benchmark's statistical timing loop.

``bench_batch_decode_speedup`` additionally compares the batch decode
fast path against the per-shot reference loop on a d=5 Monte-Carlo
workload for the vectorizable decoders (lookup, Clique+Astrea,
union-find) and prints the shots/sec speedup table.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import get_workbench, speedup_distance, speedup_shots  # noqa: E402

from repro.core import PromatchPredecoder  # noqa: E402
from repro.decoders import (  # noqa: E402
    AstreaDecoder,
    CliquePredecoder,
    LookupTableDecoder,
    MWPMDecoder,
    PredecodedDecoder,
    UnionFindDecoder,
)
from repro.sim.sampler import DemSampler  # noqa: E402

P = 1e-4
DISTANCE = 11


def _workload(bench, count=24, k=8):
    batch = bench.sample_exact_k(k, count)
    return [e for e in batch.events if len(e) > 10] or batch.events


def bench_promatch_predecode_throughput(benchmark):
    bench = get_workbench(DISTANCE, P)
    bench.graph.ensure_distances()
    events = _workload(bench)
    promatch = PromatchPredecoder(bench.graph)

    def run():
        for e in events:
            promatch.predecode(e)

    benchmark(run)


def bench_promatch_astrea_pipeline_throughput(benchmark):
    bench = get_workbench(DISTANCE, P)
    bench.graph.ensure_distances()
    events = _workload(bench)
    pipeline = PredecodedDecoder(
        bench.graph, PromatchPredecoder(bench.graph), AstreaDecoder(bench.graph)
    )

    def run():
        for e in events:
            pipeline.decode(e)

    benchmark(run)


def bench_mwpm_decode_throughput(benchmark):
    bench = get_workbench(DISTANCE, P)
    bench.graph.ensure_distances()
    events = _workload(bench)
    mwpm = MWPMDecoder(bench.graph)

    def run():
        for e in events:
            mwpm.decode(e)

    benchmark(run)


def _batch_decoders(bench):
    """The vectorizable d=5 configurations of the batch-vs-loop comparison."""
    graph = bench.graph
    return {
        "lookup": LookupTableDecoder(
            graph, max_detectors=graph.n_nodes, lazy=True
        ),
        "clique": PredecodedDecoder(
            graph, CliquePredecoder(graph), AstreaDecoder(graph)
        ),
        "unionfind": UnionFindDecoder(graph),
    }


def bench_batch_decode_speedup(benchmark):
    """Batch fast path vs per-shot reference loop at d=5 (>= 3x target).

    Uses the paper's p = 1e-4 operating point, where the Monte-Carlo
    workload is dominated by repeated sparse syndromes -- exactly the
    regime the batch dedup fast path exists for.  CI smoke runs shrink
    the workload via REPRO_BENCH_SPEEDUP_DISTANCE / _SHOTS.
    """
    distance = speedup_distance()
    shots = speedup_shots()
    bench = get_workbench(distance, 1e-4)
    bench.graph.ensure_distances()
    batch = DemSampler(bench.dem, 1e-4, rng=20240720).sample(shots)
    decoders = _batch_decoders(bench)

    def run_batch():
        return {
            name: decoder.decode_batch(batch)
            for name, decoder in decoders.items()
        }

    run_batch()  # warm lazy tables and distance caches before timing
    rows = []
    for name, decoder in decoders.items():
        start = time.perf_counter()
        loop_results = decoder.decode_batch_reference(batch)
        loop_s = time.perf_counter() - start
        start = time.perf_counter()
        batch_results = decoder.decode_batch(batch)
        batch_s = time.perf_counter() - start
        assert loop_results == batch_results, f"{name}: batch != loop"
        rows.append((name, batch.shots / loop_s, batch.shots / batch_s,
                     loop_s / batch_s))
    print()
    print(f"batch vs per-shot loop, d={distance}, p=1e-4, {batch.shots} shots:")
    for name, loop_rate, batch_rate, speedup in rows:
        print(f"  {name:10s} loop {loop_rate:10.0f} shots/s   "
              f"batch {batch_rate:10.0f} shots/s   speedup {speedup:5.1f}x")
    benchmark.extra_info["speedups"] = {name: s for name, _l, _b, s in rows}
    benchmark(run_batch)


def bench_subgraph_construction(benchmark):
    from repro.graph.subgraph import DecodingSubgraph

    bench = get_workbench(DISTANCE, P)
    events = _workload(bench, count=16, k=10)

    def run():
        for e in events:
            DecodingSubgraph(bench.graph, e)

    benchmark(run)
