"""Whole-table sweep: one orchestrated (distance, p) grid, one artifact.

Drives :func:`repro.eval.sweep.run_sweep` over ``REPRO_BENCH_GRID``
(default: the headline distances x the Figures 14/15 error-rate range)
with the session's shared store, resume and precision knobs -- the
one-command reproduction of a paper table.  Every grid point's slices
land in the same store file, so killing this benchmark and re-running
it resumes bitwise; all sharded work rides the session's persistent
worker pool (one fork for the whole grid).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    grid_from_env,
    eval_batch_size,
    eval_shards,
    experiment_store,
    k_max,
    min_rel_precision,
    resume_enabled,
    run_once,
    save_results,
    shots_per_k,
    worker_pool,
)

from repro.eval.reporting import format_scientific, format_table  # noqa: E402
from repro.eval.sweep import SweepGrid, run_sweep  # noqa: E402

DECODERS = ("MWPM", "Promatch+Astrea", "Astrea-G", "Smith+Astrea")
PARALLEL = {
    "Promatch || AG": ("Promatch+Astrea", "Astrea-G"),
    "Smith || AG": ("Smith+Astrea", "Astrea-G"),
}


def run_grid_sweep() -> dict:
    distances, error_rates = grid_from_env()
    store = experiment_store()
    grid = SweepGrid(
        distances=tuple(distances),
        error_rates=tuple(error_rates),
        kind="eq1",
        decoders=DECODERS,
        parallel=PARALLEL,
        shots_per_k=max(60, shots_per_k() // 2),
        k_max=k_max(),
    )
    result = run_sweep(
        grid,
        store=store,
        resume=store is not None and resume_enabled(),
        min_rel_precision=min_rel_precision(),
        shards=eval_shards(),
        batch_size=eval_batch_size(),
        pool=worker_pool(),
    )
    return result.to_payload()


def bench_sweep_grid(benchmark):
    payload = run_once(benchmark, run_grid_sweep)
    names = list(DECODERS) + list(PARALLEL)
    grid = payload["grid"]
    by_point = {
        (entry["distance"], entry["p"]): entry for entry in payload["points"]
    }
    for distance in grid["distances"]:
        rows = [
            [name]
            + [
                format_scientific(
                    by_point[(distance, p)]["decoders"][name]["ler"]
                )
                for p in grid["error_rates"]
            ]
            for name in names
        ]
        print()
        print(
            format_table(
                ["Decoder"] + [f"p={p:g}" for p in grid["error_rates"]],
                rows,
                title=f"Sweep | LER grid, d={distance}",
            )
        )
    print(f"worker-pool forks this sweep: {payload['stats']['pool_forks']}")
    save_results("sweep_grid", payload)
