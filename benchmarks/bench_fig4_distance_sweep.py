"""Figure 4 (and Figure 1(c)): LER vs code distance at p = 1e-4.

Paper's series: idealized MWPM, Astrea-G, Clique+MWPM, AFS over
d = 7..13.  The plot's story: MWPM keeps dropping with distance;
Astrea-G tracks it through d = 9 then detaches (2.5x at d=11, 43x at
d=13); Clique+MWPM hugs MWPM (its main decoder is unconstrained);
AFS (union-find) sits a constant factor above MWPM.

Shape criteria here: per-distance ordering
MWPM <= Clique+MWPM <= AFS and Astrea-G's widening gap at d >= 11.

The workload lives in ``campaigns/fig4.toml`` (the distance axis is
pinned there -- it is the figure's subject); this driver runs the spec
and relabels UnionFind to the paper's "AFS (union-find)" series name.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    run_campaign_spec,
    run_once,
    save_results,
)

from repro.eval.reporting import format_scientific, format_table  # noqa: E402

P = 1e-4

#: Zoo name -> figure series label.
SERIES = (
    ("MWPM", "MWPM"),
    ("Astrea-G", "Astrea-G"),
    ("Clique+MWPM", "Clique+MWPM"),
    ("UnionFind", "AFS (union-find)"),
)


def run_fig4() -> dict:
    result = run_campaign_spec("fig4.toml")
    payload = {"p": P, "series": {}}
    for outcome in result.outcomes:
        decoders = outcome.payload["decoders"]
        payload["series"][str(outcome.step.distance)] = {
            label: decoders[name]["ler"] for name, label in SERIES
        }
    return payload


def bench_fig4_distance_sweep(benchmark):
    payload = run_once(benchmark, run_fig4)
    names = [label for _name, label in SERIES]
    rows = [
        [name]
        + [
            format_scientific(payload["series"][d][name])
            for d in payload["series"]
        ]
        for name in names
    ]
    print()
    print(
        format_table(
            ["Decoder"] + [f"d={d}" for d in payload["series"]],
            rows,
            title=f"Figure 4 | LER vs distance at p={P}",
        )
    )
    save_results("fig4_distance_sweep", payload)
