"""Figure 4 (and Figure 1(c)): LER vs code distance at p = 1e-4.

Paper's series: idealized MWPM, Astrea-G, Clique+MWPM, AFS over
d = 7..13.  The plot's story: MWPM keeps dropping with distance;
Astrea-G tracks it through d = 9 then detaches (2.5x at d=11, 43x at
d=13); Clique+MWPM hugs MWPM (its main decoder is unconstrained);
AFS (union-find) sits a constant factor above MWPM.

Shape criteria here: per-distance ordering
MWPM <= Clique+MWPM <= AFS and Astrea-G's widening gap at d >= 11.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    eval_batch_size,
    eval_shards,
    env_int,
    get_workbench,
    k_max,
    ler_store_kwargs,
    run_once,
    save_results,
    shots_per_k,
    worker_pool,
)

from repro.decoders import CliquePredecoder, MWPMDecoder, PredecodedDecoder  # noqa: E402
from repro.eval.ler import estimate_ler_importance  # noqa: E402
from repro.eval.reporting import format_scientific, format_table  # noqa: E402
from repro.utils.rng import stable_seed  # noqa: E402

P = 1e-4


def run_fig4() -> dict:
    distances = [7, 9, 11, 13]
    payload = {"p": P, "series": {}}
    sweep_shots = max(60, shots_per_k() // 2)
    for distance in distances:
        bench = get_workbench(distance, P)
        decoders = {
            "MWPM": bench.decoders["MWPM"],
            "Astrea-G": bench.decoders["Astrea-G"],
            "Clique+MWPM": PredecodedDecoder(
                bench.graph,
                CliquePredecoder(bench.graph),
                MWPMDecoder(bench.graph),
                name="Clique+MWPM",
            ),
            "AFS (union-find)": bench.decoders["UnionFind"],
        }
        results = estimate_ler_importance(
            decoders,
            bench.dem,
            P,
            k_max=min(k_max(), 2 * distance),
            shots_per_k=sweep_shots,
            rng=stable_seed("fig4", distance),
            shards=eval_shards(),
            batch_size=eval_batch_size(),
            pool=worker_pool(),
            **ler_store_kwargs(bench),
        )
        payload["series"][str(distance)] = {
            name: result.ler for name, result in results.items()
        }
    return payload


def bench_fig4_distance_sweep(benchmark):
    payload = run_once(benchmark, run_fig4)
    names = ["MWPM", "Astrea-G", "Clique+MWPM", "AFS (union-find)"]
    rows = [
        [name]
        + [
            format_scientific(payload["series"][d][name])
            for d in payload["series"]
        ]
        for name in names
    ]
    print()
    print(
        format_table(
            ["Decoder"] + [f"d={d}" for d in payload["series"]],
            rows,
            title=f"Figure 4 | LER vs distance at p={P}",
        )
    )
    save_results("fig4_distance_sweep", payload)
