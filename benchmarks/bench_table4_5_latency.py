"""Tables 4 and 5: Promatch latency on high-Hamming-weight syndromes.

Paper's numbers (ns, HW >= 10 workload):

    Table 4 (predecode only):   d=11  max 824 / avg 68.2
                                d=13  max 928 / avg 70.0
    Table 5 (predecode+decode): d=11  max 904 / avg 524.2
                                d=13  max 960 / avg 526.0

Shape criteria: max predecode within a few hundred ns of the budget,
average tens of ns, total average dominated by Astrea's ~456 ns HW=10
search, worst case pinned at the 960 ns budget, and a deadline-miss
probability many orders below the LER.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    census_shards,
    census_shots,
    get_workbench,
    headline_distances,
    k_max,
    run_once,
    save_results,
)

from repro.core import PromatchPredecoder  # noqa: E402
from repro.decoders import AstreaDecoder  # noqa: E402
from repro.eval.experiments import latency_census  # noqa: E402
from repro.eval.reporting import format_table  # noqa: E402

P = 1e-4


def run_latency() -> dict:
    payload = {"p": P, "rows": {}}
    for distance in headline_distances():
        bench = get_workbench(distance, P)
        batch = bench.sample_high_hw(shots_per_k=census_shots(), k_max=k_max())
        census = latency_census(
            bench.graph,
            batch,
            PromatchPredecoder(bench.graph),
            AstreaDecoder(bench.graph),
            shards=census_shards(),
        )
        payload["rows"][str(distance)] = {
            "predecode_max_ns": census.predecode_max_ns,
            "predecode_avg_ns": census.predecode_avg_ns,
            "total_max_ns": census.total_max_ns,
            "total_avg_ns": census.total_avg_ns,
            "deadline_miss_probability": census.deadline_miss_probability,
            "syndromes": batch.shots,
        }
    return payload


def bench_table4_5_latency(benchmark):
    payload = run_once(benchmark, run_latency)
    rows = []
    for distance, stats in payload["rows"].items():
        rows.append(
            [
                distance,
                f"{stats['predecode_max_ns']:.0f}",
                f"{stats['predecode_avg_ns']:.1f}",
                f"{stats['total_max_ns']:.0f}",
                f"{stats['total_avg_ns']:.1f}",
                f"{stats['deadline_miss_probability']:.1e}",
            ]
        )
    print()
    print(
        format_table(
            [
                "d",
                "pre max (ns)",
                "pre avg (ns)",
                "total max (ns)",
                "total avg (ns)",
                "P(miss 1us)",
            ],
            rows,
            title="Tables 4+5 | Promatch latency on HW>10 syndromes",
        )
    )
    save_results("table4_5_latency", payload)
