"""Tables 4 and 5: Promatch latency on high-Hamming-weight syndromes.

Paper's numbers (ns, HW >= 10 workload):

    Table 4 (predecode only):   d=11  max 824 / avg 68.2
                                d=13  max 928 / avg 70.0
    Table 5 (predecode+decode): d=11  max 904 / avg 524.2
                                d=13  max 960 / avg 526.0

Shape criteria: max predecode within a few hundred ns of the budget,
average tens of ns, total average dominated by Astrea's ~456 ns HW=10
search, worst case pinned at the 960 ns budget, and a deadline-miss
probability many orders below the LER.

The workload lives in ``campaigns/table4_5.toml``; census results are
cached as store artifacts, so a covered re-run performs no decoding.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    run_campaign_spec,
    run_once,
    save_results,
)

from repro.eval.reporting import format_table  # noqa: E402

P = 1e-4


def run_latency() -> dict:
    result = run_campaign_spec("table4_5.toml")
    payload = {"p": P, "rows": {}}
    for outcome in result.outcomes:
        data = outcome.payload["data"]
        payload["rows"][str(outcome.step.distance)] = {
            "predecode_max_ns": data["predecode_max_ns"],
            "predecode_avg_ns": data["predecode_avg_ns"],
            "total_max_ns": data["total_max_ns"],
            "total_avg_ns": data["total_avg_ns"],
            "deadline_miss_probability": data["deadline_miss_probability"],
            "syndromes": data["syndromes"],
        }
    return payload


def bench_table4_5_latency(benchmark):
    payload = run_once(benchmark, run_latency)
    rows = []
    for distance, stats in payload["rows"].items():
        rows.append(
            [
                distance,
                f"{stats['predecode_max_ns']:.0f}",
                f"{stats['predecode_avg_ns']:.1f}",
                f"{stats['total_max_ns']:.0f}",
                f"{stats['total_avg_ns']:.1f}",
                f"{stats['deadline_miss_probability']:.1e}",
            ]
        )
    print()
    print(
        format_table(
            [
                "d",
                "pre max (ns)",
                "pre avg (ns)",
                "total max (ns)",
                "total avg (ns)",
                "P(miss 1us)",
            ],
            rows,
            title="Tables 4+5 | Promatch latency on HW>10 syndromes",
        )
    )
    save_results("table4_5_latency", payload)
