"""Table 2: LER at p = 1e-4 for d = 11 and 13, all six configurations.

Paper's rows (d = 13):

    MWPM (ideal)       3.4e-15 (1x)
    Promatch || AG     3.4e-15 (1x)
    Promatch + Astrea  2.6e-14 (7.7x)
    Astrea-G (AG)      1.4e-13 (43x)
    Smith || AG        1.5e-14 (4.5x)
    Smith + Astrea     6.9e-11 (20412x)

Shape criteria reproduced here: the ordering MWPM <= Promatch || AG <=
Promatch+Astrea <= Astrea-G and the Smith+Astrea collapse.  Absolute
LERs around 1e-13..1e-15 require the paper's millions-of-shots budget;
at laptop shot counts the per-k failure rates of the exact decoders are
below the Monte-Carlo floor, so their rows report an *upper bound* (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    eval_batch_size,
    eval_shards,
    get_workbench,
    headline_distances,
    k_max,
    ler_store_kwargs,
    run_once,
    save_results,
    shots_per_k,
    worker_pool,
)

from repro.eval.ler import estimate_ler_suite  # noqa: E402
from repro.eval.reporting import format_table, format_ratio, format_scientific  # noqa: E402
from repro.utils.rng import stable_seed  # noqa: E402

P = 1e-4

COMPONENTS = ("MWPM", "Promatch+Astrea", "Astrea-G", "Smith+Astrea")
PARALLEL = {
    "Promatch || AG": ("Promatch+Astrea", "Astrea-G"),
    "Smith || AG": ("Smith+Astrea", "Astrea-G"),
}
ROW_ORDER = (
    "MWPM",
    "Promatch || AG",
    "Promatch+Astrea",
    "Astrea-G",
    "Smith || AG",
    "Smith+Astrea",
)


def tiered_shots(base: int):
    """Boost shots where decoder differences are measurable.

    Below k ~ 7, every configuration decodes perfectly (syndromes are
    sparse and within everyone's capability); the paper's LER gaps open
    at mid-range fault counts where predecoder mistakes and Astrea-G's
    budget exhaustion first appear.  Spending 8x the shots there sharpens
    exactly the rows the table is about.
    """

    def schedule(k: int) -> int:
        if 7 <= k <= 13:
            return 8 * base
        return base

    return schedule


def run_table2() -> dict:
    payload = {"p": P, "shots_per_k": shots_per_k(), "k_max": k_max(), "rows": {}}
    for distance in headline_distances():
        bench = get_workbench(distance, P)
        results = estimate_ler_suite(
            components={name: bench.decoders[name] for name in COMPONENTS},
            parallel_specs=PARALLEL,
            dem=bench.dem,
            p=P,
            k_max=k_max(),
            shots_per_k=shots_per_k(),
            shots_for_k=tiered_shots(shots_per_k()),
            rng=stable_seed("table2", distance),
            shards=eval_shards(),
            batch_size=eval_batch_size(),
            pool=worker_pool(),
            **ler_store_kwargs(bench),
        )
        payload["rows"][str(distance)] = {
            name: {
                "ler": results[name].ler,
                "ler_high": results[name].ler_high,
            }
            for name in ROW_ORDER
        }
    return payload


def bench_table2_logical_error_rate(benchmark):
    payload = run_once(benchmark, run_table2)
    for distance, rows in payload["rows"].items():
        baseline = max(rows["MWPM"]["ler"], 1e-300)
        table_rows = [
            [
                name,
                format_scientific(stats["ler"]),
                format_ratio(stats["ler"], baseline) if stats["ler"] > 0 else "-",
                f"<= {format_scientific(stats['ler_high'])}",
            ]
            for name, stats in rows.items()
        ]
        print()
        print(
            format_table(
                ["Decoder", "LER", "vs MWPM", "95% upper"],
                table_rows,
                title=f"Table 2 | d={distance}, p={P}",
            )
        )
    save_results("table2_ler", payload)
