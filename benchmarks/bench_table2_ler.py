"""Table 2: LER at p = 1e-4 for d = 11 and 13, all six configurations.

Paper's rows (d = 13):

    MWPM (ideal)       3.4e-15 (1x)
    Promatch || AG     3.4e-15 (1x)
    Promatch + Astrea  2.6e-14 (7.7x)
    Astrea-G (AG)      1.4e-13 (43x)
    Smith || AG        1.5e-14 (4.5x)
    Smith + Astrea     6.9e-11 (20412x)

Shape criteria reproduced here: the ordering MWPM <= Promatch || AG <=
Promatch+Astrea <= Astrea-G and the Smith+Astrea collapse.  Absolute
LERs around 1e-13..1e-15 require the paper's millions-of-shots budget;
at laptop shot counts the per-k failure rates of the exact decoders are
below the Monte-Carlo floor, so their rows report an *upper bound* (see
EXPERIMENTS.md).

The workload lives in ``campaigns/table2.toml``; this driver runs the
spec (store-covered steps are skipped with zero decode work) and
reshapes the consolidated payload into the legacy table layout.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    k_max,
    run_campaign_spec,
    run_once,
    save_results,
    shots_per_k,
)

from repro.eval.reporting import format_table, format_ratio, format_scientific  # noqa: E402

P = 1e-4

ROW_ORDER = (
    "MWPM",
    "Promatch || AG",
    "Promatch+Astrea",
    "Astrea-G",
    "Smith || AG",
    "Smith+Astrea",
)


def run_table2() -> dict:
    result = run_campaign_spec("table2.toml")
    payload = {"p": P, "shots_per_k": shots_per_k(), "k_max": k_max(), "rows": {}}
    for outcome in result.outcomes:
        decoders = outcome.payload["decoders"]
        payload["rows"][str(outcome.step.distance)] = {
            name: {
                "ler": decoders[name]["ler"],
                "ler_high": decoders[name]["ler_high"],
            }
            for name in ROW_ORDER
        }
    return payload


def bench_table2_logical_error_rate(benchmark):
    payload = run_once(benchmark, run_table2)
    for distance, rows in payload["rows"].items():
        baseline = max(rows["MWPM"]["ler"], 1e-300)
        table_rows = [
            [
                name,
                format_scientific(stats["ler"]),
                format_ratio(stats["ler"], baseline) if stats["ler"] > 0 else "-",
                f"<= {format_scientific(stats['ler_high'])}",
            ]
            for name, stats in rows.items()
        ]
        print()
        print(
            format_table(
                ["Decoder", "LER", "vs MWPM", "95% upper"],
                table_rows,
                title=f"Table 2 | d={distance}, p={P}",
            )
        )
    save_results("table2_ler", payload)
