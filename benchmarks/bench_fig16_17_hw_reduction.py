"""Figures 16 and 17: Hamming-weight distributions before/after predecoding.

Paper's claim: on HW > 10 syndromes, Promatch *always* lands the residual
Hamming weight at 10 or below (6/8/10 depending on time pressure) so
Astrea can finish, while Smith et al. leaves a spread of residuals with
mass both at zero (over-coverage) and above 10 (coverage failure).

Shape criteria: zero Promatch mass above HW 10; Smith mass above 10
nonzero (or at least a wide residual spread reaching low HW).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    census_shards,
    census_shots,
    get_workbench,
    headline_distances,
    k_max,
    run_once,
    save_results,
)

from repro.core import PromatchPredecoder  # noqa: E402
from repro.decoders import SmithPredecoder  # noqa: E402
from repro.eval.experiments import hw_reduction_census  # noqa: E402
from repro.eval.reporting import format_histogram  # noqa: E402

P = 1e-4


def run_hw_reduction() -> dict:
    payload = {"p": P, "histograms": {}}
    for distance in headline_distances():
        bench = get_workbench(distance, P)
        batch = bench.sample_high_hw(shots_per_k=census_shots(), k_max=k_max())
        histograms = hw_reduction_census(
            bench.graph,
            batch,
            {
                "Promatch": PromatchPredecoder(bench.graph),
                "Smith": SmithPredecoder(bench.graph),
            },
            n_bins=2 * k_max() + 2,
            shards=census_shards(),
        )
        payload["histograms"][str(distance)] = {
            name: hist.tolist() for name, hist in histograms.items()
        }
    return payload


def bench_fig16_17_hw_reduction(benchmark):
    payload = run_once(benchmark, run_hw_reduction)
    for distance, histograms in payload["histograms"].items():
        print()
        print(f"Figures 16/17 | d={distance}, p={P} "
              "(joint probability with the HW>10 event)")
        for name in ("before", "Promatch", "Smith"):
            print(format_histogram(histograms[name], title=f"-- {name}:"))
        promatch_above = sum(histograms["Promatch"][11:])
        smith_above = sum(histograms["Smith"][11:])
        print(
            f"  residual mass above HW 10: Promatch={promatch_above:.2e} "
            f"(paper: 0), Smith={smith_above:.2e} (paper: >0)"
        )
    save_results("fig16_17_hw_reduction", payload)
