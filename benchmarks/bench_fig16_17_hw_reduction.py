"""Figures 16 and 17: Hamming-weight distributions before/after predecoding.

Paper's claim: on HW > 10 syndromes, Promatch *always* lands the residual
Hamming weight at 10 or below (6/8/10 depending on time pressure) so
Astrea can finish, while Smith et al. leaves a spread of residuals with
mass both at zero (over-coverage) and above 10 (coverage failure).

Shape criteria: zero Promatch mass above HW 10; Smith mass above 10
nonzero (or at least a wide residual spread reaching low HW).

The workload lives in ``campaigns/fig16_17.toml``; census results are
cached as store artifacts, so a covered re-run performs no decoding.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    run_campaign_spec,
    run_once,
    save_results,
)

from repro.eval.reporting import format_histogram  # noqa: E402

P = 1e-4


def run_hw_reduction() -> dict:
    result = run_campaign_spec("fig16_17.toml")
    payload = {"p": P, "histograms": {}}
    for outcome in result.outcomes:
        histograms = outcome.payload["data"]["histograms"]
        payload["histograms"][str(outcome.step.distance)] = {
            name: list(hist) for name, hist in histograms.items()
        }
    return payload


def bench_fig16_17_hw_reduction(benchmark):
    payload = run_once(benchmark, run_hw_reduction)
    for distance, histograms in payload["histograms"].items():
        print()
        print(f"Figures 16/17 | d={distance}, p={P} "
              "(joint probability with the HW>10 event)")
        for name in ("before", "Promatch", "Smith"):
            print(format_histogram(histograms[name], title=f"-- {name}:"))
        promatch_above = sum(histograms["Promatch"][11:])
        smith_above = sum(histograms["Smith"][11:])
        print(
            f"  residual mass above HW 10: Promatch={promatch_above:.2e} "
            f"(paper: 0), Smith={smith_above:.2e} (paper: >0)"
        )
    save_results("fig16_17_hw_reduction", payload)
