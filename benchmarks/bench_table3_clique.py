"""Table 3: the Clique NSM predecoder cannot help a capability-limited
main decoder.

Paper's rows (p = 1e-4):

    Clique + Astrea   2.2e-5  (d=11)   > 1e-4  (d=13)   -- order of p!
    Clique + AG       = Astrea-G's LER
    Astrea-G          4.5e-13 / 1.4e-13

The qualitative claim reproduced here: Clique+Astrea collapses by many
orders of magnitude because Clique forwards every non-trivial high-HW
syndrome unmodified and Astrea refuses HW > 10, while Clique+AG tracks
Astrea-G exactly.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    eval_batch_size,
    eval_shards,
    get_workbench,
    headline_distances,
    k_max,
    ler_store_kwargs,
    run_once,
    save_results,
    shots_per_k,
    worker_pool,
)

from repro.eval.ler import estimate_ler_suite  # noqa: E402
from repro.eval.reporting import format_scientific, format_table  # noqa: E402
from repro.utils.rng import stable_seed  # noqa: E402

P = 1e-4
COMPONENTS = ("Clique+Astrea", "Astrea-G")
PARALLEL = {"Clique || AG": ("Clique+Astrea", "Astrea-G")}


def run_table3() -> dict:
    payload = {"p": P, "rows": {}}
    for distance in headline_distances():
        bench = get_workbench(distance, P)
        results = estimate_ler_suite(
            components={name: bench.decoders[name] for name in COMPONENTS},
            parallel_specs=PARALLEL,
            dem=bench.dem,
            p=P,
            k_max=k_max(),
            shots_per_k=shots_per_k(),
            rng=stable_seed("table3", distance),
            shards=eval_shards(),
            batch_size=eval_batch_size(),
            pool=worker_pool(),
            **ler_store_kwargs(bench),
        )
        payload["rows"][str(distance)] = {
            name: result.ler for name, result in results.items()
        }
    return payload


def bench_table3_clique(benchmark):
    payload = run_once(benchmark, run_table3)
    for distance, rows in payload["rows"].items():
        print()
        print(
            format_table(
                ["Decoder", "LER"],
                [[name, format_scientific(v)] for name, v in rows.items()],
                title=f"Table 3 | d={distance}, p={P}",
            )
        )
        clique_astrea = rows["Clique+Astrea"]
        astrea_g = rows["Astrea-G"]
        if astrea_g > 0:
            print(
                f"  Clique+Astrea / Astrea-G = {clique_astrea / astrea_g:.1e} "
                "(paper: >1e8x collapse)"
            )
    save_results("table3_clique", payload)
