"""Table 3: the Clique NSM predecoder cannot help a capability-limited
main decoder.

Paper's rows (p = 1e-4):

    Clique + Astrea   2.2e-5  (d=11)   > 1e-4  (d=13)   -- order of p!
    Clique + AG       = Astrea-G's LER
    Astrea-G          4.5e-13 / 1.4e-13

The qualitative claim reproduced here: Clique+Astrea collapses by many
orders of magnitude because Clique forwards every non-trivial high-HW
syndrome unmodified and Astrea refuses HW > 10, while Clique+AG tracks
Astrea-G exactly.

The workload lives in ``campaigns/table3.toml``; this driver runs the
spec and reshapes the consolidated payload into the legacy layout.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    run_campaign_spec,
    run_once,
    save_results,
)

from repro.eval.reporting import format_scientific, format_table  # noqa: E402

P = 1e-4
ROW_ORDER = ("Clique+Astrea", "Astrea-G", "Clique || AG")


def run_table3() -> dict:
    result = run_campaign_spec("table3.toml")
    payload = {"p": P, "rows": {}}
    for outcome in result.outcomes:
        decoders = outcome.payload["decoders"]
        payload["rows"][str(outcome.step.distance)] = {
            name: decoders[name]["ler"] for name in ROW_ORDER
        }
    return payload


def bench_table3_clique(benchmark):
    payload = run_once(benchmark, run_table3)
    for distance, rows in payload["rows"].items():
        print()
        print(
            format_table(
                ["Decoder", "LER"],
                [[name, format_scientific(v)] for name, v in rows.items()],
                title=f"Table 3 | d={distance}, p={P}",
            )
        )
        clique_astrea = rows["Clique+Astrea"]
        astrea_g = rows["Astrea-G"]
        if astrea_g > 0:
            print(
                f"  Clique+Astrea / Astrea-G = {clique_astrea / astrea_g:.1e} "
                "(paper: >1e8x collapse)"
            )
    save_results("table3_clique", payload)
