"""Table 6: how deep into its step ladder Promatch must go.

Paper's numbers (fraction of high-HW samples whose deepest step is s):

            d=11        d=13
    Step 1  0.9956      0.9983
    Step 2  0.00439     0.00167
    Step 3  6.1e-11     7.3e-11
    Step 4  2.4e-11     1.8e-11

Shape criteria: Step 1 dominates overwhelmingly; each deeper step is
orders of magnitude rarer; Steps 3/4 are extremely rare but *nonzero* in
occurrence probability (their existence is what pushes the final LER
down -- see the paper's discussion).

The workload lives in ``campaigns/table6.toml``; census results are
cached as store artifacts, so a covered re-run performs no decoding.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    run_campaign_spec,
    run_once,
    save_results,
)

from repro.eval.reporting import format_table  # noqa: E402

P = 1e-4


def run_steps() -> dict:
    result = run_campaign_spec("table6.toml")
    payload = {"p": P, "rows": {}}
    for outcome in result.outcomes:
        payload["rows"][str(outcome.step.distance)] = dict(
            outcome.payload["data"]["usage"]
        )
    return payload


def bench_table6_step_usage(benchmark):
    payload = run_once(benchmark, run_steps)
    distances = list(payload["rows"])
    labels = {"0": "No step", "5": "Step > 4"}
    rows = [
        [labels.get(s, f"Step {s}")]
        + [f"{payload['rows'][d][s]:.3e}" for d in distances]
        for s in ("1", "2", "3", "4", "0", "5")
        # The explicit out-of-range buckets only earn a row when they
        # carry mass; with them the fractions sum to 1 over the batch.
        if s in ("1", "2", "3", "4")
        or any(payload["rows"][d][s] > 0 for d in distances)
    ]
    print()
    print(
        format_table(
            ["Step"] + [f"d={d}" for d in distances],
            rows,
            title="Table 6 | deepest Promatch step per high-HW syndrome",
        )
    )
    save_results("table6_steps", payload)
