"""Table 6: how deep into its step ladder Promatch must go.

Paper's numbers (fraction of high-HW samples whose deepest step is s):

            d=11        d=13
    Step 1  0.9956      0.9983
    Step 2  0.00439     0.00167
    Step 3  6.1e-11     7.3e-11
    Step 4  2.4e-11     1.8e-11

Shape criteria: Step 1 dominates overwhelmingly; each deeper step is
orders of magnitude rarer; Steps 3/4 are extremely rare but *nonzero* in
occurrence probability (their existence is what pushes the final LER
down -- see the paper's discussion).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import (  # noqa: E402
    census_shards,
    census_shots,
    get_workbench,
    headline_distances,
    k_max,
    run_once,
    save_results,
)

from repro.core import PromatchPredecoder  # noqa: E402
from repro.eval.experiments import step_usage_census  # noqa: E402
from repro.eval.reporting import format_table  # noqa: E402

P = 1e-4


def run_steps() -> dict:
    payload = {"p": P, "rows": {}}
    for distance in headline_distances():
        bench = get_workbench(distance, P)
        batch = bench.sample_high_hw(shots_per_k=census_shots(), k_max=k_max())
        usage = step_usage_census(
            batch, PromatchPredecoder(bench.graph), shards=census_shards()
        )
        payload["rows"][str(distance)] = {str(s): v for s, v in usage.items()}
    return payload


def bench_table6_step_usage(benchmark):
    payload = run_once(benchmark, run_steps)
    distances = list(payload["rows"])
    labels = {"0": "No step", "5": "Step > 4"}
    rows = [
        [labels.get(s, f"Step {s}")]
        + [f"{payload['rows'][d][s]:.3e}" for d in distances]
        for s in ("1", "2", "3", "4", "0", "5")
        # The explicit out-of-range buckets only earn a row when they
        # carry mass; with them the fractions sum to 1 over the batch.
        if s in ("1", "2", "3", "4")
        or any(payload["rows"][d][s] > 0 for d in distances)
    ]
    print()
    print(
        format_table(
            ["Step"] + [f"d={d}" for d in distances],
            rows,
            title="Table 6 | deepest Promatch step per high-HW syndrome",
        )
    )
    save_results("table6_steps", payload)
