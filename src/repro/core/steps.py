"""Candidate selection for Promatch's matching steps (Algorithm 1).

One predecoding round scans every edge of the decoding subgraph once (the
hardware pipeline of Figure 10) and classifies each edge into the step
that may commit it:

* **Step 2.1** -- matching creates no singleton and one endpoint has
  degree 1 (this edge is that endpoint's only escape from singleton-hood);
  lowest weight wins.
* **Step 2.2** -- no singleton created, both endpoints degree >= 2;
  lowest weight wins.
* **Step 4.1 / 4.2** -- the singleton-creating counterparts ("risky"
  candidates), used only when nothing safer exists.
* **Step 3** (separate scan) -- when no Step-2 candidate exists and extant
  singletons remain, match a singleton to another flipped bit along the
  lowest-weight *path* in the decoding graph, provided the partner's
  removal strands nobody.

Step 1 (isolated pairs) needs no candidate scan -- see
:meth:`~repro.graph.subgraph.DecodingSubgraph.isolated_pairs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph.subgraph import DecodingSubgraph, SubgraphEdge


@dataclass(frozen=True)
class StepCandidate:
    """A candidate prematch.

    Attributes:
        step: Sub-step label ("2.1", "2.2", "3", "4.1", "4.2").
        i, j: Local node indices in the subgraph.
        weight: Edge weight (Steps 2/4) or shortest-path weight (Step 3).
        via_path: True when the match follows a multi-edge path (Step 3):
            the committed correction is the whole path.
    """

    step: str
    i: int
    j: int
    weight: float
    via_path: bool = False


def find_edge_candidates(
    subgraph: DecodingSubgraph, exact_singleton_check: bool = False
) -> Dict[str, Optional[StepCandidate]]:
    """One pipeline pass over the subgraph edges (Steps 2.1/2.2/4.1/4.2).

    Returns the best (lowest-weight) candidate per sub-step, or ``None``
    where no edge qualifies.
    """
    best: Dict[str, Optional[StepCandidate]] = {
        "2.1": None,
        "2.2": None,
        "4.1": None,
        "4.2": None,
    }

    def consider(step: str, edge: SubgraphEdge) -> None:
        current = best[step]
        if current is None or edge.weight < current.weight:
            best[step] = StepCandidate(
                step=step, i=edge.i, j=edge.j, weight=edge.weight
            )

    for edge in subgraph.edges:
        degree_one = (
            min(subgraph.degree[edge.i], subgraph.degree[edge.j]) == 1
        )
        if not subgraph.creates_singleton(edge, exact=exact_singleton_check):
            consider("2.1" if degree_one else "2.2", edge)
        else:
            consider("4.1" if degree_one else "4.2", edge)
    return best


def find_step3_candidate(
    subgraph: DecodingSubgraph,
) -> tuple[Optional[StepCandidate], int]:
    """Scan singleton-to-node paths (Step 3).

    Returns the best candidate plus the number of paths examined (the
    cycle model charges ``max(#paths, #edges)`` for Step-3 rounds, since
    the Path Table is scanned by a unit parallel to the edge pipeline).
    """
    singletons = subgraph.singletons()
    if not singletons:
        return None, 0
    singleton_set = set(singletons)
    best: Optional[StepCandidate] = None
    paths_examined = 0
    for s in singletons:
        node_s = subgraph.node_id(s)
        for v in range(subgraph.n_nodes):
            if v == s:
                continue
            if v in singleton_set and v < s:
                continue  # singleton-singleton pairs counted once
            paths_examined += 1
            if v not in singleton_set and subgraph.dependent[v] > 0:
                continue  # removing v would strand its dependents
            weight = subgraph.graph.distance(
                node_s, subgraph.node_id(v)
            )
            if best is None or weight < best.weight:
                best = StepCandidate(
                    step="3", i=min(s, v), j=max(s, v), weight=weight, via_path=True
                )
    return best, paths_examined
