"""Candidate selection for Promatch's matching steps (Algorithm 1).

One predecoding round scans every edge of the decoding subgraph once (the
hardware pipeline of Figure 10) and classifies each edge into the step
that may commit it:

* **Step 2.1** -- matching creates no singleton and one endpoint has
  degree 1 (this edge is that endpoint's only escape from singleton-hood);
  lowest weight wins.
* **Step 2.2** -- no singleton created, both endpoints degree >= 2;
  lowest weight wins.
* **Step 4.1 / 4.2** -- the singleton-creating counterparts ("risky"
  candidates), used only when nothing safer exists.
* **Step 3** (separate scan) -- when no Step-2 candidate exists and extant
  singletons remain, match a singleton to another flipped bit along the
  lowest-weight *path* in the decoding graph, provided the partner's
  removal strands nobody.

Step 1 (isolated pairs) needs no candidate scan -- see
:meth:`~repro.graph.subgraph.DecodingSubgraph.isolated_pairs`.

:func:`find_edge_candidates` is a vectorized numpy pass over the
subgraph's columnar edge arrays (one boolean-mask classification plus one
argmin per sub-step); :func:`find_edge_candidates_scalar` retains the
historic per-edge Python loop as the equivalence oracle -- both return
identical candidates, ties resolved by edge construction order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.graph.subgraph import (
    VECTOR_MIN_EDGES,
    DecodingSubgraph,
    SubgraphEdge,
)


@dataclass(frozen=True)
class StepCandidate:
    """A candidate prematch.

    Attributes:
        step: Sub-step label ("2.1", "2.2", "3", "4.1", "4.2").
        i, j: Local node indices in the subgraph.
        weight: Edge weight (Steps 2/4) or shortest-path weight (Step 3).
        via_path: True when the match follows a multi-edge path (Step 3):
            the committed correction is the whole path.
        edge_index: Columnar index of the candidate edge when the scan
            that produced it knows one (the vectorized pass does; the
            scalar oracle leaves it ``None``).  Excluded from equality --
            it is an addressing hint, not part of the candidate identity.
    """

    step: str
    i: int
    j: int
    weight: float
    via_path: bool = False
    edge_index: Optional[int] = field(default=None, compare=False)


_EMPTY: Dict[str, Optional[StepCandidate]] = {
    "2.1": None,
    "2.2": None,
    "4.1": None,
    "4.2": None,
}


def find_edge_candidates(
    subgraph: DecodingSubgraph, exact_singleton_check: bool = False
) -> Dict[str, Optional[StepCandidate]]:
    """One pipeline pass over the subgraph edges (Steps 2.1/2.2/4.1/4.2).

    Vectorized over the columnar edge arrays: the hardware singleton test
    (``#dependent_i - [deg_j == 1] > 0`` either way) and the degree-one
    classification are evaluated for every edge at once, then one stable
    sort by weight feeds a short walk that takes the first qualifying
    edge per sub-step -- stability keeps ties in construction order,
    exactly like the scalar scan's strict ``<``.
    ``exact_singleton_check`` augments the hardware test with the scalar
    degree-2 neighborhood check on the edges the vector pass cleared
    (the ablation's corner case cannot be expressed as a per-edge
    columnar predicate).

    Returns the best candidate per sub-step, or ``None`` where no edge
    qualifies.
    """
    n_live = subgraph.n_edges
    if n_live == 0:
        return dict(_EMPTY)
    if n_live < VECTOR_MIN_EDGES:
        return _find_edge_candidates_small(subgraph, exact_singleton_check)
    columns = subgraph.edge_columns()
    deg = subgraph.degree_array()
    dep = subgraph.dependent_array()
    ci, cj = columns.i, columns.j
    di1 = deg[ci] == 1
    dj1 = deg[cj] == 1
    # dep_i > [deg_j == 1] is the scalar "#dependent_i - [deg_j==1] > 0".
    creates = (dep[ci] > dj1) | (dep[cj] > di1)
    degree_one = di1 | dj1
    alive = subgraph.edge_alive
    all_alive = n_live == len(alive)
    if exact_singleton_check:
        # The hardware test cleared these edges; re-check the degree-2
        # corner case with the exact scalar predicate (live edges only).
        cleared = ~creates if all_alive else (~creates & alive)
        for k in np.nonzero(cleared)[0].tolist():
            if subgraph.creates_singleton(subgraph.edge_at(k), exact=True):
                creates[k] = True
    # One stable sort by weight, then a short walk picking the first hit
    # per sub-step: stability keeps ties in construction order, matching
    # the scalar scan's strict "<".  Dead edges are pushed past every
    # live edge instead of filtered, so no gather is needed.
    weights = columns.weight
    if all_alive:
        order = np.argsort(weights, kind="stable")
    else:
        order = np.argsort(np.where(alive, weights, np.inf), kind="stable")
    creates_flags = creates.tolist()
    degree_one_flags = degree_one.tolist()
    i_list, j_list = subgraph.endpoint_lists()
    w_list = weights.tolist()
    best: Dict[str, Optional[StepCandidate]] = dict(_EMPTY)
    found = 0
    taken = 0
    for k in order.tolist():
        if taken == n_live:
            break  # only dead edges remain
        taken += 1
        if creates_flags[k]:
            step = "4.1" if degree_one_flags[k] else "4.2"
        else:
            step = "2.1" if degree_one_flags[k] else "2.2"
        if best[step] is None:
            best[step] = StepCandidate(
                step=step,
                i=i_list[k],
                j=j_list[k],
                weight=w_list[k],
                edge_index=k,
            )
            found += 1
            if found == 4:
                break
    return best


def _find_edge_candidates_small(
    subgraph: DecodingSubgraph, exact_singleton_check: bool
) -> Dict[str, Optional[StepCandidate]]:
    """Small-subgraph short-circuit of :func:`find_edge_candidates`.

    One interpreter pass over the cached plain-Python column views --
    below :data:`~repro.graph.subgraph.VECTOR_MIN_EDGES` live edges,
    numpy's per-call overhead costs more than the loop it saves.  Same
    predicate, same strict-``<`` tie-breaking, identical results.
    """
    i_list, j_list, w_list, _o = subgraph.edge_value_lists()
    degree = subgraph.degree
    dependent = subgraph.dependent
    inf = float("inf")
    w21 = w22 = w41 = w42 = inf
    k21 = k22 = k41 = k42 = -1
    for k in subgraph.live_edge_indices():
        i, j = i_list[k], j_list[k]
        di1 = degree[i] == 1
        dj1 = degree[j] == 1
        # dep_i > [deg_j == 1] is the scalar "#dependent_i - [deg_j==1] > 0".
        creates = dependent[i] > dj1 or dependent[j] > di1
        if exact_singleton_check and not creates:
            creates = subgraph.creates_singleton(
                subgraph.edge_at(k), exact=True
            )
        weight = w_list[k]
        if creates:
            if di1 or dj1:
                if weight < w41:
                    w41, k41 = weight, k
            elif weight < w42:
                w42, k42 = weight, k
        elif di1 or dj1:
            if weight < w21:
                w21, k21 = weight, k
        elif weight < w22:
            w22, k22 = weight, k
    best: Dict[str, Optional[StepCandidate]] = dict(_EMPTY)
    for step, k in (("2.1", k21), ("2.2", k22), ("4.1", k41), ("4.2", k42)):
        if k >= 0:
            best[step] = StepCandidate(
                step=step,
                i=i_list[k],
                j=j_list[k],
                weight=w_list[k],
                edge_index=k,
            )
    return best


def find_edge_candidates_scalar(
    subgraph: DecodingSubgraph, exact_singleton_check: bool = False
) -> Dict[str, Optional[StepCandidate]]:
    """The historic per-edge Python scan (the equivalence oracle).

    Retained verbatim for :class:`~repro.core.promatch.
    ReferencePromatchPredecoder` and the vectorized-vs-scalar test
    matrix; results are identical to :func:`find_edge_candidates`.
    """
    best: Dict[str, Optional[StepCandidate]] = dict(_EMPTY)

    def consider(step: str, edge: SubgraphEdge) -> None:
        current = best[step]
        if current is None or edge.weight < current.weight:
            best[step] = StepCandidate(
                step=step, i=edge.i, j=edge.j, weight=edge.weight
            )

    for edge in subgraph.edges:
        degree_one = (
            min(subgraph.degree[edge.i], subgraph.degree[edge.j]) == 1
        )
        if not subgraph.creates_singleton(edge, exact=exact_singleton_check):
            consider("2.1" if degree_one else "2.2", edge)
        else:
            consider("4.1" if degree_one else "4.2", edge)
    return best


def find_step3_candidate(
    subgraph: DecodingSubgraph,
) -> tuple[Optional[StepCandidate], int]:
    """Scan singleton-to-node paths (Step 3).

    Returns the best candidate plus the number of paths examined (the
    cycle model charges ``max(#paths, #edges)`` for Step-3 rounds, since
    the Path Table is scanned by a unit parallel to the edge pipeline).
    Iterates the *live* local nodes, so the same scan serves both the
    rebuild-per-round and the incremental engines.
    """
    singletons = subgraph.singletons()
    if not singletons:
        return None, 0
    singleton_set = set(singletons)
    best: Optional[StepCandidate] = None
    paths_examined = 0
    live = subgraph.live_locals()  # liveness cannot change mid-scan
    for s in singletons:
        node_s = subgraph.node_id(s)
        for v in live:
            if v == s:
                continue
            if v in singleton_set and v < s:
                continue  # singleton-singleton pairs counted once
            paths_examined += 1
            if v not in singleton_set and subgraph.dependent[v] > 0:
                continue  # removing v would strand its dependents
            weight = subgraph.graph.distance(
                node_s, subgraph.node_id(v)
            )
            if best is None or weight < best.weight:
                best = StepCandidate(
                    step="3", i=min(s, v), j=max(s, v), weight=weight, via_path=True
                )
    return best, paths_examined
