"""Promatch: the paper's locality-aware adaptive predecoder."""

from repro.core.promatch import PromatchPredecoder, ReferencePromatchPredecoder
from repro.core.steps import (
    StepCandidate,
    find_edge_candidates,
    find_edge_candidates_scalar,
    find_step3_candidate,
)

__all__ = [
    "PromatchPredecoder",
    "ReferencePromatchPredecoder",
    "StepCandidate",
    "find_edge_candidates",
    "find_edge_candidates_scalar",
    "find_step3_candidate",
]
