"""Promatch: the paper's locality-aware adaptive predecoder."""

from repro.core.promatch import PromatchPredecoder
from repro.core.steps import (
    StepCandidate,
    find_edge_candidates,
    find_step3_candidate,
)

__all__ = [
    "PromatchPredecoder",
    "StepCandidate",
    "find_edge_candidates",
    "find_step3_candidate",
]
