"""Promatch: the locality-aware, adaptive, real-time predecoder (Section 4).

The predecoding loop, per Algorithm 1:

1. While the syndrome is too heavy for the main decoder to finish in the
   remaining time, take the decoding subgraph and:

   * **Step 1**: match *all* isolated pairs simultaneously (they are each
     other's only option; matching them can never create singletons).
   * Otherwise scan the edges once and commit **one** pair, prioritizing
     Step 2.1 > 2.2 (no singleton created) > Step 3 (rescue an extant
     singleton along the cheapest path) > Step 4.1 > 4.2 (risky,
     singleton-creating -- the only steps that may strand nodes).

2. After every committed match, re-check the *adaptive* stop condition:
   stop as soon as the Hamming weight is within the main decoder's
   capability **and** the main decoder's search fits in the cycles still
   left before the 1 us deadline.  This is what lets Promatch stop at
   HW 10, 8, or 6 depending on how much time predecoding consumed
   (Figures 16/17).

Cycle accounting follows Section 6.4: each round costs the number of
subgraph edges scanned; Step-3 rounds cost ``max(#paths, #edges)``.
Blowing the budget aborts predecoding ("categorized as a logical error").

Engine layout
-------------
:class:`PromatchPredecoder` runs on the **incremental subgraph engine**:
the :class:`~repro.graph.subgraph.DecodingSubgraph` is built once per
syndrome and matched nodes are removed in place between rounds
(:meth:`~repro.graph.subgraph.DecodingSubgraph.remove_nodes`), while the
candidate scan is the vectorized columnar pass
(:func:`~repro.core.steps.find_edge_candidates`).  The cycle model is
unchanged -- the hardware still re-scans the live edges every round, and
that is exactly what each round is charged; only the software cost of
rebuilding Python structures per round is gone.

:class:`ReferencePromatchPredecoder` retains the historic engine --
rebuild the subgraph from the residual events each round, scalar
candidate scan, dedup-only batch path -- as the equivalence oracle,
exactly like ``ReferenceUnionFindDecoder`` on the union-find side.
Results are element-wise identical; only the speed differs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.steps import (
    StepCandidate,
    find_edge_candidates,
    find_edge_candidates_scalar,
    find_step3_candidate,
)
from repro.decoders.base import PredecodeResult, Predecoder, RoundTrace
from repro.graph.decoding_graph import DecodingGraph
from repro.graph.subgraph import DecodingSubgraph
from repro.hardware.latency import BUDGET_CYCLES, astrea_cycles

#: Step labels in commit-priority order (after Step 1).
_STEP_PRIORITY = ("2.1", "2.2", "3", "4.1", "4.2")

_STEP_NUMBER = {"1": 1, "2.1": 2, "2.2": 2, "3": 3, "4.1": 4, "4.2": 4}


class PromatchPredecoder(Predecoder):
    """The paper's adaptive predecoder (incremental subgraph engine).

    Args:
        graph: Decoding graph shared with the main decoder.
        main_capability: Largest Hamming weight the main decoder accepts
            (Astrea: 10).
        main_cycle_model: HW -> cycles needed by the main decoder, used by
            the adaptive stop condition (default: Astrea's brute-force
            search cost).
        budget_cycles: Total predecode + decode cycle budget (960 ns).
        exact_singleton_check: Replace the hardware's approximate
            singleton test (Figure 11) with an exact one (ablation).
    """

    name = "Promatch"

    def __init__(
        self,
        graph: DecodingGraph,
        main_capability: int = 10,
        main_cycle_model: Callable[[int], int] = astrea_cycles,
        budget_cycles: float = BUDGET_CYCLES,
        exact_singleton_check: bool = False,
        enable_step3: bool = True,
        enable_singleton_avoidance: bool = True,
        collect_trace: bool = False,
    ) -> None:
        super().__init__(graph)
        self.main_capability = main_capability
        self.main_cycle_model = main_cycle_model
        #: Per-HW memo of ``main_cycle_model`` -- the adaptive stop
        #: condition re-evaluates it after every committed pair, and the
        #: model is a pure function of the Hamming weight.
        self._cycle_model_cache: Dict[int, float] = {}
        self.budget_cycles = budget_cycles
        self.exact_singleton_check = exact_singleton_check
        self.collect_trace = collect_trace
        # Ablation knobs (DESIGN.md Section 5): disabling Step 3 removes
        # singleton rescue; disabling singleton avoidance collapses Steps
        # 2/4 into pure lowest-weight greed (a Smith-style matcher with
        # Promatch's adaptive stop).
        self.enable_step3 = enable_step3
        self.enable_singleton_avoidance = enable_singleton_avoidance

    # -- public API ---------------------------------------------------------------

    def predecode(
        self, events: Sequence[int], budget_cycles: Optional[float] = None
    ) -> PredecodeResult:
        budget = self.budget_cycles if budget_cycles is None else budget_cycles
        active: List[int] = sorted(int(e) for e in events)
        result = PredecodeResult(remaining=tuple(active))
        if self._sufficient_coverage(len(active), budget):
            return result
        return self._predecode_rounds(self._build_subgraph(active), result, budget)

    #: Distinct syndromes whose subgraph edge masks are computed per bulk
    #: membership pass in :meth:`predecode_uniques` (bounds the boolean
    #: member/selection matrices to ``BULK_CHUNK x n_graph_edges``).
    BULK_CHUNK = 1024

    def predecode_uniques(
        self,
        uniques: Sequence[Tuple[int, ...]],
        budget_cycles: Optional[float] = None,
    ) -> List[PredecodeResult]:
        """Batched predecode core: bulk subgraph construction.

        Mirrors the union-find growth engine's batch pattern: the
        flipped-endpoint membership test -- the decoding-graph-sized part
        of building each syndrome's subgraph -- is evaluated for a whole
        chunk of distinct syndromes in one ``chunk x n_edges`` boolean
        pass, and each syndrome then runs the incremental round loop on
        its precomputed edge selection.  Element-wise identical to the
        per-shot :meth:`predecode` loop.
        """
        budget = self.budget_cycles if budget_cycles is None else budget_cycles
        results: List[Optional[PredecodeResult]] = [None] * len(uniques)
        work: List[Tuple[int, List[int], PredecodeResult]] = []
        for slot, events in enumerate(uniques):
            active = sorted(int(e) for e in events)
            result = PredecodeResult(remaining=tuple(active))
            if self._sufficient_coverage(len(active), budget):
                results[slot] = result
            else:
                if len(set(active)) != len(active):
                    raise ValueError("duplicate detection events")
                work.append((slot, active, result))
        if not work:
            return results
        arrays = self.graph.edge_arrays()
        edge_u, edge_v = arrays.u, arrays.v
        n_columns = self.graph.n_nodes + 1
        for start in range(0, len(work), self.BULK_CHUNK):
            chunk = work[start : start + self.BULK_CHUNK]
            member = np.zeros((len(chunk), n_columns), dtype=bool)
            for row, (_slot, active, _result) in enumerate(chunk):
                member[row, active] = True
            selected = member[:, edge_u] & member[:, edge_v]
            for row, (slot, active, result) in enumerate(chunk):
                subgraph = DecodingSubgraph.from_edge_selection(
                    self.graph, active, np.nonzero(selected[row])[0]
                )
                results[slot] = self._predecode_rounds(subgraph, result, budget)
        return results

    def _predecode_rounds(
        self,
        subgraph: DecodingSubgraph,
        result: PredecodeResult,
        budget: float,
    ) -> PredecodeResult:
        """Run predecoding rounds on a freshly-built subgraph."""
        while True:
            cycles_before = result.cycles
            pairs_before = len(result.pairs)
            weight_before = result.weight
            steps_before = result.steps_used
            committed, step_label = self._run_round(subgraph, result, budget)
            if self.collect_trace:
                result.trace.append(
                    RoundTrace(
                        round_index=result.rounds,
                        hamming_weight=subgraph.n_nodes,
                        n_edges=subgraph.n_edges,
                        step=step_label,
                        committed=tuple(
                            (subgraph.node_id(i), subgraph.node_id(j))
                            for i, j in committed
                        ),
                        cycles=result.cycles - cycles_before,
                    )
                )
            if result.cycles > budget:
                # The deadline fell inside this round: its commits never
                # made it to the main decoder, so roll them back -- the
                # aborted round's nodes stay in ``remaining`` and must not
                # also appear in ``pairs``/``weight``/``pair_observables``.
                del result.pairs[pairs_before:]
                del result.pair_observables[pairs_before:]
                result.weight = weight_before
                result.steps_used = steps_before
                result.aborted = True
                break
            if not committed:
                break  # nothing matchable; hand over whatever remains
            subgraph = self._advance(subgraph, committed)
            result.rounds += 1
            if self._sufficient_coverage(
                subgraph.n_nodes, budget - result.cycles
            ):
                break
        result.remaining = tuple(subgraph.live_node_ids())
        assert not (
            {node for pair in result.pairs for node in pair}
            & set(result.remaining)
        ), "predecode invariant violated: committed pairs overlap remaining"
        return result

    # -- engine hooks -----------------------------------------------------------------

    def _build_subgraph(self, active: List[int]) -> DecodingSubgraph:
        """Construct the syndrome's subgraph (vectorized columnar pass)."""
        return DecodingSubgraph.from_columnar(self.graph, active)

    def _advance(
        self, subgraph: DecodingSubgraph, committed: List[Tuple[int, int]]
    ) -> DecodingSubgraph:
        """Carry the subgraph into the next round (incremental removal)."""
        subgraph.remove_nodes([i for pair in committed for i in pair])
        return subgraph

    def _scan_candidates(
        self, subgraph: DecodingSubgraph
    ) -> Dict[str, Optional[StepCandidate]]:
        """The Steps 2/4 edge scan (vectorized columnar pass)."""
        return find_edge_candidates(
            subgraph, exact_singleton_check=self.exact_singleton_check
        )

    def _isolated_pairs_sorted(
        self, subgraph: DecodingSubgraph
    ) -> List[Tuple[int, int, float, int]]:
        """Step-1 pairs as ``(i, j, weight, obs)`` cheapest-first.

        Object-free: reads the cached columnar value lists instead of
        building ``SubgraphEdge``s every round.  The stable sort keeps
        equal-weight pairs in construction order, exactly like sorting
        the edge objects.
        """
        i_list, j_list, w_list, o_list = subgraph.edge_value_lists()
        indices = subgraph.isolated_pair_indices()
        indices.sort(key=w_list.__getitem__)
        return [
            (i_list[k], j_list[k], w_list[k], o_list[k]) for k in indices
        ]

    # -- round logic -----------------------------------------------------------------

    def _sufficient_coverage(self, hamming_weight: int, remaining_cycles: float) -> bool:
        """Adaptive stop: can the main decoder finish in the time left?"""
        if hamming_weight == 0:
            return True
        if hamming_weight > self.main_capability:
            return False
        cycles = self._cycle_model_cache.get(hamming_weight)
        if cycles is None:
            cycles = self._cycle_model_cache[hamming_weight] = (
                self.main_cycle_model(hamming_weight)
            )
        return cycles <= remaining_cycles

    def _run_round(
        self,
        subgraph: DecodingSubgraph,
        result: PredecodeResult,
        budget: float,
    ) -> Tuple[List[Tuple[int, int]], str]:
        """Execute one predecoding round.

        Returns the committed local pairs and the label of the step that
        committed them ("" when nothing was matchable).
        """
        isolated = self._isolated_pairs_sorted(subgraph)
        if isolated:
            # Step 1 (Algorithm 1 inner loop): "while isolated pairs exist
            # and HW is not low enough, match isolated pairs" -- pairs are
            # committed lowest-weight-first and the adaptive stop condition
            # is re-checked after each one, so the predecoder never
            # over-covers and the main decoder stays fully utilized.
            result.cycles += max(1, subgraph.n_edges)
            result.steps_used = max(result.steps_used, 1)
            committed = []
            hamming_weight = subgraph.n_nodes
            for i, j, weight, obs_mask in isolated:
                self._commit_edge(subgraph, i, j, weight, obs_mask, result)
                committed.append((i, j))
                hamming_weight -= 2
                if self._sufficient_coverage(
                    hamming_weight, budget - result.cycles
                ):
                    break
            return committed, "1"

        candidates = self._scan_candidates(subgraph)
        if not self.enable_singleton_avoidance:
            # Ablation: fold the risky candidates into the safe slots so
            # selection degenerates to lowest-weight greed.  Folded
            # candidates are relabeled to the slot they land in -- in
            # this mode Steps 2/4 are collapsed by design, so
            # ``steps_used`` and the round trace must never report a
            # Step-4 engagement (the Table 6 census buckets by label).
            for safe, risky in (("2.1", "4.1"), ("2.2", "4.2")):
                best_safe, best_risky = candidates[safe], candidates[risky]
                if best_risky is not None and (
                    best_safe is None or best_risky.weight < best_safe.weight
                ):
                    candidates[safe] = replace(best_risky, step=safe)
                candidates[risky] = None
        round_cost = max(1, subgraph.n_edges)
        chosen: Optional[StepCandidate] = None
        for step in ("2.1", "2.2"):
            if candidates[step] is not None:
                chosen = candidates[step]
                break
        if chosen is None and self.enable_step3:
            step3, paths_examined = find_step3_candidate(subgraph)
            if paths_examined:
                round_cost = max(round_cost, paths_examined)
            if step3 is not None:
                chosen = step3
        if chosen is None:
            for step in ("4.1", "4.2"):
                if candidates[step] is not None:
                    chosen = candidates[step]
                    break
        result.cycles += round_cost
        if chosen is None:
            return [], ""
        result.steps_used = max(result.steps_used, _STEP_NUMBER[chosen.step])
        if chosen.via_path:
            self._commit_path(subgraph, chosen, result)
        else:
            if chosen.edge_index is not None:
                edge_obs = subgraph.edge_at(chosen.edge_index).observable_mask
            else:
                edge_obs = next(
                    obs
                    for j, _w, obs in subgraph.adjacency[chosen.i]
                    if j == chosen.j
                )
            self._commit_edge(
                subgraph, chosen.i, chosen.j, chosen.weight, edge_obs, result
            )
        return [(chosen.i, chosen.j)], chosen.step

    # -- commit helpers ----------------------------------------------------------------

    def _commit_edge(
        self,
        subgraph: DecodingSubgraph,
        i: int,
        j: int,
        weight: float,
        observable_mask: int,
        result: PredecodeResult,
    ) -> None:
        nodes = subgraph.nodes
        result.pairs.append((nodes[i], nodes[j]))
        result.pair_observables.append(observable_mask)
        result.weight += weight

    def _commit_path(
        self, subgraph: DecodingSubgraph, candidate: StepCandidate,
        result: PredecodeResult,
    ) -> None:
        u = subgraph.node_id(candidate.i)
        v = subgraph.node_id(candidate.j)
        result.pairs.append((u, v))
        result.pair_observables.append(self.graph.path_observable(u, v))
        result.weight += candidate.weight


class ReferencePromatchPredecoder(PromatchPredecoder):
    """The retained rebuild-per-round engine: the equivalence oracle.

    ``_advance`` rebuilds a fresh :class:`DecodingSubgraph` from the
    residual events after every round (the historic O(subgraph) Python
    reconstruction) and ``_scan_candidates`` runs the scalar per-edge
    loop, so ``predecode_batch`` is exactly the historic "dedup IS the
    batch implementation" path.  Kept as the equivalence oracle for the
    incremental==reference test matrix and as the baseline the Promatch
    predecode bench measures the incremental engine against.  Results
    are element-wise identical to :class:`PromatchPredecoder`; only the
    speed differs.
    """

    name = "Promatch-reference"

    # Not redundant with Predecoder.predecode_uniques: the parent class
    # shadows it with the bulk-construction batch core, and this
    # restores the scalar per-unique loop -- dedup IS the batch
    # implementation for the baseline.
    predecode_uniques = Predecoder.predecode_uniques

    def _build_subgraph(self, active: List[int]) -> DecodingSubgraph:
        return DecodingSubgraph(self.graph, active)

    def _advance(
        self, subgraph: DecodingSubgraph, committed: List[Tuple[int, int]]
    ) -> DecodingSubgraph:
        removed = {i for pair in committed for i in pair}
        active = [
            subgraph.node_id(i)
            for i in subgraph.live_locals()
            if i not in removed
        ]
        return DecodingSubgraph(self.graph, active)

    def _scan_candidates(
        self, subgraph: DecodingSubgraph
    ) -> Dict[str, Optional[StepCandidate]]:
        return find_edge_candidates_scalar(
            subgraph, exact_singleton_check=self.exact_singleton_check
        )

    def _isolated_pairs_sorted(
        self, subgraph: DecodingSubgraph
    ) -> List[Tuple[int, int, float, int]]:
        # The historic object path: scan the edge list, sort the
        # SubgraphEdge objects by weight.
        return [
            (edge.i, edge.j, edge.weight, edge.observable_mask)
            for edge in sorted(
                subgraph.isolated_pairs(), key=lambda e: e.weight
            )
        ]
