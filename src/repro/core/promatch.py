"""Promatch: the locality-aware, adaptive, real-time predecoder (Section 4).

The predecoding loop, per Algorithm 1:

1. While the syndrome is too heavy for the main decoder to finish in the
   remaining time, rebuild the decoding subgraph and:

   * **Step 1**: match *all* isolated pairs simultaneously (they are each
     other's only option; matching them can never create singletons).
   * Otherwise scan the edges once and commit **one** pair, prioritizing
     Step 2.1 > 2.2 (no singleton created) > Step 3 (rescue an extant
     singleton along the cheapest path) > Step 4.1 > 4.2 (risky,
     singleton-creating -- the only steps that may strand nodes).

2. After every committed match, re-check the *adaptive* stop condition:
   stop as soon as the Hamming weight is within the main decoder's
   capability **and** the main decoder's search fits in the cycles still
   left before the 1 us deadline.  This is what lets Promatch stop at
   HW 10, 8, or 6 depending on how much time predecoding consumed
   (Figures 16/17).

Cycle accounting follows Section 6.4: each round costs the number of
subgraph edges scanned; Step-3 rounds cost ``max(#paths, #edges)``.
Blowing the budget aborts predecoding ("categorized as a logical error").
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.steps import StepCandidate, find_edge_candidates, find_step3_candidate
from repro.decoders.base import PredecodeResult, Predecoder, RoundTrace
from repro.graph.decoding_graph import DecodingGraph
from repro.graph.subgraph import DecodingSubgraph
from repro.hardware.latency import BUDGET_CYCLES, astrea_cycles

#: Step labels in commit-priority order (after Step 1).
_STEP_PRIORITY = ("2.1", "2.2", "3", "4.1", "4.2")

_STEP_NUMBER = {"1": 1, "2.1": 2, "2.2": 2, "3": 3, "4.1": 4, "4.2": 4}


class PromatchPredecoder(Predecoder):
    """The paper's adaptive predecoder.

    Args:
        graph: Decoding graph shared with the main decoder.
        main_capability: Largest Hamming weight the main decoder accepts
            (Astrea: 10).
        main_cycle_model: HW -> cycles needed by the main decoder, used by
            the adaptive stop condition (default: Astrea's brute-force
            search cost).
        budget_cycles: Total predecode + decode cycle budget (960 ns).
        exact_singleton_check: Replace the hardware's approximate
            singleton test (Figure 11) with an exact one (ablation).
    """

    name = "Promatch"

    def __init__(
        self,
        graph: DecodingGraph,
        main_capability: int = 10,
        main_cycle_model: Callable[[int], int] = astrea_cycles,
        budget_cycles: float = BUDGET_CYCLES,
        exact_singleton_check: bool = False,
        enable_step3: bool = True,
        enable_singleton_avoidance: bool = True,
        collect_trace: bool = False,
    ) -> None:
        super().__init__(graph)
        self.main_capability = main_capability
        self.main_cycle_model = main_cycle_model
        self.budget_cycles = budget_cycles
        self.exact_singleton_check = exact_singleton_check
        self.collect_trace = collect_trace
        # Ablation knobs (DESIGN.md Section 5): disabling Step 3 removes
        # singleton rescue; disabling singleton avoidance collapses Steps
        # 2/4 into pure lowest-weight greed (a Smith-style matcher with
        # Promatch's adaptive stop).
        self.enable_step3 = enable_step3
        self.enable_singleton_avoidance = enable_singleton_avoidance

    # -- public API ---------------------------------------------------------------

    def predecode(
        self, events: Sequence[int], budget_cycles: Optional[float] = None
    ) -> PredecodeResult:
        budget = self.budget_cycles if budget_cycles is None else budget_cycles
        active: List[int] = sorted(int(e) for e in events)
        result = PredecodeResult(remaining=tuple(active))
        while True:
            hamming_weight = len(active)
            if self._sufficient_coverage(hamming_weight, budget - result.cycles):
                break
            subgraph = DecodingSubgraph(self.graph, active)
            cycles_before = result.cycles
            pairs_before = len(result.pairs)
            weight_before = result.weight
            steps_before = result.steps_used
            committed, step_label = self._run_round(subgraph, result, budget)
            if self.collect_trace:
                result.trace.append(
                    RoundTrace(
                        round_index=result.rounds,
                        hamming_weight=subgraph.n_nodes,
                        n_edges=subgraph.n_edges,
                        step=step_label,
                        committed=tuple(
                            (subgraph.node_id(i), subgraph.node_id(j))
                            for i, j in committed
                        ),
                        cycles=result.cycles - cycles_before,
                    )
                )
            if result.cycles > budget:
                # The deadline fell inside this round: its commits never
                # made it to the main decoder, so roll them back -- the
                # aborted round's nodes stay in ``remaining`` and must not
                # also appear in ``pairs``/``weight``/``pair_observables``.
                del result.pairs[pairs_before:]
                del result.pair_observables[pairs_before:]
                result.weight = weight_before
                result.steps_used = steps_before
                result.aborted = True
                break
            if not committed:
                break  # nothing matchable; hand over whatever remains
            active = self._remove_matched(active, committed)
            result.rounds += 1
        result.remaining = tuple(active)
        assert not (
            {node for pair in result.pairs for node in pair}
            & set(result.remaining)
        ), "predecode invariant violated: committed pairs overlap remaining"
        return result

    # -- round logic -----------------------------------------------------------------

    def _sufficient_coverage(self, hamming_weight: int, remaining_cycles: float) -> bool:
        """Adaptive stop: can the main decoder finish in the time left?"""
        if hamming_weight == 0:
            return True
        if hamming_weight > self.main_capability:
            return False
        return self.main_cycle_model(hamming_weight) <= remaining_cycles

    def _run_round(
        self,
        subgraph: DecodingSubgraph,
        result: PredecodeResult,
        budget: float,
    ) -> Tuple[List[Tuple[int, int]], str]:
        """Execute one predecoding round.

        Returns the committed local pairs and the label of the step that
        committed them ("" when nothing was matchable).
        """
        isolated = subgraph.isolated_pairs()
        if isolated:
            # Step 1 (Algorithm 1 inner loop): "while isolated pairs exist
            # and HW is not low enough, match isolated pairs" -- pairs are
            # committed lowest-weight-first and the adaptive stop condition
            # is re-checked after each one, so the predecoder never
            # over-covers and the main decoder stays fully utilized.
            result.cycles += max(1, subgraph.n_edges)
            result.steps_used = max(result.steps_used, 1)
            committed = []
            hamming_weight = subgraph.n_nodes
            for edge in sorted(isolated, key=lambda e: e.weight):
                self._commit_edge(subgraph, edge.i, edge.j, edge.weight,
                                  edge.observable_mask, result)
                committed.append((edge.i, edge.j))
                hamming_weight -= 2
                if self._sufficient_coverage(
                    hamming_weight, budget - result.cycles
                ):
                    break
            return committed, "1"

        candidates = find_edge_candidates(
            subgraph, exact_singleton_check=self.exact_singleton_check
        )
        if not self.enable_singleton_avoidance:
            # Ablation: fold the risky candidates into the safe slots so
            # selection degenerates to lowest-weight greed.
            for safe, risky in (("2.1", "4.1"), ("2.2", "4.2")):
                best_safe, best_risky = candidates[safe], candidates[risky]
                if best_risky is not None and (
                    best_safe is None or best_risky.weight < best_safe.weight
                ):
                    candidates[safe] = best_risky
                candidates[risky] = None
        round_cost = max(1, subgraph.n_edges)
        chosen: Optional[StepCandidate] = None
        for step in ("2.1", "2.2"):
            if candidates[step] is not None:
                chosen = candidates[step]
                break
        if chosen is None and self.enable_step3:
            step3, paths_examined = find_step3_candidate(subgraph)
            if paths_examined:
                round_cost = max(round_cost, paths_examined)
            if step3 is not None:
                chosen = step3
        if chosen is None:
            for step in ("4.1", "4.2"):
                if candidates[step] is not None:
                    chosen = candidates[step]
                    break
        result.cycles += round_cost
        if chosen is None:
            return [], ""
        result.steps_used = max(result.steps_used, _STEP_NUMBER[chosen.step])
        if chosen.via_path:
            self._commit_path(subgraph, chosen, result)
        else:
            edge_obs = next(
                obs
                for j, _w, obs in subgraph.adjacency[chosen.i]
                if j == chosen.j
            )
            self._commit_edge(
                subgraph, chosen.i, chosen.j, chosen.weight, edge_obs, result
            )
        return [(chosen.i, chosen.j)], chosen.step

    # -- commit helpers ----------------------------------------------------------------

    def _commit_edge(
        self,
        subgraph: DecodingSubgraph,
        i: int,
        j: int,
        weight: float,
        observable_mask: int,
        result: PredecodeResult,
    ) -> None:
        u, v = subgraph.node_id(i), subgraph.node_id(j)
        result.pairs.append((u, v))
        result.pair_observables.append(observable_mask)
        result.weight += weight

    def _commit_path(
        self, subgraph: DecodingSubgraph, candidate: StepCandidate,
        result: PredecodeResult,
    ) -> None:
        u = subgraph.node_id(candidate.i)
        v = subgraph.node_id(candidate.j)
        result.pairs.append((u, v))
        result.pair_observables.append(self.graph.path_observable(u, v))
        result.weight += candidate.weight

    @staticmethod
    def _remove_matched(
        active: List[int], committed_local: List[Tuple[int, int]]
    ) -> List[int]:
        removed_local = {i for pair in committed_local for i in pair}
        return [node for idx, node in enumerate(active) if idx not in removed_local]
