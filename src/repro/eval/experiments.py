"""Experiment plumbing shared by examples, tests, and benchmarks.

:class:`Workbench` wires the full stack for one (distance, p) operating
point -- code, memory circuit, cached DEM, weighted decoding graph,
samplers, and the paper's decoder zoo -- so every experiment script reads
like its corresponding table.

The census functions reproduce the paper's high-Hamming-weight studies:
chain lengths (Figure 5), HW reduction (Figures 16/17), predecoding
latency (Tables 4/5), and step usage (Table 6).  They run on syndromes
sampled *conditioned on* HW exceeding Astrea's capability, importance-
weighted by the exact Poisson-binomial fault-count distribution so that
reported histograms are genuine probabilities, not per-sample fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.core.promatch import PromatchPredecoder
from repro.decoders.astrea import ASTREA_MAX_HAMMING_WEIGHT, AstreaDecoder
from repro.decoders.astrea_g import AstreaGDecoder
from repro.decoders.base import Decoder, Predecoder
from repro.decoders.clique import CliquePredecoder
from repro.decoders.combined import ParallelDecoder, PredecodedDecoder
from repro.decoders.mwpm import MWPMDecoder
from repro.decoders.smith import SmithPredecoder
from repro.decoders.unionfind import UnionFindDecoder
from repro.dem.model import DetectorErrorModel
from repro.eval.cache import build_experiment_and_dem
from repro.eval.poisson_binomial import poisson_binomial_pmf
from repro.eval.stats import weighted_histogram
from repro.graph.decoding_graph import DecodingGraph, build_decoding_graph
from repro.hardware.latency import cycles_to_ns
from repro.noise.model import CircuitNoiseModel, NoiseModel
from repro.sim.sampler import DemSampler, ExactKSampler, SyndromeBatch
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class Workbench:
    """Everything needed to evaluate decoders at one operating point."""

    distance: int
    rounds: int
    p: float
    dem: DetectorErrorModel
    graph: DecodingGraph
    rng: np.random.Generator
    decoders: Dict[str, Decoder] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        distance: int,
        p: float,
        rounds: Optional[int] = None,
        rng: RngLike = None,
        noise: Optional[NoiseModel] = None,
        prune_probability: Optional[float] = None,
    ) -> "Workbench":
        """Construct the full stack for one (distance, p) point.

        The DEM comes from the disk cache when available; the decoding
        graph is weighted for the requested ``p``.  ``prune_probability``
        tunes Astrea-G's edge pruning (default: the MWPM LER scale for
        this distance, per the paper's "probabilities below the LER").
        """
        code = RotatedSurfaceCode(distance)
        rounds = distance if rounds is None else rounds
        noise = noise or CircuitNoiseModel()
        _experiment, dem = build_experiment_and_dem(code, rounds, noise)
        graph = build_decoding_graph(dem, p)
        bench = cls(
            distance=distance,
            rounds=rounds,
            p=p,
            dem=dem,
            graph=graph,
            rng=ensure_rng(rng),
        )
        bench.decoders = bench.build_decoder_zoo(
            prune_probability=prune_probability
        )
        return bench

    # -- decoder zoo -----------------------------------------------------------------

    def build_decoder_zoo(
        self, prune_probability: Optional[float] = None
    ) -> Dict[str, Decoder]:
        """The paper's evaluation configurations (Tables 2 and 3)."""
        graph = self.graph
        if prune_probability is None:
            # "Pruning edges ... with error chain probabilities below the
            # LER": chains of ~ (d-1)/2 + 1 edges are at the LER scale.
            chain_edges = (self.distance - 1) // 2 + 1
            prune_probability = float(self.p) ** chain_edges
        astrea_g = AstreaGDecoder(graph, prune_probability=prune_probability)
        promatch_astrea = PredecodedDecoder(
            graph, PromatchPredecoder(graph), AstreaDecoder(graph)
        )
        smith_astrea = PredecodedDecoder(
            graph, SmithPredecoder(graph), AstreaDecoder(graph)
        )
        clique_astrea = PredecodedDecoder(
            graph, CliquePredecoder(graph), AstreaDecoder(graph)
        )
        zoo: Dict[str, Decoder] = {
            "MWPM": MWPMDecoder(graph),
            "Astrea-G": astrea_g,
            "Promatch+Astrea": promatch_astrea,
            "Smith+Astrea": smith_astrea,
            "Clique+Astrea": clique_astrea,
            "Promatch || AG": ParallelDecoder(
                graph, promatch_astrea, astrea_g, name="Promatch || AG"
            ),
            "Smith || AG": ParallelDecoder(
                graph, smith_astrea, astrea_g, name="Smith || AG"
            ),
            "Clique || AG": ParallelDecoder(
                graph, clique_astrea, astrea_g, name="Clique || AG"
            ),
            "UnionFind": UnionFindDecoder(graph),
        }
        return zoo

    # -- samplers --------------------------------------------------------------------

    def sample(self, shots: int) -> SyndromeBatch:
        """Plain Monte-Carlo syndromes at this operating point."""
        return DemSampler(self.dem, self.p, rng=self.rng).sample(shots)

    def sample_exact_k(self, k: int, shots: int) -> SyndromeBatch:
        """Syndromes with exactly ``k`` injected faults."""
        return ExactKSampler(self.dem, self.p, rng=self.rng).sample(k, shots)

    def sample_high_hw(
        self,
        shots_per_k: int,
        hw_min: int = ASTREA_MAX_HAMMING_WEIGHT + 1,
        k_max: int = 24,
    ) -> SyndromeBatch:
        """High-HW syndromes with per-shot occurrence-probability weights.

        Samples exactly-k syndromes for each plausible k, keeps those with
        HW >= ``hw_min`` and attaches weight ``P_o(k) / shots_per_k``, so
        weighted sums over the batch estimate joint probabilities
        P(syndrome property AND HW >= hw_min) -- the quantity behind the
        paper's Figures 5/16/17 and Tables 4-6.
        """
        pmf, _tail = poisson_binomial_pmf(self.dem.probabilities(self.p), k_max)
        sampler = ExactKSampler(self.dem, self.p, rng=self.rng)
        kept = SyndromeBatch(
            events=[],
            observables=np.zeros(0, dtype=np.int64),
            fault_counts=np.zeros(0, dtype=np.int64),
            weights=np.zeros(0, dtype=np.float64),
            dense=np.zeros((0, self.dem.n_detectors), dtype=bool),
        )
        k_lo = max(1, hw_min // 2)  # a fault flips at most two detectors
        for k in range(k_lo, min(k_max, sampler.n_positive) + 1):
            if pmf[k] <= 0.0:
                continue
            batch = sampler.sample(k, shots_per_k)
            mask = batch.hamming_weights() >= hw_min
            if not mask.any():
                continue
            keep_idx = np.nonzero(mask)[0]
            kept.extend(
                SyndromeBatch(
                    events=[batch.events[i] for i in keep_idx],
                    observables=batch.observables[keep_idx],
                    fault_counts=np.full(keep_idx.size, k, dtype=np.int64),
                    weights=np.full(
                        keep_idx.size, pmf[k] / shots_per_k, dtype=np.float64
                    ),
                    dense=None if batch.dense is None else batch.dense[keep_idx],
                )
            )
        return kept


# -- censuses over high-HW syndromes ------------------------------------------------


def chain_length_census(
    graph: DecodingGraph, batch: SyndromeBatch, max_length: int = 12
) -> np.ndarray:
    """Figure 5: distribution of MWPM error-chain lengths.

    Decodes each syndrome with exact MWPM and histograms the number of
    decoding-graph edges each matched pair (or boundary match) spans,
    weighted by syndrome occurrence probability; the result is normalized
    to a probability distribution over chain length 1..max_length.
    """
    decoder = MWPMDecoder(graph)
    weights = (
        batch.weights
        if batch.weights is not None
        else np.ones(batch.shots, dtype=np.float64)
    )
    histogram = np.zeros(max_length + 1, dtype=np.float64)
    for result, weight in zip(decoder.decode_batch(batch), weights):
        for u, v in result.pairs:
            histogram[min(graph.path_length_edges(u, v), max_length)] += weight
        for u in result.boundary:
            length = graph.path_length_edges(u, graph.boundary_index)
            histogram[min(length, max_length)] += weight
    total = histogram.sum()
    return histogram / total if total > 0 else histogram


def hw_reduction_census(
    graph: DecodingGraph,
    batch: SyndromeBatch,
    predecoders: Dict[str, Predecoder],
    n_bins: int = 33,
) -> Dict[str, np.ndarray]:
    """Figures 16/17: HW distribution before and after predecoding.

    Returns probability-weighted histograms (joint with the HW > 10
    conditioning event): key "before" plus one key per predecoder.
    """
    weights = (
        batch.weights
        if batch.weights is not None
        else np.ones(batch.shots, dtype=np.float64)
    )
    histograms: Dict[str, np.ndarray] = {
        "before": weighted_histogram(
            [len(e) for e in batch.events], weights, n_bins
        )
    }
    for name, predecoder in predecoders.items():
        reduced = [
            len(report.remaining) for report in predecoder.predecode_batch(batch)
        ]
        histograms[name] = weighted_histogram(reduced, weights, n_bins)
    return histograms


@dataclass
class LatencyCensus:
    """Tables 4/5: predecode and total decode latency over high-HW syndromes."""

    predecode_avg_ns: float
    predecode_max_ns: float
    total_avg_ns: float
    total_max_ns: float
    deadline_miss_probability: float


def latency_census(
    graph: DecodingGraph, batch: SyndromeBatch, promatch: PromatchPredecoder,
    main: AstreaDecoder,
) -> LatencyCensus:
    """Measure Promatch's cycle consumption on a high-HW workload."""
    weights = (
        batch.weights
        if batch.weights is not None
        else np.ones(batch.shots, dtype=np.float64)
    )
    predecode_ns: List[float] = []
    total_ns: List[float] = []
    miss_weight = 0.0
    total_weight = 0.0
    reports = promatch.predecode_batch(batch)
    for report, weight in zip(reports, weights):
        total_weight += weight
        pre_ns = cycles_to_ns(report.cycles)
        main_result = main.decode(
            report.remaining, budget_cycles=promatch.budget_cycles - report.cycles
        )
        if report.aborted or not main_result.success:
            miss_weight += weight
            predecode_ns.append(pre_ns)
            total_ns.append(cycles_to_ns(promatch.budget_cycles))
            continue
        predecode_ns.append(pre_ns)
        total_ns.append(pre_ns + cycles_to_ns(main_result.cycles or 0))
    pre = np.asarray(predecode_ns)
    tot = np.asarray(total_ns)
    w = np.asarray(weights[: len(predecode_ns)])
    w_sum = w.sum() if w.sum() > 0 else 1.0
    return LatencyCensus(
        predecode_avg_ns=float((pre * w).sum() / w_sum),
        predecode_max_ns=float(pre.max()) if pre.size else 0.0,
        total_avg_ns=float((tot * w).sum() / w_sum),
        total_max_ns=float(tot.max()) if tot.size else 0.0,
        deadline_miss_probability=(
            miss_weight / total_weight if total_weight > 0 else 0.0
        ),
    )


def step_usage_census(
    batch: SyndromeBatch, promatch: PromatchPredecoder
) -> Dict[int, float]:
    """Table 6: fraction of high-HW syndromes whose deepest step is s.

    Returns conditional frequencies (normalized over the batch weights)
    for steps 1..4.
    """
    weights = (
        batch.weights
        if batch.weights is not None
        else np.ones(batch.shots, dtype=np.float64)
    )
    usage = {1: 0.0, 2: 0.0, 3: 0.0, 4: 0.0}
    total = 0.0
    for report, weight in zip(promatch.predecode_batch(batch), weights):
        total += weight
        if report.steps_used in usage:
            usage[report.steps_used] += weight
    if total > 0:
        usage = {step: value / total for step, value in usage.items()}
    return usage
