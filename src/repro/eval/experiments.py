"""Experiment plumbing shared by examples, tests, and benchmarks.

:class:`Workbench` wires the full stack for one (distance, p) operating
point -- code, memory circuit, cached DEM, weighted decoding graph,
samplers, and the paper's decoder zoo -- so every experiment script reads
like its corresponding table.

The census functions reproduce the paper's high-Hamming-weight studies:
chain lengths (Figure 5), HW reduction (Figures 16/17), predecoding
latency (Tables 4/5), and step usage (Table 6).  They run on syndromes
sampled *conditioned on* HW exceeding Astrea's capability, importance-
weighted by the exact Poisson-binomial fault-count distribution so that
reported histograms are genuine probabilities, not per-sample fractions:
each kept syndrome sampled at exactly ``k`` faults carries weight
``P_o(k) / shots_per_k``, so weighted sums estimate joint probabilities
with the conditioning event (see :meth:`Workbench.sample_high_hw`).

The predecoding censuses (`hw_reduction_census`, `latency_census`,
`step_usage_census`) drive ``Predecoder.predecode_batch`` on
all-distinct high-HW workloads, so they ride the batched predecode
pipeline of PR 5 -- Promatch's bulk subgraph construction plus the
incremental round engine -- with results element-wise identical to the
per-shot loop (see docs/batch_pipeline.md, "Batched predecoding").

Sharded censuses
----------------
Every census accepts ``shards``: the batch is split into contiguous
shot ranges evaluated in the same pre-seeded process pool the Eq. (1)
estimators use (:func:`repro.eval.pool.run_sharded`).  Workers do only
the expensive part -- decoding / predecoding their range -- and return
**per-shot rows**; the parent concatenates the rows back into shot order
and aggregates exactly as the sequential path does.  Because the
decoders are deterministic and no randomness is drawn census-side, the
result is bitwise identical at any shard width.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.core.promatch import PromatchPredecoder
from repro.decoders.astrea import ASTREA_MAX_HAMMING_WEIGHT, AstreaDecoder
from repro.decoders.astrea_g import AstreaGDecoder
from repro.decoders.base import Decoder, Predecoder
from repro.decoders.clique import CliquePredecoder
from repro.decoders.combined import ParallelDecoder, PredecodedDecoder
from repro.decoders.mwpm import MWPMDecoder
from repro.decoders.smith import SmithPredecoder
from repro.decoders.unionfind import UnionFindDecoder
from repro.dem.model import DetectorErrorModel
from repro.eval.cache import build_experiment_and_dem
from repro.eval.poisson_binomial import poisson_binomial_pmf
from repro.eval.pool import WorkerPool, pool_shared, run_sharded
from repro.eval.stats import weighted_histogram
from repro.graph.decoding_graph import DecodingGraph, build_decoding_graph
from repro.hardware.latency import cycles_to_ns
from repro.noise.model import CircuitNoiseModel, NoiseModel
from repro.sim.sampler import DemSampler, ExactKSampler, SyndromeBatch
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class Workbench:
    """Everything needed to evaluate decoders at one operating point."""

    distance: int
    rounds: int
    p: float
    dem: DetectorErrorModel
    graph: DecodingGraph
    rng: np.random.Generator
    noise: Optional[NoiseModel] = None
    decoders: Dict[str, Decoder] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        distance: int,
        p: float,
        rounds: Optional[int] = None,
        rng: RngLike = None,
        noise: Optional[NoiseModel] = None,
        prune_probability: Optional[float] = None,
    ) -> "Workbench":
        """Construct the full stack for one (distance, p) point.

        The DEM comes from the disk cache when available; the decoding
        graph is weighted for the requested ``p``.  ``prune_probability``
        tunes Astrea-G's edge pruning (default: the MWPM LER scale for
        this distance, per the paper's "probabilities below the LER").
        """
        code = RotatedSurfaceCode(distance)
        rounds = distance if rounds is None else rounds
        noise = noise or CircuitNoiseModel()
        _experiment, dem = build_experiment_and_dem(code, rounds, noise)
        graph = build_decoding_graph(dem, p)
        bench = cls(
            distance=distance,
            rounds=rounds,
            p=p,
            dem=dem,
            graph=graph,
            rng=ensure_rng(rng),
            noise=noise,
        )
        bench.decoders = bench.build_decoder_zoo(
            prune_probability=prune_probability
        )
        return bench

    def store_key(self, kind: str) -> str:
        """Stable experiment-store key for this operating point.

        Hashes the full configuration description -- code family,
        distance, rounds, noise-model token, physical error rate and
        estimator ``kind`` -- so stored counts are only ever reused for
        an identically-configured sweep.
        """
        from repro.eval.store import config_key

        noise = self.noise or CircuitNoiseModel()
        return config_key(
            code="rotated_surface",
            distance=self.distance,
            rounds=self.rounds,
            noise=noise.cache_token(),
            p=self.p,
            kind=kind,
        )

    # -- decoder zoo -----------------------------------------------------------------

    def build_decoder_zoo(
        self, prune_probability: Optional[float] = None
    ) -> Dict[str, Decoder]:
        """The paper's evaluation configurations (Tables 2 and 3)."""
        graph = self.graph
        if prune_probability is None:
            # "Pruning edges ... with error chain probabilities below the
            # LER": chains of ~ (d-1)/2 + 1 edges are at the LER scale.
            chain_edges = (self.distance - 1) // 2 + 1
            prune_probability = float(self.p) ** chain_edges
        astrea_g = AstreaGDecoder(graph, prune_probability=prune_probability)
        promatch_astrea = PredecodedDecoder(
            graph, PromatchPredecoder(graph), AstreaDecoder(graph)
        )
        smith_astrea = PredecodedDecoder(
            graph, SmithPredecoder(graph), AstreaDecoder(graph)
        )
        clique_astrea = PredecodedDecoder(
            graph, CliquePredecoder(graph), AstreaDecoder(graph)
        )
        zoo: Dict[str, Decoder] = {
            "MWPM": MWPMDecoder(graph),
            "Astrea-G": astrea_g,
            "Promatch+Astrea": promatch_astrea,
            "Smith+Astrea": smith_astrea,
            "Clique+Astrea": clique_astrea,
            "Promatch || AG": ParallelDecoder(
                graph, promatch_astrea, astrea_g, name="Promatch || AG"
            ),
            "Smith || AG": ParallelDecoder(
                graph, smith_astrea, astrea_g, name="Smith || AG"
            ),
            "Clique || AG": ParallelDecoder(
                graph, clique_astrea, astrea_g, name="Clique || AG"
            ),
            "Clique+MWPM": PredecodedDecoder(
                graph,
                CliquePredecoder(graph),
                MWPMDecoder(graph),
                name="Clique+MWPM",
            ),
            "UnionFind": UnionFindDecoder(graph),
        }
        return zoo

    # -- samplers --------------------------------------------------------------------

    def sample(self, shots: int) -> SyndromeBatch:
        """Plain Monte-Carlo syndromes at this operating point."""
        return DemSampler(self.dem, self.p, rng=self.rng).sample(shots)

    def sample_exact_k(self, k: int, shots: int) -> SyndromeBatch:
        """Syndromes with exactly ``k`` injected faults."""
        return ExactKSampler(self.dem, self.p, rng=self.rng).sample(k, shots)

    def sample_high_hw(
        self,
        shots_per_k: int,
        hw_min: int = ASTREA_MAX_HAMMING_WEIGHT + 1,
        k_max: int = 24,
        rng: RngLike = None,
    ) -> SyndromeBatch:
        """High-HW syndromes with per-shot occurrence-probability weights.

        Samples exactly-k syndromes for each plausible k, keeps those with
        HW >= ``hw_min`` and attaches weight ``P_o(k) / shots_per_k``, so
        weighted sums over the batch estimate joint probabilities
        P(syndrome property AND HW >= hw_min) -- the quantity behind the
        paper's Figures 5/16/17 and Tables 4-6.  The weighting assumes
        independent mechanism firing (the same Poisson-binomial model as
        Eq. (1)); ``k`` ranges from ``hw_min // 2`` (a fault flips at
        most two detectors) to ``k_max``.  ``rng`` overrides the
        workbench's shared generator so drivers (e.g. the Promatch
        predecode bench) can draw a seed-stable workload regardless of
        what sampled before them.
        """
        pmf, _tail = poisson_binomial_pmf(self.dem.probabilities(self.p), k_max)
        rng = self.rng if rng is None else ensure_rng(rng)
        sampler = ExactKSampler(self.dem, self.p, rng=rng)
        kept = SyndromeBatch(
            events=[],
            observables=np.zeros(0, dtype=np.int64),
            fault_counts=np.zeros(0, dtype=np.int64),
            weights=np.zeros(0, dtype=np.float64),
            dense=np.zeros((0, self.dem.n_detectors), dtype=bool),
        )
        k_lo = max(1, hw_min // 2)  # a fault flips at most two detectors
        for k in range(k_lo, min(k_max, sampler.n_positive) + 1):
            if pmf[k] <= 0.0:
                continue
            batch = sampler.sample(k, shots_per_k)
            mask = batch.hamming_weights() >= hw_min
            if not mask.any():
                continue
            keep_idx = np.nonzero(mask)[0]
            kept.extend(
                SyndromeBatch(
                    events=[batch.events[i] for i in keep_idx],
                    observables=batch.observables[keep_idx],
                    fault_counts=np.full(keep_idx.size, k, dtype=np.int64),
                    weights=np.full(
                        keep_idx.size, pmf[k] / shots_per_k, dtype=np.float64
                    ),
                    dense=None if batch.dense is None else batch.dense[keep_idx],
                )
            )
        return kept


# -- censuses over high-HW syndromes ------------------------------------------------


def _batch_weights(batch: SyndromeBatch) -> np.ndarray:
    """Per-shot occurrence weights (uniform 1 when the batch has none)."""
    if batch.weights is not None:
        return batch.weights
    return np.ones(batch.shots, dtype=np.float64)


def _census_range_worker(task: Tuple[int, int]) -> list:
    """Run the shared row function on one contiguous shot range."""
    start, stop = task
    row_fn, batch, args = pool_shared()
    return row_fn(batch.slice(start, stop), *args)


def _census_rows(
    row_fn: Callable[..., list],
    batch: SyndromeBatch,
    args: Tuple,
    shards: int,
    pool: Optional[WorkerPool] = None,
) -> list:
    """Per-shot census rows, optionally computed in a process pool.

    Splits the batch into ``shards`` contiguous ranges, maps ``row_fn``
    over them (the expensive decode/predecode work) and concatenates the
    returned rows back into shot order.  Aggregation happens caller-side
    on the full ordered row list, so every shard width produces bitwise
    the sequential result.  A persistent ``pool`` reuses live workers
    instead of forking per census.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shots = batch.shots
    if shards == 1 or shots <= 1:
        return row_fn(batch, *args)
    bounds = np.linspace(0, shots, min(shards, shots) + 1, dtype=int)
    tasks = [
        (int(start), int(stop))
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]
    outputs = run_sharded(
        (row_fn, batch, args),
        _census_range_worker,
        tasks,
        processes=min(len(tasks), os.cpu_count() or 1),
        pool=pool,
    )
    rows: list = []
    for chunk in outputs:
        rows.extend(chunk)
    return rows


def _chain_length_rows(
    batch: SyndromeBatch, graph: DecodingGraph
) -> List[List[int]]:
    """Per shot, the edge lengths of every MWPM-matched chain."""
    decoder = MWPMDecoder(graph)
    rows: List[List[int]] = []
    for result in decoder.decode_batch(batch):
        lengths = [graph.path_length_edges(u, v) for u, v in result.pairs]
        lengths.extend(
            graph.path_length_edges(u, graph.boundary_index)
            for u in result.boundary
        )
        rows.append(lengths)
    return rows


def chain_length_census(
    graph: DecodingGraph,
    batch: SyndromeBatch,
    max_length: int = 12,
    shards: int = 1,
    pool: Optional[WorkerPool] = None,
) -> np.ndarray:
    """Figure 5: distribution of MWPM error-chain lengths.

    Decodes each syndrome with exact MWPM and histograms the number of
    decoding-graph edges each matched pair (or boundary match) spans,
    weighted by syndrome occurrence probability; the result is normalized
    to a probability distribution over chain length 1..max_length.
    ``shards`` fans the MWPM decoding over worker processes with bitwise
    identical output (see the module docstring); ``pool`` reuses a
    persistent :class:`~repro.eval.pool.WorkerPool`.
    """
    rows = _census_rows(_chain_length_rows, batch, (graph,), shards, pool)
    weights = _batch_weights(batch)
    histogram = np.zeros(max_length + 1, dtype=np.float64)
    for lengths, weight in zip(rows, weights):
        for length in lengths:
            histogram[min(length, max_length)] += weight
    total = histogram.sum()
    return histogram / total if total > 0 else histogram


def _hw_reduction_rows(
    batch: SyndromeBatch, predecoders: Dict[str, Predecoder]
) -> List[Tuple[int, ...]]:
    """Per shot, (HW before, HW after predecoder 1, after predecoder 2, ...)."""
    before = [len(events) for events in batch.events]
    after = [
        [len(report.remaining) for report in predecoder.predecode_batch(batch)]
        for predecoder in predecoders.values()
    ]
    return [tuple(row) for row in zip(before, *after)]


def hw_reduction_census(
    graph: DecodingGraph,
    batch: SyndromeBatch,
    predecoders: Dict[str, Predecoder],
    n_bins: int = 33,
    shards: int = 1,
    pool: Optional[WorkerPool] = None,
) -> Dict[str, np.ndarray]:
    """Figures 16/17: HW distribution before and after predecoding.

    Returns probability-weighted histograms (joint with the HW > 10
    conditioning event): key "before" plus one key per predecoder.
    ``shards`` fans the predecoding over worker processes with bitwise
    identical output; ``pool`` reuses a persistent worker pool.
    """
    rows = _census_rows(_hw_reduction_rows, batch, (predecoders,), shards, pool)
    weights = _batch_weights(batch)
    names = ["before"] + list(predecoders)
    return {
        name: weighted_histogram(
            [row[column] for row in rows], weights, n_bins
        )
        for column, name in enumerate(names)
    }


@dataclass
class LatencyCensus:
    """Tables 4/5: predecode and total decode latency over high-HW syndromes."""

    predecode_avg_ns: float
    predecode_max_ns: float
    total_avg_ns: float
    total_max_ns: float
    deadline_miss_probability: float


def _latency_rows(
    batch: SyndromeBatch, promatch: PromatchPredecoder, main: AstreaDecoder
) -> List[Tuple[float, float, bool]]:
    """Per shot, (predecode ns, total ns, deadline missed)."""
    rows: List[Tuple[float, float, bool]] = []
    for report in promatch.predecode_batch(batch):
        pre_ns = cycles_to_ns(report.cycles)
        main_result = main.decode(
            report.remaining, budget_cycles=promatch.budget_cycles - report.cycles
        )
        if report.aborted or not main_result.success:
            rows.append((pre_ns, cycles_to_ns(promatch.budget_cycles), True))
        else:
            rows.append(
                (pre_ns, pre_ns + cycles_to_ns(main_result.cycles or 0), False)
            )
    return rows


def latency_census(
    graph: DecodingGraph,
    batch: SyndromeBatch,
    promatch: PromatchPredecoder,
    main: AstreaDecoder,
    shards: int = 1,
    pool: Optional[WorkerPool] = None,
) -> LatencyCensus:
    """Measure Promatch's cycle consumption on a high-HW workload.

    A deadline miss (predecoder abort or main-decoder failure within the
    residual budget) is pinned at the full hardware budget.  ``shards``
    fans the decoding over worker processes with bitwise identical
    output; ``pool`` reuses a persistent worker pool.
    """
    rows = _census_rows(_latency_rows, batch, (promatch, main), shards, pool)
    weights = _batch_weights(batch)
    pre = np.asarray([row[0] for row in rows], dtype=np.float64)
    tot = np.asarray([row[1] for row in rows], dtype=np.float64)
    miss_weight = float(
        sum(weight for row, weight in zip(rows, weights) if row[2])
    )
    total_weight = float(weights[: len(rows)].sum())
    w = np.asarray(weights[: len(rows)])
    w_sum = w.sum() if w.sum() > 0 else 1.0
    return LatencyCensus(
        predecode_avg_ns=float((pre * w).sum() / w_sum),
        predecode_max_ns=float(pre.max()) if pre.size else 0.0,
        total_avg_ns=float((tot * w).sum() / w_sum),
        total_max_ns=float(tot.max()) if tot.size else 0.0,
        deadline_miss_probability=(
            miss_weight / total_weight if total_weight > 0 else 0.0
        ),
    )


def _step_usage_rows(
    batch: SyndromeBatch, promatch: PromatchPredecoder
) -> List[int]:
    """Per shot, the deepest Promatch step used."""
    return [report.steps_used for report in promatch.predecode_batch(batch)]


#: ``step_usage_census`` bucket for shots whose deepest step exceeds the
#: paper's four Promatch steps (key 0 covers "no step engaged").
STEP_USAGE_OVERFLOW = 5


def step_usage_census(
    batch: SyndromeBatch,
    promatch: PromatchPredecoder,
    shards: int = 1,
    pool: Optional[WorkerPool] = None,
) -> Dict[int, float]:
    """Table 6: fraction of high-HW syndromes whose deepest step is s.

    Returns conditional frequencies (normalized over the batch weights)
    for steps 1..4, plus two explicit out-of-range buckets: key 0 for
    shots where no step engaged, and :data:`STEP_USAGE_OVERFLOW` (key 5)
    for steps beyond the paper's four.  The buckets partition the batch,
    so the reported fractions always sum to 1 -- out-of-range shots used
    to vanish from the numerator while still inflating the denominator.
    ``shards`` fans the predecoding over worker processes with bitwise
    identical output; ``pool`` reuses a persistent worker pool.
    """
    rows = _census_rows(_step_usage_rows, batch, (promatch,), shards, pool)
    weights = _batch_weights(batch)
    usage = {step: 0.0 for step in range(STEP_USAGE_OVERFLOW + 1)}
    total = 0.0
    for steps_used, weight in zip(rows, weights):
        total += weight
        bucket = steps_used if 0 <= steps_used < STEP_USAGE_OVERFLOW else (
            STEP_USAGE_OVERFLOW
        )
        usage[bucket] += weight
    if total > 0:
        usage = {step: value / total for step, value in usage.items()}
    return usage
