"""Scaling-knob registry: one precedence rule for every tunable.

Benchmarks and campaigns share a small set of workload knobs (shot
budgets, fault-count range, distances, sharding).  Historically each was
an ad-hoc ``int(os.environ.get(...))`` in ``benchmarks/_common.py``;
campaign specs (:mod:`repro.eval.campaign`) need the same values from a
TOML file, and the CLI needs to override both.  The registry gives every
knob one definition (env var name, parser, default) and one documented
precedence rule, applied by :meth:`KnobRegistry.resolve`:

    CLI flag  >  environment variable  >  spec value  >  default

Env vars therefore keep working exactly as before -- they now act as
overrides onto whatever a campaign spec declares -- and a CLI flag beats
both.  An env var set to the empty string counts as unset.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional

#: Sentinel distinguishing "no value supplied" from an explicit ``None``.
MISSING = object()


# -- parsers ------------------------------------------------------------------


def parse_int(text: str) -> int:
    return int(text)


def parse_float(text: str) -> float:
    return float(text)


def parse_str(text: str) -> str:
    return text.strip()


def parse_bool(text: str) -> bool:
    """``"0"`` / ``"1"`` style flags (the historic ``env_int`` idiom)."""
    return bool(int(text))


def parse_int_list(text: str) -> List[int]:
    return [int(tok) for tok in text.split(",") if tok.strip()]


def parse_float_list(text: str) -> List[float]:
    return [float(tok) for tok in text.split(",") if tok.strip()]


def parse_positive_int_or_none(text: str) -> Optional[int]:
    """Non-positive means "unset" (the historic batch-size convention)."""
    value = int(text)
    return value if value > 0 else None


def parse_flag(text: str) -> bool:
    """Lenient on/off switch (the historic ``REPRO_NO_CACHE=1`` idiom).

    Any non-empty value counts as on except the usual spellings of off
    (``0``/``false``/``no``/``off``, any case), so ``REPRO_NO_CACHE=1``
    and ``REPRO_NO_CACHE=true`` both disable the cache.
    """
    return text.strip().lower() not in ("0", "false", "no", "off")


@dataclass(frozen=True)
class Knob:
    """One tunable: its env var, parser, default, and doc line."""

    name: str
    env: str
    parse: Callable[[str], object]
    default: object
    help: str = ""

    def from_env(self, environ: Optional[Mapping[str, str]] = None) -> object:
        """The env-var value, or :data:`MISSING` when unset/empty."""
        environ = os.environ if environ is None else environ
        raw = environ.get(self.env)
        if raw is None or not raw.strip():
            return MISSING
        return self.parse(raw)


class KnobRegistry:
    """Named knobs plus the one precedence rule that resolves them."""

    def __init__(self, knobs: Iterable[Knob] = ()) -> None:
        self._knobs: Dict[str, Knob] = {}
        for knob in knobs:
            self.register_knob(knob)

    def register_knob(self, knob: Knob) -> Knob:
        """Add a knob; re-registering an identical definition is a no-op."""
        existing = self._knobs.get(knob.name)
        if existing is not None:
            if (existing.env, existing.default) != (knob.env, knob.default):
                raise ValueError(
                    f"knob {knob.name!r} already registered with a "
                    f"different definition ({existing.env!r} != {knob.env!r})"
                )
            return existing
        self._knobs[knob.name] = knob
        return knob

    def register(
        self,
        name: str,
        env: str,
        parse: Callable[[str], object],
        default: object,
        help: str = "",
    ) -> Knob:
        return self.register_knob(Knob(name, env, parse, default, help))

    def __contains__(self, name: str) -> bool:
        return name in self._knobs

    def __iter__(self):
        return iter(self._knobs.values())

    def get(self, name: str) -> Knob:
        try:
            return self._knobs[name]
        except KeyError:
            raise KeyError(
                f"unknown knob {name!r}; registered: {sorted(self._knobs)}"
            ) from None

    def default(self, name: str) -> object:
        return self.get(name).default

    def resolve(
        self,
        name: str,
        cli: object = None,
        spec: object = MISSING,
        environ: Optional[Mapping[str, str]] = None,
    ) -> object:
        """Resolve one knob: CLI flag > env var > spec value > default.

        ``cli=None`` means "flag not given" (the argparse convention);
        ``spec=MISSING`` means the spec carries no value for this knob
        (an explicit spec ``None`` -- TOML cannot express it, but Python
        callers can -- also falls through to the default).
        """
        knob = self.get(name)
        if cli is not None:
            return cli
        env_value = knob.from_env(environ)
        if env_value is not MISSING:
            return env_value
        if spec is not MISSING and spec is not None:
            return spec
        return knob.default


#: The core workload knobs shared by benchmarks, campaigns, and the CLI.
#: Benchmark-only extras (AFS / Promatch / speedup workloads) register
#: themselves in ``benchmarks/_common.py`` on top of these.
CORE_KNOBS = KnobRegistry(
    [
        Knob(
            "shots_per_k", "REPRO_BENCH_SHOTS_PER_K", parse_int, 250,
            "syndromes per injected-fault count (Eq. (1) workloads)",
        ),
        Knob(
            "census_shots", "REPRO_BENCH_CENSUS_SHOTS", parse_int, 150,
            "syndromes per k for the high-HW censuses",
        ),
        Knob(
            "k_max", "REPRO_BENCH_KMAX", parse_int, 16,
            "largest injected fault count",
        ),
        Knob(
            "distances", "REPRO_BENCH_DISTANCES", parse_int_list, [11, 13],
            "comma-separated headline code distances",
        ),
        Knob(
            "shards", "REPRO_BENCH_SHARDS", parse_int, 1,
            "worker processes for the estimators (1 = inline)",
        ),
        Knob(
            "census_shards", "REPRO_BENCH_CENSUS_SHARDS", parse_int, None,
            "worker processes for the censuses (unset = same as shards)",
        ),
        Knob(
            "batch_size", "REPRO_BENCH_BATCH_SIZE",
            parse_positive_int_or_none, None,
            "cap on shots per decode_batch call (<= 0 = unbounded)",
        ),
        Knob(
            "store", "REPRO_BENCH_STORE", parse_str, None,
            "experiment-store file; completed work slices are persisted",
        ),
        Knob(
            "resume", "REPRO_BENCH_RESUME", parse_bool, True,
            "replay slices already in the store (legacy ler/sweep path; "
            "campaigns always resume -- the store is their cache)",
        ),
        Knob(
            "min_rel_precision", "REPRO_BENCH_MIN_REL_PRECISION",
            parse_float, None,
            "optional relative-precision target for Eq. (1) refinement",
        ),
        Knob(
            "no_cache", "REPRO_NO_CACHE", parse_flag, False,
            "disable the DEM disk cache (tests covering the builder do this)",
        ),
        Knob(
            "cache_dir", "REPRO_CACHE_DIR", parse_str, None,
            "relocate the DEM disk cache (unset = .repro_cache in the repo)",
        ),
    ]
)
