"""Statistical helpers: binomial confidence intervals and weighted stats."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RateEstimate:
    """A rate with its Wilson-score confidence interval."""

    successes: int
    trials: int
    rate: float
    low: float
    high: float

    def __str__(self) -> str:
        return f"{self.rate:.3g} [{self.low:.3g}, {self.high:.3g}]"


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> RateEstimate:
    """Wilson score interval for a binomial rate (sane at 0 successes)."""
    if trials <= 0:
        return RateEstimate(0, 0, 0.0, 0.0, 1.0)
    phat = successes / trials
    denom = 1 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return RateEstimate(
        successes=successes,
        trials=trials,
        rate=phat,
        low=max(0.0, center - margin),
        high=min(1.0, center + margin),
    )


def weighted_histogram(
    values: Sequence[int], weights: Sequence[float], n_bins: int
) -> np.ndarray:
    """Probability-weighted histogram over integer bins ``0..n_bins-1``.

    Values beyond the range clamp into the edge bins: above-range values
    accumulate in the last bin, negative values in bin 0.  (Historically
    a negative value indexed from the *end* of the array via Python's
    negative indexing, silently crediting the wrong bin.)
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    hist = np.zeros(n_bins, dtype=np.float64)
    values = np.asarray(values)
    weights = np.asarray(weights, dtype=np.float64)
    if values.size != weights.size:
        raise ValueError("values and weights must have equal length")
    if values.size == 0:
        return hist
    bins = np.clip(values.astype(np.int64), 0, n_bins - 1)
    hist += np.bincount(bins, weights=weights, minlength=n_bins)
    return hist


def weighted_mean_max(
    values: Sequence[float], weights: Sequence[float]
) -> Tuple[float, float]:
    """Weighted mean and plain maximum of a sample."""
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if values.size == 0:
        return 0.0, 0.0
    total = weights.sum()
    mean = float((values * weights).sum() / total) if total > 0 else 0.0
    return mean, float(values.max())
