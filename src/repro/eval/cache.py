"""Disk cache for expensive, rate-independent artifacts.

Detector-error-model extraction is the one genuinely expensive step
(~20 s at d = 13) and is independent of the physical error rate, so DEMs
are pickled per (code family, distance, rounds, noise-model shape,
basis).  Both cache tunables are registered knobs
(:data:`repro.eval.knobs.CORE_KNOBS`), resolved through the standard
precedence rule: set ``REPRO_CACHE_DIR`` to relocate the cache, or
``REPRO_NO_CACHE=1`` to disable it (tests covering the builder itself do
this).
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Optional

from repro.circuits.memory import MemoryExperiment, build_memory_circuit
from repro.codes.base import StabilizerCode
from repro.dem.model import DetectorErrorModel
from repro.eval.knobs import CORE_KNOBS
from repro.noise.model import NoiseModel
from repro.sim.dem_builder import build_detector_error_model


def cache_directory() -> Optional[Path]:
    """Resolve the cache directory (None when caching is disabled)."""
    if CORE_KNOBS.resolve("no_cache"):
        return None
    configured = CORE_KNOBS.resolve("cache_dir")
    if configured:
        return Path(configured)
    return Path(__file__).resolve().parents[3] / ".repro_cache"


def dem_cache_path(
    code: StabilizerCode, rounds: int, noise: NoiseModel, basis: str
) -> Optional[Path]:
    """Cache file for one DEM configuration."""
    directory = cache_directory()
    if directory is None:
        return None
    token = (
        f"{code.name}-d{code.distance}-r{rounds}-{noise.cache_token()}-{basis}"
        f"-s{_SCHEDULE_VERSION}"
    )
    return directory / f"dem-{token}.pkl"


#: Bump when circuit construction changes in a way that alters extracted
#: DEMs (e.g. the CX schedule), so stale cache entries are never reused.
_SCHEDULE_VERSION = 2


def load_or_build_dem(
    code: StabilizerCode, rounds: int, noise: NoiseModel, basis: str = "Z"
) -> DetectorErrorModel:
    """Return the DEM for a memory experiment, building it at most once."""
    path = dem_cache_path(code, rounds, noise, basis)
    if path is not None and path.exists():
        with path.open("rb") as handle:
            dem = pickle.load(handle)
        if isinstance(dem, DetectorErrorModel):
            return dem
        # Foreign/corrupt content: fall through and rebuild.
    experiment = build_memory_circuit(code, rounds=rounds, noise=noise, basis=basis)
    dem = build_detector_error_model(experiment.circuit)
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = path.with_suffix(".tmp")
        with tmp_path.open("wb") as handle:
            pickle.dump(dem, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp_path.replace(path)
    return dem


def build_experiment_and_dem(
    code: StabilizerCode, rounds: int, noise: NoiseModel, basis: str = "Z"
):
    """(experiment, dem) pair with the DEM served from cache when possible."""
    experiment = build_memory_circuit(code, rounds=rounds, noise=noise, basis=basis)
    dem = load_or_build_dem(code, rounds, noise, basis)
    return experiment, dem
