"""Declarative campaign layer: one spec, a DAG of store-backed steps.

A *campaign* is the paper's result matrix as data: a TOML spec declares
a grid (distances x error rates) of steps -- Eq. (1) estimates, direct
Monte-Carlo runs, and the four high-HW censuses -- and this module
compiles it into an ordered DAG of store-backed steps, executes them on
one persistent :class:`~repro.eval.pool.WorkerPool`, and emits one
consolidated JSON artifact.  Drivers stop being scripts: every new
(code, noise, predecoder, main-decoder) combination is a config entry.

**The store is the cache.**  Every step owns a stable ``config_key``
(the same key :meth:`~repro.eval.experiments.Workbench.store_key`
computes, so legacy store files remain valid) and a *budget* (its total
base trials).  A step whose budget the
:class:`~repro.eval.store.ExperimentStore` already covers is skipped
entirely: its result is assembled by replaying stored slices (LER
steps) or returning the stored artifact verbatim (censuses), with
placeholder decoders -- no zoo is built, no shot is decoded, the worker
pool never forks.  A cached campaign re-run therefore performs zero
decode work while producing a **bitwise-identical** consolidated
artifact.

Coverage has one source of truth: the cache decision is made by the
same slice-replay logic a live run executes
(:class:`~repro.eval.sweep.Eq1PointRunner` /
:class:`~repro.eval.sweep.DirectPointRunner` in replay-only mode,
raising :class:`~repro.eval.ler.ResidualWorkNeeded` when shots are
missing), so ``campaign status`` / ``campaign explain`` /
``store info --campaign`` report exactly what ``campaign run`` would
skip.

Spec resolution follows the knob registry's one precedence rule
(:mod:`repro.eval.knobs`): CLI flag > env var > spec value > default.
A step may ``pin`` knob-backed fields (e.g. Figure 4 pins its
distances), exempting them from CLI/env overrides.  See
docs/campaigns.md for the spec format.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.eval.knobs import CORE_KNOBS, MISSING, KnobRegistry
from repro.eval.ler import ResidualWorkNeeded
from repro.eval.pool import WorkerPool
from repro.eval.store import (
    ArtifactRecord,
    ExperimentStore,
    config_key,
    open_store,
    atomic_write_json,
)
from repro.eval.sweep import (
    DirectPointRunner,
    Eq1PointRunner,
    _estimate_payload,
)
from repro.utils.rng import stable_seed

STEP_KINDS = ("eq1", "direct", "census")
CENSUS_KINDS = ("latency", "steps", "hw_reduction", "chain_lengths")

#: Predecoders a ``hw_reduction`` census step may name.
PREDECODER_NAMES = ("Promatch", "Smith", "Clique")

#: Spec keys resolvable through the knob registry (knob name == key).
_KNOB_KEYS = {
    "distances",
    "shots_per_k",
    "census_shots",
    "k_max",
    "min_rel_precision",
}

_CAMPAIGN_KEYS = {
    "name", "seed", "store", "out", "shards", "census_shards", "batch_size",
}
_WORKLOAD_KEYS = {
    "distances", "error_rates", "decoders", "parallel", "predecoders",
    "shots_per_k", "shots_per_k_tiers", "shots_per_k_scale",
    "shots_per_k_min", "k_max", "k_min", "k_max_per_distance_factor",
    "shots", "min_rel_precision", "max_refine_rounds", "census_shots",
    "hw_min", "n_bins", "max_length", "rounds", "seed_fields", "pin",
}
_STEP_ONLY_KEYS = {"name", "kind", "census", "seed_salt", "depends_on"}


def _canonical(payload):
    """Canonical JSON form: sorted keys, plain floats/ints, string keys.

    Both the live and the cached path pass their payloads through this,
    so a cached re-run's consolidated artifact is byte-identical to the
    fresh one (stored artifacts round-trip through the same encoder).
    """
    return json.loads(json.dumps(payload, sort_keys=True, default=float))


@dataclass
class CampaignStep:
    """One expanded (entry, distance, p) step of a compiled campaign."""

    entry: str
    index: int
    kind: str
    census: Optional[str]
    distance: int
    p: float
    rounds: int
    seed: int
    depends_on: Tuple[str, ...]
    decoders: Tuple[str, ...]
    parallel: Mapping[str, Tuple[str, str]]
    predecoders: Tuple[str, ...]
    shots_per_k: int
    shots_per_k_tiers: Tuple[Tuple[int, int, int], ...]
    k_max: int
    k_min: int
    shots: int
    min_rel_precision: Optional[float]
    max_refine_rounds: int
    census_shots: int
    hw_min: int
    n_bins: Optional[int]
    max_length: int
    _config: Optional[str] = field(default=None, repr=False)

    @property
    def step_id(self) -> str:
        return f"{self.entry}[d={self.distance},p={self.p:g}]"

    @property
    def kind_key(self) -> str:
        """The estimator-kind component of the store key."""
        return f"census_{self.census}" if self.kind == "census" else self.kind

    @property
    def names(self) -> List[str]:
        """Configuration names a stored slice must cover for reuse."""
        return list(self.decoders) + list(self.parallel)

    @property
    def resolved_n_bins(self) -> int:
        return self.n_bins if self.n_bins is not None else 2 * self.k_max + 2

    def config(self) -> str:
        """The step's stable experiment key.

        LER steps hash exactly the fields
        :meth:`~repro.eval.experiments.Workbench.store_key` hashes, so
        campaign and legacy-driver slices share one cache.  Census
        steps additionally hash everything that determines the sampled
        census workload (seed, HW cut, k range, histogram shape) --
        but *not* the shot budget, which lives on the artifact so
        budgets can grow.
        """
        if self._config is not None:
            return self._config
        from repro.noise.model import CircuitNoiseModel

        fields: Dict[str, object] = dict(
            code="rotated_surface",
            distance=self.distance,
            rounds=self.rounds,
            noise=CircuitNoiseModel().cache_token(),
            p=self.p,
            kind=self.kind_key,
        )
        if self.kind == "census":
            fields.update(seed=self.seed, hw_min=self.hw_min, k_max=self.k_max)
            if self.census == "chain_lengths":
                fields.update(max_length=self.max_length)
            elif self.census == "hw_reduction":
                fields.update(
                    predecoders=tuple(self.predecoders),
                    n_bins=self.resolved_n_bins,
                )
        self._config = config_key(**fields)
        return self._config

    def schedule(self) -> Callable[[int], int]:
        """Per-k shot schedule (base budget plus tier boosts)."""
        base = self.shots_per_k
        tiers = self.shots_per_k_tiers

        def shots_for_k(k: int) -> int:
            for low, high, multiplier in tiers:
                if low <= k <= high:
                    return base * multiplier
            return base

        return shots_for_k

    def budget(self, ctx: "CampaignContext") -> int:
        """Total base trials this step requests (the cache threshold)."""
        if self.kind == "direct":
            return self.shots
        if self.kind == "census":
            return self.census_shots
        schedule = self.schedule()
        return sum(
            schedule(k)
            for k in _eq1_k_values(
                ctx.dem(self), self.p, self.k_max, self.k_min
            )
        )

    # -- execution ---------------------------------------------------------------

    def _runner(self, ctx: "CampaignContext", replay: bool):
        if replay:
            # Placeholder decoders: replay never dereferences them, so a
            # fully-covered step skips the whole zoo build.  Direct-MC
            # slice seeds are drawn per shard, so replay must mirror the
            # live shard split to fold the same slices; Eq. (1) slices
            # are per fault count and shard-independent.
            components: Mapping[str, object] = {
                name: None for name in self.decoders
            }
            shards = 1 if self.kind == "eq1" else ctx.shards
            batch_size, pool = None, None
        else:
            bench = ctx.workbench(self)
            unknown = [n for n in self.decoders if n not in bench.decoders]
            if unknown:
                raise ValueError(
                    f"step {self.step_id}: unknown decoders {unknown}; "
                    f"available: {list(bench.decoders)}"
                )
            components = {n: bench.decoders[n] for n in self.decoders}
            shards, batch_size, pool = ctx.shards, ctx.batch_size, ctx.pool
        common = dict(
            dem=ctx.dem(self),
            p=self.p,
            seed=self.seed,
            shards=shards,
            batch_size=batch_size,
            store=ctx.store,
            store_key=self.config(),
            resume=ctx.store is not None,
            pool=pool,
            replay_only=replay,
        )
        if self.kind == "eq1":
            return Eq1PointRunner(
                components=components,
                parallel=dict(self.parallel),
                k_max=self.k_max,
                k_min=self.k_min,
                shots_per_k=self.shots_per_k,
                shots_for_k=self.schedule(),
                **common,
            )
        return DirectPointRunner(
            decoders=components, shots=self.shots, **common
        )

    def _drive(self, runner) -> dict:
        runner.base_round()
        if self.min_rel_precision is not None:
            while runner.refine_once(
                self.min_rel_precision, self.max_refine_rounds
            ):
                pass
        results = runner.results()
        return _canonical(
            {
                "distance": self.distance,
                "p": self.p,
                "kind": self.kind_key,
                "config": self.config(),
                "seed": self.seed,
                "budget": runner.base_budget(),
                "decoders": {
                    name: _estimate_payload(result)
                    for name, result in results.items()
                },
            }
        )

    def replay(self, ctx: "CampaignContext") -> dict:
        """Assemble this step purely from the store (zero decode work).

        Raises :class:`~repro.eval.ler.ResidualWorkNeeded` when the
        store does not fully cover the step -- the campaign cache rule.
        """
        if ctx.store is None:
            raise ResidualWorkNeeded(f"step {self.step_id}: no store configured")
        if self.kind == "census":
            artifact = ctx.store.artifact(self.config(), self.kind_key)
            if artifact is None or artifact.budget < self.census_shots:
                have = 0 if artifact is None else artifact.budget
                raise ResidualWorkNeeded(
                    f"step {self.step_id}: stored census artifact covers "
                    f"{have} of {self.census_shots} budget"
                )
            return _canonical(artifact.payload)
        return self._drive(self._runner(ctx, replay=True))

    def run_live(self, ctx: "CampaignContext") -> dict:
        """Execute the step's residual work (and persist it)."""
        if self.kind == "census":
            return self._run_census(ctx)
        return self._drive(self._runner(ctx, replay=False))

    def _run_census(self, ctx: "CampaignContext") -> dict:
        from repro.eval.experiments import (
            chain_length_census,
            hw_reduction_census,
            latency_census,
            step_usage_census,
        )

        bench = ctx.workbench(self)
        batch = bench.sample_high_hw(
            shots_per_k=self.census_shots,
            hw_min=self.hw_min,
            k_max=self.k_max,
            rng=self.seed,
        )
        shards, pool = ctx.census_shards, ctx.pool
        if self.census == "latency":
            from repro.core.promatch import PromatchPredecoder
            from repro.decoders.astrea import AstreaDecoder

            census = latency_census(
                bench.graph,
                batch,
                PromatchPredecoder(bench.graph),
                AstreaDecoder(bench.graph),
                shards=shards,
                pool=pool,
            )
            data = {
                "predecode_max_ns": census.predecode_max_ns,
                "predecode_avg_ns": census.predecode_avg_ns,
                "total_max_ns": census.total_max_ns,
                "total_avg_ns": census.total_avg_ns,
                "deadline_miss_probability": census.deadline_miss_probability,
                "syndromes": batch.shots,
            }
        elif self.census == "steps":
            from repro.core.promatch import PromatchPredecoder

            usage = step_usage_census(
                batch,
                PromatchPredecoder(bench.graph),
                shards=shards,
                pool=pool,
            )
            data = {
                "usage": {str(step): value for step, value in usage.items()},
                "syndromes": batch.shots,
            }
        elif self.census == "hw_reduction":
            predecoders = {
                name: _build_predecoder(name, bench.graph)
                for name in self.predecoders
            }
            histograms = hw_reduction_census(
                bench.graph,
                batch,
                predecoders,
                n_bins=self.resolved_n_bins,
                shards=shards,
                pool=pool,
            )
            data = {
                "histograms": {
                    name: hist.tolist() for name, hist in histograms.items()
                },
                "n_bins": self.resolved_n_bins,
                "syndromes": batch.shots,
            }
        else:  # chain_lengths
            histogram = chain_length_census(
                bench.graph,
                batch,
                max_length=self.max_length,
                shards=shards,
                pool=pool,
            )
            data = {
                "histogram": histogram.tolist(),
                "max_length": self.max_length,
                "syndromes": batch.shots,
            }
        payload = _canonical(
            {
                "distance": self.distance,
                "p": self.p,
                "kind": self.kind_key,
                "config": self.config(),
                "seed": self.seed,
                "budget": self.census_shots,
                "data": data,
            }
        )
        if ctx.store is not None:
            ctx.store.append_artifact(
                ArtifactRecord(
                    config=self.config(),
                    kind=self.kind_key,
                    budget=self.census_shots,
                    payload=payload,
                )
            )
        return payload


def _eq1_k_values(dem, p: float, k_max: int, k_min: int) -> List[int]:
    """The contributing fault counts (mirrors ``Eq1Session`` exactly)."""
    from repro.eval.poisson_binomial import poisson_binomial_pmf

    pmf, _tail = poisson_binomial_pmf(dem.probabilities(p), k_max)
    return [k for k in range(k_min, k_max + 1) if pmf[k] > 0.0]


def _build_predecoder(name: str, graph):
    if name == "Promatch":
        from repro.core.promatch import PromatchPredecoder

        return PromatchPredecoder(graph)
    if name == "Smith":
        from repro.decoders.smith import SmithPredecoder

        return SmithPredecoder(graph)
    if name == "Clique":
        from repro.decoders.clique import CliquePredecoder

        return CliquePredecoder(graph)
    raise ValueError(
        f"unknown predecoder {name!r}; known: {list(PREDECODER_NAMES)}"
    )


@dataclass
class Campaign:
    """A compiled campaign: resolved runtime knobs plus ordered steps."""

    name: str
    seed: int
    store: Optional[str]
    out: Optional[str]
    shards: int
    census_shards: int
    batch_size: Optional[int]
    steps: List[CampaignStep]
    path: Optional[Path] = None

    def entries(self) -> List[str]:
        """Spec entry names in execution order (deduplicated)."""
        seen: List[str] = []
        for step in self.steps:
            if step.entry not in seen:
                seen.append(step.entry)
        return seen


class CampaignContext:
    """Per-run caches (workbenches, DEMs) plus the runtime wiring."""

    def __init__(
        self,
        campaign: Campaign,
        store: Optional[ExperimentStore],
        pool: Optional[WorkerPool] = None,
        workbench_factory: Optional[Callable[[int, float], object]] = None,
    ) -> None:
        self.campaign = campaign
        self.store = store
        self.pool = pool
        self.shards = campaign.shards
        self.census_shards = campaign.census_shards
        self.batch_size = campaign.batch_size
        self._factory = workbench_factory
        self._benches: Dict[Tuple[int, float], object] = {}
        self._dems: Dict[Tuple[int, int], object] = {}

    def workbench(self, step: CampaignStep):
        key = (step.distance, step.p)
        if key not in self._benches:
            if self._factory is not None:
                self._benches[key] = self._factory(step.distance, step.p)
            else:
                from repro.eval.experiments import Workbench

                self._benches[key] = Workbench.build(
                    distance=step.distance,
                    p=step.p,
                    rng=stable_seed("campaign-bench", step.distance, step.p),
                )
        return self._benches[key]

    def dem(self, step: CampaignStep):
        """The step's DEM without building the full workbench.

        Coverage checks (``campaign status``) need the DEM (for the
        Eq. (1) fault-count range and the store replay) but not the
        decoder zoo; the DEM comes from the disk cache
        (:mod:`repro.eval.cache`), shared across error rates.
        """
        bench_key = (step.distance, step.p)
        if bench_key in self._benches:
            return self._benches[bench_key].dem
        if self._factory is not None:
            return self.workbench(step).dem
        dem_key = (step.distance, step.rounds)
        if dem_key not in self._dems:
            from repro.codes.rotated_surface import RotatedSurfaceCode
            from repro.eval.cache import build_experiment_and_dem
            from repro.noise.model import CircuitNoiseModel

            _experiment, dem = build_experiment_and_dem(
                RotatedSurfaceCode(step.distance),
                step.rounds,
                CircuitNoiseModel(),
            )
            self._dems[dem_key] = dem
        return self._dems[dem_key]


@dataclass
class StepCoverage:
    """One step's cache verdict (the ``status`` / ``explain`` row)."""

    step: CampaignStep
    budget: int
    usable: int
    covered: bool
    payload: Optional[dict] = None

    @property
    def residual(self) -> int:
        return max(0, self.budget - self.usable)


def step_coverage(step: CampaignStep, ctx: CampaignContext) -> StepCoverage:
    """The cache decision for one step -- the executor's own logic.

    ``covered`` is decided by actually replaying the step from the
    store (placeholder decoders, zero decode work); ``usable`` /
    ``budget`` are the store's numeric coverage for display.  Both
    ``campaign status`` and ``campaign run`` call this, so they can
    never disagree.
    """
    budget = step.budget(ctx)
    usable = 0
    if ctx.store is not None:
        usable = ctx.store.coverage(
            step.config(), step.kind_key, step.names, budget
        ).usable
    try:
        payload = step.replay(ctx)
    except ResidualWorkNeeded:
        return StepCoverage(step, budget, usable, False, None)
    return StepCoverage(step, budget, usable, True, payload)


@dataclass
class StepOutcome:
    """One executed (or cache-skipped) step of a campaign run."""

    step: CampaignStep
    cached: bool
    budget: int
    usable: int
    payload: dict


@dataclass
class CampaignResult:
    """The consolidated outcome of one campaign run."""

    name: str
    outcomes: List[StepOutcome]
    pool_forks: int = 0

    @property
    def executed(self) -> List[str]:
        return [o.step.step_id for o in self.outcomes if not o.cached]

    @property
    def skipped(self) -> List[str]:
        return [o.step.step_id for o in self.outcomes if o.cached]

    def point(
        self,
        entry: str,
        distance: Optional[int] = None,
        p: Optional[float] = None,
    ) -> dict:
        """The payload of one step, looked up by entry name and point."""
        for outcome in self.outcomes:
            step = outcome.step
            if step.entry != entry:
                continue
            if distance is not None and step.distance != distance:
                continue
            if p is not None and step.p != p:
                continue
            return outcome.payload
        raise KeyError(f"no ({entry}, d={distance}, p={p}) step in this run")

    def to_payload(self) -> dict:
        """The deterministic consolidated artifact.

        Run statistics (cache hits, pool forks) intentionally live on
        the result object only: the artifact is a pure function of the
        estimates, so a cached re-run's file is byte-identical to the
        fresh one.
        """
        return {
            "campaign": self.name,
            "steps": {o.step.step_id: o.payload for o in self.outcomes},
        }

    def save(self, path) -> Path:
        """Atomically write the consolidated artifact (sorted keys)."""
        return atomic_write_json(path, self.to_payload(), sort_keys=True)


def run_campaign(
    campaign: Campaign,
    store: Optional[ExperimentStore] = None,
    pool: Optional[WorkerPool] = None,
    workbench_factory: Optional[Callable[[int, float], object]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Execute a compiled campaign, skipping store-covered steps.

    Args:
        campaign: A compiled campaign (:func:`load_campaign`).
        store: Experiment store override; defaults to the campaign's
            resolved ``store`` path (``None`` disables caching).
        pool: Persistent :class:`WorkerPool` to run on; ``None`` with
            ``campaign.shards > 1`` creates one for the run's duration.
        workbench_factory: ``(distance, p) -> Workbench``-like override
            (tests inject instrumented decoders through this).
        progress: Optional sink for human-readable progress lines.

    Returns:
        A :class:`CampaignResult`; ``save(path)`` writes the artifact.
    """
    if store is None:
        store = open_store(campaign.store)
    own_pool = pool is None and campaign.shards > 1
    if own_pool:
        pool = WorkerPool(campaign.shards)
    forks_before = pool.forks if pool is not None else 0

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    ctx = CampaignContext(
        campaign, store=store, pool=pool, workbench_factory=workbench_factory
    )
    outcomes: List[StepOutcome] = []
    try:
        for step in campaign.steps:
            coverage = step_coverage(step, ctx)
            if coverage.covered:
                payload = coverage.payload
                note(
                    f"cached {step.step_id} "
                    f"({coverage.usable}/{coverage.budget} trials in store)"
                )
            else:
                payload = step.run_live(ctx)
                note(
                    f"ran    {step.step_id} "
                    f"({coverage.residual} residual trials)"
                )
            outcomes.append(
                StepOutcome(
                    step=step,
                    cached=coverage.covered,
                    budget=coverage.budget,
                    usable=coverage.usable,
                    payload=payload,
                )
            )
        return CampaignResult(
            name=campaign.name,
            outcomes=outcomes,
            pool_forks=(pool.forks - forks_before) if pool is not None else 0,
        )
    finally:
        if own_pool:
            pool.close()


def campaign_status(
    campaign: Campaign,
    store: Optional[ExperimentStore] = None,
    workbench_factory: Optional[Callable[[int, float], object]] = None,
) -> List[StepCoverage]:
    """Per-step cache coverage without executing any decode work.

    The one coverage query behind ``campaign status``, ``campaign
    explain`` and ``store info --campaign`` -- and the same decision
    procedure the executor applies, so its verdicts are authoritative.
    """
    if store is None:
        store = open_store(campaign.store)
    ctx = CampaignContext(campaign, store=store, pool=None,
                          workbench_factory=workbench_factory)
    return [step_coverage(step, ctx) for step in campaign.steps]


# -- spec loading ---------------------------------------------------------------


def load_campaign(
    source,
    cli: Optional[Mapping[str, object]] = None,
    knobs: Optional[KnobRegistry] = None,
) -> Campaign:
    """Load and compile a TOML campaign spec from ``source`` (a path).

    ``cli`` maps knob/override names (``store``, ``shards``, ``out``,
    ``seed``, ``shots_per_k``, ...) to values from command-line flags;
    ``None`` entries mean "flag not given".  Resolution follows the
    registry rule: CLI flag > env var > spec value > default, except for
    fields a step pins.
    """
    path = Path(source)
    with path.open("rb") as handle:
        raw = tomllib.load(handle)
    return _compile(raw, dict(cli or {}), knobs or CORE_KNOBS, path)


def load_campaign_text(
    text: str,
    cli: Optional[Mapping[str, object]] = None,
    knobs: Optional[KnobRegistry] = None,
) -> Campaign:
    """Compile a campaign from TOML text (tests, inline smoke specs)."""
    return _compile(tomllib.loads(text), dict(cli or {}), knobs or CORE_KNOBS, None)


def _require_keys(table: Mapping, allowed: set, label: str) -> None:
    unknown = sorted(set(table) - allowed)
    if unknown:
        raise ValueError(
            f"{label}: unknown key(s) {unknown}; allowed: {sorted(allowed)}"
        )


def _toposort(entries: List[Mapping]) -> List[int]:
    """Entry indices in dependency order (stable: spec order first)."""
    names = [entry["name"] for entry in entries]
    position = {name: index for index, name in enumerate(names)}
    dependents: Dict[int, List[int]] = {i: [] for i in range(len(entries))}
    indegree = [0] * len(entries)
    for index, entry in enumerate(entries):
        for dep in entry.get("depends_on", ()):
            if dep not in position:
                raise ValueError(
                    f"step {entry['name']!r} depends on unknown step {dep!r}"
                )
            if position[dep] == index:
                raise ValueError(f"step {entry['name']!r} depends on itself")
            dependents[position[dep]].append(index)
            indegree[index] += 1
    ready = sorted(i for i in range(len(entries)) if indegree[i] == 0)
    order: List[int] = []
    while ready:
        index = ready.pop(0)
        order.append(index)
        for succ in dependents[index]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                # Insert keeping spec order among the newly-ready.
                ready.append(succ)
                ready.sort()
    if len(order) != len(entries):
        stuck = [names[i] for i in range(len(entries)) if indegree[i] > 0]
        raise ValueError(f"dependency cycle among steps: {sorted(stuck)}")
    return order


def _compile(
    raw: Mapping,
    cli: Dict[str, object],
    knobs: KnobRegistry,
    path: Optional[Path],
) -> Campaign:
    campaign_raw = raw.get("campaign")
    if not isinstance(campaign_raw, dict) or not campaign_raw.get("name"):
        raise ValueError("spec needs a [campaign] table with a 'name'")
    _require_keys(campaign_raw, _CAMPAIGN_KEYS, "[campaign]")
    defaults = raw.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ValueError("[defaults] must be a table")
    _require_keys(defaults, _WORKLOAD_KEYS, "[defaults]")
    entries = raw.get("steps")
    if not isinstance(entries, list) or not entries:
        raise ValueError("spec needs at least one [[steps]] entry")
    extra = sorted(set(raw) - {"campaign", "defaults", "steps"})
    if extra:
        raise ValueError(f"unknown top-level table(s): {extra}")

    seed = int(cli.get("seed") or campaign_raw.get("seed", 2024))
    store = knobs.resolve(
        "store", cli=cli.get("store"),
        spec=campaign_raw.get("store", MISSING),
    )
    out = cli.get("out") or campaign_raw.get("out")
    shards = max(1, int(knobs.resolve(
        "shards", cli=cli.get("shards"),
        spec=campaign_raw.get("shards", MISSING),
    )))
    census_shards = knobs.resolve(
        "census_shards", cli=cli.get("census_shards"),
        spec=campaign_raw.get("census_shards", MISSING),
    )
    census_shards = shards if census_shards is None else max(1, int(census_shards))
    batch_size = knobs.resolve(
        "batch_size", cli=cli.get("batch_size"),
        spec=campaign_raw.get("batch_size", MISSING),
    )
    if batch_size is not None and int(batch_size) <= 0:
        batch_size = None

    seen_names = set()
    for entry in entries:
        if not isinstance(entry, dict) or not entry.get("name"):
            raise ValueError("every [[steps]] entry needs a 'name'")
        _require_keys(
            entry, _WORKLOAD_KEYS | _STEP_ONLY_KEYS,
            f"step {entry['name']!r}",
        )
        if entry["name"] in seen_names:
            raise ValueError(f"duplicate step name {entry['name']!r}")
        seen_names.add(entry["name"])

    order = _toposort(entries)
    steps: List[CampaignStep] = []
    for position, entry_index in enumerate(order):
        steps.extend(
            _expand_entry(
                entries[entry_index], defaults, cli, knobs, seed, position
            )
        )
    return Campaign(
        name=str(campaign_raw["name"]),
        seed=seed,
        store=store,
        out=out,
        shards=shards,
        census_shards=census_shards,
        batch_size=batch_size,
        steps=steps,
        path=path,
    )


def _expand_entry(
    entry: Mapping,
    defaults: Mapping,
    cli: Dict[str, object],
    knobs: KnobRegistry,
    campaign_seed: int,
    position: int,
) -> List[CampaignStep]:
    name = str(entry["name"])

    def pick(key: str, fallback=None):
        if key in entry:
            return entry[key]
        if key in defaults:
            return defaults[key]
        return fallback

    pin = set(pick("pin", []))
    bad_pins = sorted(pin - _KNOB_KEYS)
    if bad_pins:
        raise ValueError(
            f"step {name!r}: pin lists non-knob field(s) {bad_pins}; "
            f"knob-backed fields: {sorted(_KNOB_KEYS)}"
        )

    def resolve_knob(key: str):
        spec_value = entry[key] if key in entry else defaults.get(key, MISSING)
        if key in pin:
            # Pinned: the spec value is authoritative; CLI and env are
            # ignored (the step's identity depends on this field).
            return spec_value if spec_value is not MISSING else knobs.default(key)
        return knobs.resolve(key, cli=cli.get(key), spec=spec_value)

    kind = pick("kind")
    if kind not in STEP_KINDS:
        raise ValueError(
            f"step {name!r}: kind must be one of {STEP_KINDS}, got {kind!r}"
        )
    census = entry.get("census")
    if kind == "census":
        if census not in CENSUS_KINDS:
            raise ValueError(
                f"step {name!r}: census must be one of {CENSUS_KINDS}, "
                f"got {census!r}"
            )
    elif census is not None:
        raise ValueError(f"step {name!r}: 'census' requires kind='census'")

    decoders = tuple(pick("decoders", ()))
    parallel_raw = pick("parallel", {})
    parallel = {
        str(pname): tuple(spec) for pname, spec in parallel_raw.items()
    }
    if kind in ("eq1", "direct"):
        if not decoders:
            raise ValueError(f"step {name!r}: needs at least one decoder")
        bad = {
            pname: spec
            for pname, spec in parallel.items()
            if len(spec) != 2
            or spec[0] not in decoders
            or spec[1] not in decoders
        }
        if bad:
            raise ValueError(
                f"step {name!r}: parallel specs reference unknown "
                f"components: {bad}"
            )
        collisions = set(decoders) & set(parallel)
        if collisions:
            raise ValueError(
                f"step {name!r}: parallel names collide with decoder "
                f"names: {sorted(collisions)}"
            )
        if parallel and kind != "eq1":
            raise ValueError(
                f"step {name!r}: parallel configurations require kind='eq1'"
            )
    elif parallel:
        raise ValueError(f"step {name!r}: 'parallel' requires kind='eq1'")

    predecoders = tuple(pick("predecoders", ("Promatch", "Smith")))
    unknown_pre = [p for p in predecoders if p not in PREDECODER_NAMES]
    if unknown_pre:
        raise ValueError(
            f"step {name!r}: unknown predecoder(s) {unknown_pre}; "
            f"known: {list(PREDECODER_NAMES)}"
        )

    distances = [int(d) for d in resolve_knob("distances")]
    error_rates = [float(p) for p in pick("error_rates", ())]
    if not distances or not error_rates:
        raise ValueError(
            f"step {name!r}: needs at least one distance and one error rate"
        )

    shots_per_k = int(resolve_knob("shots_per_k"))
    scale = pick("shots_per_k_scale")
    if scale is not None:
        shots_per_k = int(shots_per_k * float(scale))
    floor = pick("shots_per_k_min")
    if floor is not None:
        shots_per_k = max(int(floor), shots_per_k)
    if shots_per_k < 1:
        raise ValueError(f"step {name!r}: shots_per_k must be positive")
    tiers = tuple(tuple(int(v) for v in tier)
                  for tier in pick("shots_per_k_tiers", ()))
    if any(len(tier) != 3 for tier in tiers):
        raise ValueError(
            f"step {name!r}: shots_per_k_tiers entries must be "
            "[k_low, k_high, multiplier] triples"
        )

    k_max = int(resolve_knob("k_max"))
    k_min = int(pick("k_min", 1))
    factor = pick("k_max_per_distance_factor")
    shots = int(pick("shots", 20000))
    min_rel_precision = resolve_knob("min_rel_precision")
    if min_rel_precision is not None:
        min_rel_precision = float(min_rel_precision)
        if min_rel_precision <= 0:
            raise ValueError(
                f"step {name!r}: min_rel_precision must be positive"
            )
    max_refine_rounds = int(pick("max_refine_rounds", 6))
    census_shots = int(resolve_knob("census_shots"))
    from repro.decoders.astrea import ASTREA_MAX_HAMMING_WEIGHT

    hw_min = int(pick("hw_min", ASTREA_MAX_HAMMING_WEIGHT + 1))
    n_bins = pick("n_bins")
    max_length = int(pick("max_length", 12))
    rounds = pick("rounds")

    seed_salt = entry.get("seed_salt")
    seed_fields = pick("seed_fields")
    if seed_fields is not None:
        bad_fields = [f for f in seed_fields if f not in ("distance", "p")]
        if bad_fields:
            raise ValueError(
                f"step {name!r}: seed_fields may only contain 'distance' "
                f"and 'p', got {bad_fields}"
            )
    depends_on = tuple(str(dep) for dep in entry.get("depends_on", ()))

    kind_key = f"census_{census}" if kind == "census" else kind
    steps: List[CampaignStep] = []
    for distance in distances:
        for p in error_rates:
            if seed_salt is not None:
                fields = seed_fields if seed_fields is not None else [
                    "distance", "p",
                ]
                values = [distance if f == "distance" else p for f in fields]
                step_seed = stable_seed(str(seed_salt), *values)
            else:
                step_seed = stable_seed(
                    "campaign", campaign_seed, name, kind_key, distance, p
                )
            point_k_max = k_max
            if factor is not None:
                point_k_max = min(point_k_max, int(factor) * distance)
            steps.append(
                CampaignStep(
                    entry=name,
                    index=position,
                    kind=kind,
                    census=census,
                    distance=distance,
                    p=p,
                    rounds=int(rounds) if rounds is not None else distance,
                    seed=step_seed,
                    depends_on=depends_on,
                    decoders=decoders,
                    parallel=parallel,
                    predecoders=predecoders,
                    shots_per_k=shots_per_k,
                    shots_per_k_tiers=tiers,
                    k_max=point_k_max,
                    k_min=k_min,
                    shots=shots,
                    min_rel_precision=min_rel_precision,
                    max_refine_rounds=max_refine_rounds,
                    census_shots=census_shots,
                    hw_min=hw_min,
                    n_bins=n_bins if n_bins is None else int(n_bins),
                    max_length=max_length,
                )
            )
    return steps
