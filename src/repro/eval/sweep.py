"""Store-backed sweep orchestrator: one command, one paper table.

The paper's headline results (Table 2, Figures 4/14/15) are grids of
(distance, physical error rate) operating points, each an Eq. (1) or
direct Monte-Carlo LER run.  :func:`run_sweep` walks such a grid as one
resumable unit of work:

* every point owns an independent set of slices in a **single**
  :class:`~repro.eval.store.ExperimentStore`, keyed by
  ``Workbench.store_key`` (code, distance, rounds, noise, p, estimator
  kind), so one store file accumulates a whole table and a killed sweep
  re-run with ``resume=True`` reproduces the uninterrupted grid bitwise
  while paying only the residual shots;
* shot allocation toward ``min_rel_precision`` is **round-robin across
  the grid**: each refinement round computes every point's plan (the
  :func:`~repro.eval.ler._refinement_plan` rule -- double the k rows
  whose CI width x Poisson-binomial mass contributes most) and executes
  one round per unfinished point before any point gets a second round,
  so an interrupted sweep leaves balanced progress instead of one
  polished point and untouched neighbors;
* all sharded work of the whole grid runs on **one persistent**
  :class:`~repro.eval.pool.WorkerPool` -- one worker-set fork per sweep
  instead of one per refinement round, k-slice batch, and grid point;
* the outcome is one consolidated, JSON-serializable artifact
  (:class:`SweepResult`) carrying every point's per-decoder estimates
  plus run statistics.

Per-point RNG seeds are derived from the sweep seed and the point
coordinates (:func:`~repro.utils.rng.stable_seed`), not from a shared
generator stream, so estimates are independent of grid walk order and a
resumed sweep recognizes its stored slices no matter where it was
killed.  The refinement trajectory *and its stopping rule* (target met,
or budgets amplified ``2 ** max_refine_rounds`` over base) are pure
functions of the accumulated counts, never of per-process round
counters, so resume equals fresh bitwise even when the cap binds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.eval.ler import (
    DirectMonteCarloResult,
    Eq1Session,
    ImportanceLerResult,
    ResidualWorkNeeded,
    estimate_ler_direct,
)
from repro.eval.pool import WorkerPool
from repro.eval.store import ExperimentStore, atomic_write_json
from repro.utils.rng import stable_seed

SWEEP_KINDS = ("eq1", "direct")

#: Default decoder configurations evaluated at every grid point.
DEFAULT_DECODERS = ("MWPM", "Promatch+Astrea", "Astrea-G")


@dataclass(frozen=True)
class SweepGrid:
    """A (distance x physical error rate) grid of LER operating points.

    Attributes:
        distances: Code distances to evaluate.
        error_rates: Physical error rates to evaluate.
        kind: Estimator family -- ``"eq1"`` (the paper's importance
            method) or ``"direct"`` (plain Monte-Carlo).
        decoders: Zoo configuration names evaluated at every point
            (resolved against ``Workbench.decoders``).
        parallel: ``name -> (component_a, component_b)`` parallel
            configurations derived from stored component results
            (Eq. (1) only; components must appear in ``decoders``).
        shots_per_k: Base Eq. (1) budget per injected-fault count.
        k_max / k_min: Eq. (1) fault-count range.
        shots: Base direct-MC budget per point.
    """

    distances: Tuple[int, ...]
    error_rates: Tuple[float, ...]
    kind: str = "eq1"
    decoders: Tuple[str, ...] = DEFAULT_DECODERS
    parallel: Mapping[str, Tuple[str, str]] = field(default_factory=dict)
    shots_per_k: int = 200
    k_max: int = 16
    k_min: int = 1
    shots: int = 20000

    def __post_init__(self) -> None:
        if self.kind not in SWEEP_KINDS:
            raise ValueError(
                f"kind must be one of {SWEEP_KINDS}, got {self.kind!r}"
            )
        if not self.distances or not self.error_rates:
            raise ValueError("the grid needs at least one distance and one p")
        if not self.decoders:
            raise ValueError("the grid needs at least one decoder")
        unknown = {
            name: spec
            for name, spec in self.parallel.items()
            if spec[0] not in self.decoders or spec[1] not in self.decoders
        }
        if unknown:
            raise ValueError(
                f"parallel specs reference unknown components: {unknown}"
            )
        collisions = set(self.decoders) & set(self.parallel)
        if collisions:
            raise ValueError(
                "parallel configuration names collide with component names: "
                f"{sorted(collisions)}"
            )
        if self.parallel and self.kind != "eq1":
            raise ValueError("parallel configurations require kind='eq1'")

    def points(self) -> List[Tuple[int, float]]:
        """The grid's (distance, p) points in walk order."""
        return [(d, p) for d in self.distances for p in self.error_rates]

    def to_payload(self) -> dict:
        return {
            "distances": list(self.distances),
            "error_rates": list(self.error_rates),
            "kind": self.kind,
            "decoders": list(self.decoders),
            "parallel": {k: list(v) for k, v in self.parallel.items()},
            "shots_per_k": self.shots_per_k,
            "k_max": self.k_max,
            "k_min": self.k_min,
            "shots": self.shots,
        }


def _estimate_payload(result) -> dict:
    """JSON row for one decoder's estimate (either estimator family)."""
    if isinstance(result, DirectMonteCarloResult):
        est = result.estimate
        return {
            "ler": est.rate,
            "low": est.low,
            "high": est.high,
            "failures": est.successes,
            "trials": est.trials,
        }
    assert isinstance(result, ImportanceLerResult)
    return {
        "ler": result.ler,
        "ler_low": result.ler_low,
        "ler_high": result.ler_high,
        "truncation_bound": result.truncation_bound,
        "trials": sum(est.trials for _k, _po, est in result.per_k),
        "per_k": [
            {
                "k": k,
                "p_o": po,
                "failures": est.successes,
                "trials": est.trials,
                "rate": est.rate,
                "low": est.low,
                "high": est.high,
            }
            for k, po, est in result.per_k
        ],
    }


@dataclass
class SweepPointResult:
    """One grid point's estimates and bookkeeping."""

    distance: int
    p: float
    kind: str
    store_key: Optional[str]
    results: Dict[str, object]
    refine_rounds: int = 0
    usable_trials: Optional[int] = None

    def to_payload(self) -> dict:
        # ``refine_rounds`` counts rounds executed by *this* run (a
        # resumed run replays stored counts and may need none), so it
        # lives in the sweep-level "stats" block, not here.
        return {
            "distance": self.distance,
            "p": self.p,
            "kind": self.kind,
            "store_key": self.store_key,
            "usable_trials": self.usable_trials,
            "decoders": {
                name: _estimate_payload(result)
                for name, result in self.results.items()
            },
        }


@dataclass
class SweepResult:
    """The consolidated outcome of one sweep."""

    grid: SweepGrid
    min_rel_precision: Optional[float]
    points: List[SweepPointResult]
    pool_forks: int = 0

    def point(self, distance: int, p: float) -> SweepPointResult:
        for entry in self.points:
            if entry.distance == distance and entry.p == p:
                return entry
        raise KeyError(f"no ({distance}, {p}) point in this sweep")

    def to_payload(self) -> dict:
        """JSON-serializable artifact.

        Everything outside ``"stats"`` is a deterministic function of
        the estimates, so a resumed sweep's payload equals the
        uninterrupted one; ``"stats"`` carries run-dependent accounting
        (fork counts) and is excluded from such comparisons.
        """
        return {
            "grid": self.grid.to_payload(),
            "min_rel_precision": self.min_rel_precision,
            "points": [entry.to_payload() for entry in self.points],
            "stats": {
                "pool_forks": self.pool_forks,
                "refine_rounds": {
                    f"d={entry.distance},p={entry.p:g}": entry.refine_rounds
                    for entry in self.points
                },
            },
        }

    def save(self, path) -> Path:
        """Write the consolidated artifact as JSON; returns the path.

        The write goes through the store's temp-file + rename dance, so
        a kill mid-write can never leave a truncated artifact.
        """
        return atomic_write_json(path, self.to_payload())


def _default_workbench_factory(distance: int, p: float):
    from repro.eval.experiments import Workbench

    return Workbench.build(
        distance=distance, p=p, rng=stable_seed("sweep-bench", distance, p)
    )


def _point_seed(seed: int, distance: int, p: float, kind: str) -> int:
    """Per-point RNG seed, independent of grid walk order."""
    return stable_seed("sweep-point", seed, distance, p, kind)


def _direct_target_met(
    results: Mapping[str, DirectMonteCarloResult], min_rel_precision: float
) -> bool:
    """Every nonzero-LER decoder's CI width within the relative target.

    Zero-LER decoders are excluded, mirroring ``_refinement_plan``: no
    relative target exists for a zero point estimate.
    """
    for result in results.values():
        est = result.estimate
        if est.rate > 0.0 and (est.high - est.low) > (
            min_rel_precision * est.rate
        ):
            return False
    return True


class Eq1PointRunner:
    """One Eq. (1) operating point as a drivable step.

    The common step protocol shared by :func:`run_sweep` (which
    round-robins :meth:`refine_once` across a grid) and the campaign
    executor (:mod:`repro.eval.campaign`, which drives one point to
    completion): :meth:`base_round` takes the point to its base budget,
    :meth:`refine_once` executes at most one refinement round (False =
    nothing left to do), :meth:`results` assembles the estimates.

    With ``replay_only=True`` the runner never decodes: any plan with
    residual shots raises
    :class:`~repro.eval.ler.ResidualWorkNeeded` instead.  ``components``
    may then be placeholders (only names are read), so "is this point
    fully cached?" is answered by the *same* store-replay logic a live
    run executes -- one source of truth for the campaign cache rule.
    """

    kind = "eq1"

    def __init__(
        self,
        *,
        components: Mapping[str, object],
        parallel: Mapping[str, Tuple[str, str]],
        dem,
        p: float,
        k_max: int,
        seed: int,
        shots_per_k: int,
        shots_for_k: Optional[Callable[[int], int]] = None,
        k_min: int = 1,
        shards: int = 1,
        batch_size: Optional[int] = None,
        store: Optional[ExperimentStore] = None,
        store_key: Optional[str] = None,
        resume: bool = False,
        pool: Optional[WorkerPool] = None,
        replay_only: bool = False,
    ) -> None:
        self.replay_only = replay_only
        self.shots_per_k = shots_per_k
        self.shots_for_k = shots_for_k
        self.session = Eq1Session(
            components=components,
            parallel_specs=parallel,
            dem=dem,
            p=p,
            k_max=k_max,
            rng=seed,
            k_min=k_min,
            shards=shards,
            batch_size=batch_size,
            store=store,
            store_key=store_key,
            resume=resume,
            pool=pool,
        )

    def base_budget(self) -> int:
        """Total base trials over the point's contributing k values."""
        return sum(
            self.shots_for_k(k) if self.shots_for_k is not None
            else self.shots_per_k
            for k in self.session.k_values
        )

    def base_round(self) -> None:
        plan = self.session.base_plan(self.shots_per_k, self.shots_for_k)
        if self.replay_only and any(n > 0 for n in plan.values()):
            residual = sum(n for n in plan.values() if n > 0)
            raise ResidualWorkNeeded(
                f"{residual} residual Eq. (1) shots not covered by the "
                f"store (config {self.session.store_key})"
            )
        self.session.evaluate_round(plan)

    def refine_once(
        self, min_rel_precision: float, max_refine_rounds: int = 6
    ) -> bool:
        plan = self.session.refinement_plan(
            min_rel_precision, max_refine_rounds
        )
        if not plan:
            return False
        if self.replay_only:
            raise ResidualWorkNeeded(
                "refinement toward the precision target needs shots not "
                f"covered by the store (config {self.session.store_key})"
            )
        self.session.evaluate_round(plan)
        return True

    def results(self) -> Dict[str, ImportanceLerResult]:
        return self.session.assemble()


class DirectPointRunner:
    """One direct-MC operating point as a drivable step.

    Same protocol as :class:`Eq1PointRunner`.  Refinement doubles the
    accumulated trials (never a per-process round counter), capped at
    ``2 ** max_refine_rounds`` times the base budget, and growth rounds
    always resume against the store -- they replay the records the base
    round just wrote.
    """

    kind = "direct"

    def __init__(
        self,
        *,
        decoders: Mapping[str, object],
        dem,
        p: float,
        shots: int,
        seed: int,
        shards: int = 1,
        batch_size: Optional[int] = None,
        store: Optional[ExperimentStore] = None,
        store_key: Optional[str] = None,
        resume: bool = False,
        pool: Optional[WorkerPool] = None,
        replay_only: bool = False,
    ) -> None:
        self.decoders = decoders
        self.dem = dem
        self.p = p
        self.shots = shots
        self.seed = seed
        self.shards = shards
        self.batch_size = batch_size
        self.store = store
        self.store_key = store_key
        self.resume = resume
        self.pool = pool
        self.replay_only = replay_only
        self._results: Optional[Dict[str, DirectMonteCarloResult]] = None

    def base_budget(self) -> int:
        return self.shots

    def _estimate(
        self, shots: int, resume: bool
    ) -> Dict[str, DirectMonteCarloResult]:
        return estimate_ler_direct(
            self.decoders,
            self.dem,
            self.p,
            shots=shots,
            rng=self.seed,
            shards=self.shards,
            batch_size=self.batch_size,
            store=self.store,
            store_key=self.store_key,
            resume=resume,
            pool=self.pool,
            replay_only=self.replay_only,
        )

    def base_round(self) -> None:
        self._results = self._estimate(self.shots, resume=self.resume)

    def refine_once(
        self, min_rel_precision: float, max_refine_rounds: int = 6
    ) -> bool:
        assert self._results is not None, "base_round must run first"
        if _direct_target_met(self._results, min_rel_precision):
            return False
        # Next budget doubles the trials accumulated so far (not a
        # per-process round counter), capped at 2**max_refine_rounds
        # times the base.
        current = next(iter(self._results.values())).estimate.trials
        budget = 2 * max(self.shots, current)
        if budget > self.shots * 2**max_refine_rounds:
            return False
        self._results = self._estimate(budget, resume=self.store is not None)
        return True

    def results(self) -> Dict[str, DirectMonteCarloResult]:
        assert self._results is not None, "base_round must run first"
        return self._results


def run_sweep(
    grid: SweepGrid,
    seed: int = 2024,
    store: Optional[ExperimentStore] = None,
    resume: bool = False,
    min_rel_precision: Optional[float] = None,
    max_refine_rounds: int = 6,
    shards: int = 1,
    batch_size: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
    workbench_factory: Optional[Callable[[int, float], object]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Walk a (distance, p) grid against one store with a global target.

    Args:
        grid: The operating-point grid and per-point budgets.
        seed: Sweep seed; every point derives its own stream from it.
        store: One :class:`ExperimentStore` shared by the whole grid
            (per-point ``store_key``); completed slices are appended.
        resume: Replay stored slices and run only the residual shots --
            a killed sweep re-run with the same arguments reproduces the
            uninterrupted grid bitwise.
        min_rel_precision: Global relative-precision target; refinement
            rounds are allocated round-robin across unfinished points
            (see the module docstring).
        max_refine_rounds: Refinement cap: no slice (Eq. (1) k row) or
            point (direct MC) grows beyond ``2 ** max_refine_rounds``
            times its base budget.  Counts-based, so it resumes exactly.
        shards: Worker processes for each point's sharded rounds.
        batch_size: Cap on shots per ``decode_batch`` call.
        pool: Persistent :class:`WorkerPool` to run on; ``None`` with
            ``shards > 1`` creates one for the duration of the sweep.
        workbench_factory: ``(distance, p) -> Workbench``-like override
            (must expose ``dem``, ``decoders`` and ``store_key``); used
            by tests to inject instrumented decoders.
        progress: Optional sink for human-readable progress lines.

    Returns:
        A :class:`SweepResult`; call ``save(path)`` for the artifact.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if min_rel_precision is not None and min_rel_precision <= 0:
        raise ValueError("min_rel_precision must be positive")
    factory = workbench_factory or _default_workbench_factory

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    own_pool = pool is None and shards > 1
    if own_pool:
        pool = WorkerPool(shards)
    forks_before = pool.forks if pool is not None else 0
    try:
        points: List[SweepPointResult] = []
        runners: List[Tuple[SweepPointResult, object]] = []
        for distance, p in grid.points():
            bench = factory(distance, p)
            store_key = (
                bench.store_key(grid.kind) if store is not None else None
            )
            if (
                store is not None
                and not resume
                and store.total_trials(store_key, grid.kind) > 0
            ):
                # Appending a fresh run's slices next to existing
                # records for the same key would collide on run indices
                # (and the growth rounds below replay the store), so a
                # dirty store demands an explicit choice.
                raise ValueError(
                    f"store already holds records for d={distance} "
                    f"p={p:g} ({grid.kind}); pass resume=True to continue "
                    "them or point the sweep at a fresh store"
                )
            unknown = [
                name for name in grid.decoders if name not in bench.decoders
            ]
            if unknown:
                raise ValueError(
                    f"unknown decoders {unknown} at d={distance}; "
                    f"available: {list(bench.decoders)}"
                )
            decoder_map = {
                name: bench.decoders[name] for name in grid.decoders
            }
            point_rng = _point_seed(seed, distance, p, grid.kind)
            entry = SweepPointResult(
                distance=distance,
                p=p,
                kind=grid.kind,
                store_key=store_key,
                results={},
            )
            points.append(entry)
            if grid.kind == "eq1":
                runner = Eq1PointRunner(
                    components=decoder_map,
                    parallel=grid.parallel,
                    dem=bench.dem,
                    p=p,
                    k_max=grid.k_max,
                    seed=point_rng,
                    shots_per_k=grid.shots_per_k,
                    k_min=grid.k_min,
                    shards=shards,
                    batch_size=batch_size,
                    store=store,
                    store_key=store_key,
                    resume=resume,
                    pool=pool,
                )
            else:
                runner = DirectPointRunner(
                    decoders=decoder_map,
                    dem=bench.dem,
                    p=p,
                    shots=grid.shots,
                    seed=point_rng,
                    shards=shards,
                    batch_size=batch_size,
                    store=store,
                    store_key=store_key,
                    resume=resume,
                    pool=pool,
                )
            runner.base_round()
            entry.results = runner.results()
            runners.append((entry, runner))
            if progress is not None:
                # usable_trials re-reads the store; only pay for it
                # when someone is listening.
                suffix = (
                    f" ({store.usable_trials(store_key, grid.kind, _result_names(grid))}"
                    " usable trials in store)"
                    if store is not None
                    else ""
                )
                note(f"base pass d={distance} p={p:g} done{suffix}")

        if min_rel_precision is not None:
            # Round-robin: every unfinished point gets one refinement
            # round before any point gets a second.  Each point's
            # stopping rule (target met, or budgets amplified
            # 2**max_refine_rounds over base) is a pure function of its
            # accumulated counts, so a killed sweep resumes -- and
            # stops -- exactly where the uninterrupted one would have;
            # the loop terminates because every executed round doubles
            # capped budgets.
            while True:
                any_work = False
                for entry, runner in runners:
                    if not runner.refine_once(
                        min_rel_precision, max_refine_rounds
                    ):
                        continue
                    entry.results = runner.results()
                    entry.refine_rounds += 1
                    any_work = True
                    note(
                        f"refine round {entry.refine_rounds} "
                        f"d={entry.distance} p={entry.p:g}"
                    )
                if not any_work:
                    break

        if store is not None:
            names = _result_names(grid)
            for entry in points:
                entry.usable_trials = store.usable_trials(
                    entry.store_key, grid.kind, names
                )
        return SweepResult(
            grid=grid,
            min_rel_precision=min_rel_precision,
            points=points,
            # The delta, not the pool's lifetime count -- an external
            # long-lived pool may have forked before this sweep.
            pool_forks=(pool.forks - forks_before) if pool is not None else 0,
        )
    finally:
        if own_pool:
            pool.close()


def _result_names(grid: SweepGrid) -> List[str]:
    """Every configuration name a stored slice must cover for reuse."""
    return list(grid.decoders) + list(grid.parallel)
