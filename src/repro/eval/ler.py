"""Logical-error-rate estimation: direct Monte-Carlo and the paper's Eq. (1).

Direct Monte-Carlo is exact but cannot reach the paper's operating points
(LER ~ 1e-13 would need trillions of shots); it is used for validation at
small distance / high rate where the two estimators must agree.

The production estimator is the paper's importance method [48]:

    LER = sum_k  P_o(k) * P_f(k)                                   (Eq. 1)

where ``P_o(k)`` is the exact Poisson-binomial probability that exactly
``k`` fault mechanisms fire and ``P_f(k)`` is the decoding-failure rate
measured on syndromes with exactly ``k`` injected faults.  A *failure* is
a wrong logical prediction **or** a real-time give-up (deadline/capability
exceeded), matching the paper's accounting.  The importance weighting
assumes the DEM's mechanisms fire independently (the Poisson-binomial
model) and that ``P_f(k)`` is estimated on ``ExactKSampler`` workloads
drawn from the conditional distribution given ``k`` faults; truncating
the sum at ``k_max`` discards at most ``P(count > k_max)`` of LER mass,
which is reported as ``truncation_bound``.

Both estimators evaluate *many decoders on the same sampled workload*, so
comparisons between decoders are paired (sharper than independent runs)
and sampling cost is amortized.

Decoding goes through the batch API (:meth:`Decoder.decode_batch`), which
is element-wise identical to the per-shot loop; failure counting is a
vectorized comparison over the collected results.

Shard-seeding contract
----------------------
The unit of work is a *slice*: one exact-k workload (Eq. (1)) or one
shot-range (direct MC).  Every slice's base seed is drawn **up front**
from the caller's generator, in a fixed order, before any work runs.
Consequences:

* ``shards > 1`` distributes slices over a process pool without changing
  any estimate -- the per-slice workloads are identical however the
  slices are scheduled;
* re-running the same command re-derives the same slice seeds, which is
  what makes the experiment store's resume path exact (see below).

Experiment store (resume / refine)
----------------------------------
Passing ``store=`` (an :class:`~repro.eval.store.ExperimentStore`) makes
every completed slice durable: its (failures, trials) counts are appended
to the store keyed by ``(store_key, kind, k, seed)``.  With
``resume=True`` the estimators replay stored slice runs first and execute
only the residual shots, so

* a killed sweep re-run with the same arguments reproduces the
  uninterrupted result **bitwise** while paying only for the slices that
  had not completed, and
* raising the shot budget later samples only the delta, in sub-runs with
  deterministically derived seeds (:func:`repro.eval.store.derived_seed`).

``min_rel_precision`` turns a fixed shot budget into a target: after the
requested shots, slices keep growing (doubling, concentrated on the k
values contributing the most confidence-interval width) until every
decoder's statistical CI width is below ``min_rel_precision * LER`` or
every contributing slice has grown ``2 ** max_refine_rounds`` times its
base budget.  Both the refinement trajectory and its stopping rule are
deterministic functions of the accumulated counts -- never of how many
rounds the current process happened to execute -- so refinement is
itself resumable: a killed run continues, and stops, exactly where the
uninterrupted run would have.

Persistent worker pools
-----------------------
Every estimator accepts ``pool=`` (a
:class:`~repro.eval.pool.WorkerPool`): the sharded rounds then reuse the
pool's live workers instead of forking a throwaway pool per round.  The
Eq. (1) engine is additionally exposed incrementally as
:class:`Eq1Session`, so the sweep orchestrator
(:mod:`repro.eval.sweep`) can interleave refinement rounds of many
operating points over one pool.  Results are identical with or without
a pool at any width (the shard-seeding contract above).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.decoders.base import DecodeResult, Decoder
from repro.dem.model import DetectorErrorModel
from repro.eval.poisson_binomial import poisson_binomial_pmf
from repro.eval.pool import WorkerPool, pool_shared, run_sharded
from repro.eval.stats import RateEstimate, wilson_interval
from repro.eval.store import (
    ExperimentStore,
    SliceRecord,
    dem_config_key,
    derived_seed,
)
from repro.sim.sampler import DemSampler, ExactKSampler, SyndromeBatch
from repro.utils.rng import RngLike, ensure_rng


class ResidualWorkNeeded(Exception):
    """A replay-only evaluation found shots the store does not cover.

    Raised instead of decoding when an estimator runs in replay-only
    mode (placeholder decoders, no sampling): the campaign layer uses
    it as the authoritative "is this step fully cached?" signal -- the
    exact same slice-replay logic that a live run would execute decides,
    so coverage checks and execution can never disagree.
    """


def decode_batch_chunked(
    decoder: Decoder,
    batch: SyndromeBatch,
    batch_size: Optional[int] = None,
    reference: bool = False,
) -> List[DecodeResult]:
    """Decode a batch through the batch API, optionally in bounded chunks.

    ``batch_size`` caps the shots handed to one ``decode_batch`` call (a
    memory knob for very large batches); ``reference`` forces the per-shot
    loop.  All three paths return element-wise identical results.
    """
    if reference:
        return decoder.decode_batch_reference(batch)
    if batch_size is None or batch_size >= batch.shots:
        return decoder.decode_batch(batch)
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    results: List[DecodeResult] = []
    for start in range(0, batch.shots, batch_size):
        results.extend(decoder.decode_batch(batch.slice(start, start + batch_size)))
    return results


def count_result_failures(
    results: Sequence[DecodeResult], observables: np.ndarray
) -> int:
    """Vectorized failure count: give-ups plus wrong logical predictions."""
    if len(results) != len(observables):
        raise ValueError(
            f"{len(results)} decode results for {len(observables)} observables"
        )
    if not results:
        return 0
    predicted = np.fromiter(
        (r.observable_mask for r in results), dtype=np.int64, count=len(results)
    )
    success = np.fromiter(
        (r.success for r in results), dtype=bool, count=len(results)
    )
    observed = np.asarray(observables, dtype=np.int64)
    return int(np.count_nonzero(~success | (predicted != observed)))


def count_failures(
    decoder: Decoder,
    batch: SyndromeBatch,
    batch_size: Optional[int] = None,
    reference: bool = False,
) -> Tuple[int, int]:
    """(failures, shots) of a decoder on a sampled batch (batch decode path)."""
    results = decode_batch_chunked(
        decoder, batch, batch_size=batch_size, reference=reference
    )
    return count_result_failures(results, batch.observables), batch.shots


@dataclass
class DirectMonteCarloResult:
    """Direct Monte-Carlo LER for one decoder."""

    decoder_name: str
    estimate: RateEstimate

    @property
    def ler(self) -> float:
        return self.estimate.rate


def _count_direct_shard(
    decoders: Mapping[str, Decoder],
    dem: DetectorErrorModel,
    p: float,
    shots: int,
    seed: int,
    batch_size: Optional[int],
) -> Dict[str, Tuple[int, int]]:
    """Sample one direct-MC shot slice and count failures per decoder."""
    sampler = DemSampler(dem, p, rng=int(seed))
    batch = sampler.sample(shots)
    return {
        name: count_failures(decoder, batch, batch_size=batch_size)
        for name, decoder in decoders.items()
    }


def _direct_shard_worker(task: Tuple[int, int]) -> Dict[str, Tuple[int, int]]:
    shots, seed = task
    decoders, dem, p, batch_size = pool_shared()
    return _count_direct_shard(decoders, dem, p, shots, seed, batch_size)


def _split_shots(shots: int, shards: int) -> List[int]:
    """Split a shot budget into ``shards`` near-equal positive pieces."""
    shard_shots = [shots // shards] * shards
    for index in range(shots % shards):
        shard_shots[index] += 1
    return [s for s in shard_shots if s > 0]


def estimate_ler_direct(
    decoders: Mapping[str, Decoder],
    dem: DetectorErrorModel,
    p: float,
    shots: int,
    rng: RngLike = None,
    shards: int = 1,
    batch_size: Optional[int] = None,
    store: Optional[ExperimentStore] = None,
    store_key: Optional[str] = None,
    resume: bool = False,
    pool: Optional[WorkerPool] = None,
    replay_only: bool = False,
) -> Dict[str, DirectMonteCarloResult]:
    """Direct Monte-Carlo LER of several decoders on a shared workload.

    Args:
        decoders: Name -> decoder map; all see identical syndromes.
        dem: The detector error model.
        p: Physical error rate.
        shots: Total Monte-Carlo shots.
        rng: Randomness; slice seeds are drawn from it up front (see the
            module docstring's shard-seeding contract).
        shards: Split the budget into that many independently-seeded
            slices evaluated in worker processes; every decoder still
            sees the identical pooled workload.
        batch_size: Cap on shots per ``decode_batch`` call (memory knob).
        store: Optional experiment store; completed slices are appended.
            Note that with ``shards == 1`` attaching a store switches
            sampling from the historic inline path (the generator feeds
            the sampler directly) to the pre-seeded slice path, so the
            workload differs from the storeless run with the same
            ``rng``; store-backed runs are bitwise-stable among
            themselves (and match storeless runs whenever both use
            whole slices, i.e. ``shards > 1``).
        store_key: Experiment key for the store (defaults to a hash of
            the DEM content and ``p``).
        resume: Replay stored slices and run only the residual shots.
            Stored runs are folded in only up to the requested budget:
            a run that would overshoot it is left on disk and the
            residual is sampled fresh, so trials never exceed the
            request.  When the budget is no larger than a slice's first
            stored run, the result is bitwise what a fresh run at that
            budget produces; a budget landing strictly inside a longer
            stored run ladder replays the fitting prefix and samples
            the residual from the next derived seed (statistically
            sound, but a fresh run would draw all shots from run 0).
        pool: Optional persistent :class:`WorkerPool`; sharded rounds
            reuse its live workers instead of forking per call.
        replay_only: Assemble the estimate purely from stored slices;
            raise :class:`ResidualWorkNeeded` (before touching any
            decoder or sampler) if residual shots would be required.
            Decoders may then be placeholders -- only their names are
            read -- which is how the campaign layer answers "is this
            step fully cached?" without building the decoder zoo.

    Returns:
        Name -> :class:`DirectMonteCarloResult`.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if replay_only and (store is None or not resume):
        raise ResidualWorkNeeded(
            "replay-only evaluation requires store=... and resume=True"
        )
    generator = ensure_rng(rng)
    if shards == 1 and store is None:
        # Historic inline path: the generator feeds the sampler directly.
        batch = DemSampler(dem, p, rng=generator).sample(shots)
        return {
            name: DirectMonteCarloResult(
                decoder_name=name,
                estimate=wilson_interval(
                    *count_failures(decoder, batch, batch_size=batch_size)
                ),
            )
            for name, decoder in decoders.items()
        }
    names = list(decoders)
    if store is not None and store_key is None:
        store_key = dem_config_key(dem, p, kind="direct")
    shard_shots = _split_shots(shots, shards)
    seeds = [
        int(s) for s in generator.integers(0, 2**63 - 1, size=len(shard_shots))
    ]
    totals: Dict[str, List[int]] = {name: [0, 0] for name in names}
    tasks: List[Tuple[int, int]] = []
    # (seed, run, persist) of each task, in task order.
    pending: List[Tuple[int, int, bool]] = []
    for slice_shots, seed in zip(shard_shots, seeds):
        have = 0
        runs = 0
        overshoot = False
        if store is not None and resume:
            for record in store.usable_runs(store_key, "direct", None, seed, names):
                if have + record.shots > slice_shots:
                    # Folding this run would replay trials past the
                    # requested budget; leave it on disk and sample the
                    # residual fresh, so the estimate matches a fresh
                    # run at this budget bitwise.
                    overshoot = True
                    break
                for name in names:
                    failures, trials = record.counts[name]
                    totals[name][0] += failures
                    totals[name][1] += trials
                have += record.shots
                runs += 1
        residual = slice_shots - have
        if residual > 0:
            # After an overshoot the store already holds a (larger) run
            # at this index; appending a second record with the same
            # (seed, run) identity would make the sub-run sequence
            # ambiguous, so the residual run is not persisted.
            tasks.append((residual, derived_seed(seed, runs)))
            pending.append((seed, runs, not overshoot))
    if tasks and replay_only:
        raise ResidualWorkNeeded(
            f"{sum(n for n, _seed in tasks)} residual direct-MC shots "
            f"not covered by the store (config {store_key})"
        )
    if tasks:
        if shards == 1 or len(tasks) <= 1:
            outputs = [
                _count_direct_shard(decoders, dem, p, n, s, batch_size)
                for n, s in tasks
            ]
        else:
            outputs = run_sharded(
                (dict(decoders), dem, p, batch_size),
                _direct_shard_worker,
                tasks,
                processes=min(shards, len(tasks)),
                pool=pool,
            )
        for (task_shots, _sub_seed), (seed, run, persist), counts in zip(
            tasks, pending, outputs
        ):
            for name in names:
                failures, trials = counts[name]
                totals[name][0] += failures
                totals[name][1] += trials
            if store is not None and persist:
                store.append(
                    SliceRecord(
                        config=store_key,
                        kind="direct",
                        k=None,
                        seed=seed,
                        run=run,
                        shots=task_shots,
                        counts={n: tuple(counts[n]) for n in names},
                    )
                )
    return {
        name: DirectMonteCarloResult(
            decoder_name=name,
            estimate=wilson_interval(totals[name][0], totals[name][1]),
        )
        for name in names
    }


@dataclass
class ImportanceLerResult:
    """Eq. (1) LER decomposition for one decoder.

    Attributes:
        decoder_name: Which decoder.
        ler: The point estimate sum_k P_o(k) P_f(k).
        ler_low / ler_high: Eq. (1) evaluated at the per-k Wilson bounds.
        per_k: ``(k, P_o(k), P_f(k) estimate)`` rows, k = 0 upward.
        truncation_bound: P(count > k_max) -- an upper bound on the LER
            mass ignored by truncating the sum.
    """

    decoder_name: str
    ler: float
    ler_low: float
    ler_high: float
    per_k: List[Tuple[int, float, RateEstimate]] = field(default_factory=list)
    truncation_bound: float = 0.0

    @property
    def statistical_width(self) -> float:
        """CI width attributable to finite shots (excludes truncation).

        ``sum_k P_o(k) (high_k - low_k)`` -- the part of the interval
        more shots can shrink; the truncation tail cannot be bought down
        without raising ``k_max``.
        """
        return sum(po * (est.high - est.low) for _k, po, est in self.per_k)


def _evaluate_k_slice(
    components: Mapping[str, Decoder],
    parallel_specs: Mapping[str, Tuple[str, str]],
    dem: DetectorErrorModel,
    p: float,
    k: int,
    k_shots: int,
    seed: int,
    batch_size: Optional[int],
) -> Dict[str, Tuple[int, int]]:
    """Sample one exact-k workload and count failures for every config.

    The unit of sharded work: components decode the shared batch through
    their batch fast paths; parallel configurations are derived from the
    stored component results with the hardware comparator rule.  Only
    (failures, trials) counts cross the process boundary.
    """
    from repro.decoders.combined import combine_parallel_batch

    sampler = ExactKSampler(dem, p, rng=int(seed))
    batch = sampler.sample(k, k_shots)
    component_results = {
        name: decode_batch_chunked(decoder, batch, batch_size=batch_size)
        for name, decoder in components.items()
    }
    counts: Dict[str, Tuple[int, int]] = {
        name: (count_result_failures(results, batch.observables), batch.shots)
        for name, results in component_results.items()
    }
    for name, (first, second) in parallel_specs.items():
        combined = combine_parallel_batch(
            component_results[first], component_results[second]
        )
        counts[name] = (
            count_result_failures(combined, batch.observables),
            batch.shots,
        )
    return counts


def _k_slice_worker(task: Tuple[int, int, int]) -> Dict[str, Tuple[int, int]]:
    k, k_shots, seed = task
    components, parallel_specs, dem, p, batch_size = pool_shared()
    return _evaluate_k_slice(
        components, parallel_specs, dem, p, k, k_shots, seed, batch_size
    )


def _refinement_plan(
    results: Mapping[str, ImportanceLerResult],
    trials_by_k: Mapping[int, int],
    min_rel_precision: float,
) -> Dict[int, int]:
    """Extra shots per k for the next refinement round (empty = done).

    For every decoder whose statistical CI width still exceeds
    ``min_rel_precision * LER``, the k values contributing the top 90%
    of that width get their trial count doubled.  Zero-LER decoders are
    excluded (no relative target exists for a zero point estimate; their
    upper bound shrinks as a side effect of other rows' shots).  The
    plan is a deterministic function of the counts, so refinement is
    reproducible and resumable.
    """
    extra: Dict[int, int] = {}
    for result in results.values():
        if result.ler <= 0.0:
            continue
        width = result.statistical_width
        if width <= min_rel_precision * result.ler:
            continue
        contributions = sorted(
            (
                (po * (est.high - est.low), k)
                for k, po, est in result.per_k
                if trials_by_k.get(k, 0) > 0
            ),
            key=lambda item: (-item[0], item[1]),
        )
        accumulated = 0.0
        for contribution, k in contributions:
            if accumulated >= 0.9 * width or contribution <= 0.0:
                break
            accumulated += contribution
            extra[k] = max(extra.get(k, 0), trials_by_k[k])
    return extra


class Eq1Session:
    """Incremental Eq. (1) evaluation state of one operating point.

    The session owns everything one (DEM, p) experiment accumulates --
    the up-front per-k seeds, the merged (failures, trials) counts, the
    next sub-run index of every k slice, and the store wiring -- and
    exposes the evaluation loop as separate steps (:meth:`base_plan`,
    :meth:`refinement_plan`, :meth:`evaluate_round`, :meth:`assemble`).
    The single-point estimators drive one session start to finish; the
    sweep orchestrator (:mod:`repro.eval.sweep`) keeps one session per
    grid point and round-robins refinement rounds across all of them
    over one persistent :class:`~repro.eval.pool.WorkerPool`.

    Per-k base seeds are drawn up front from the caller's generator, so
    the sampled workloads -- and therefore every estimate -- are
    identical whether the k slices run inline (``shards == 1``) or
    distributed over a process pool, and a resumed session re-derives
    the same seeds and recognizes its stored slices.
    """

    def __init__(
        self,
        components: Mapping[str, Decoder],
        parallel_specs: Mapping[str, Tuple[str, str]],
        dem: DetectorErrorModel,
        p: float,
        k_max: int,
        rng: RngLike = None,
        k_min: int = 1,
        shards: int = 1,
        batch_size: Optional[int] = None,
        store: Optional[ExperimentStore] = None,
        store_key: Optional[str] = None,
        resume: bool = False,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.components = dict(components)
        self.parallel_specs = dict(parallel_specs)
        self.dem = dem
        self.p = p
        self.shards = shards
        self.batch_size = batch_size
        self.store = store
        self.pool = pool
        self.all_names = list(self.components) + list(self.parallel_specs)
        self._base_budget: Optional[Dict[int, int]] = None
        generator = ensure_rng(rng)
        self.pmf, self.tail = poisson_binomial_pmf(dem.probabilities(p), k_max)
        self.k_values = [
            k for k in range(k_min, k_max + 1) if self.pmf[k] > 0.0
        ]
        drawn = generator.integers(0, 2**63 - 1, size=len(self.k_values))
        self.seeds = {k: int(seed) for k, seed in zip(self.k_values, drawn)}
        if store is not None and store_key is None:
            store_key = dem_config_key(dem, p, kind="eq1")
        self.store_key = store_key
        # The pool payload is built once so a persistent WorkerPool
        # (identity-checked) ships it to the workers at most once per
        # session, not once per refinement round.
        self._shared = (
            self.components, self.parallel_specs, dem, p, batch_size
        )
        # Accumulated (failures, trials) per (k, name), plus the next
        # sub-run index of each k slice (stored runs replay first).
        self.totals: Dict[int, Dict[str, List[int]]] = {
            k: {name: [0, 0] for name in self.all_names}
            for k in self.k_values
        }
        self.next_run: Dict[int, int] = {k: 0 for k in self.k_values}
        if store is not None and resume:
            for k in self.k_values:
                for record in store.usable_runs(
                    store_key, "eq1", k, self.seeds[k], self.all_names
                ):
                    for name in self.all_names:
                        failures, trials = record.counts[name]
                        self.totals[k][name][0] += failures
                        self.totals[k][name][1] += trials
                    self.next_run[k] += 1

    def trials_of(self, k: int) -> int:
        """Trials accumulated so far on the k slice (any decoder's view)."""
        return self.totals[k][self.all_names[0]][1] if self.all_names else 0

    def base_plan(
        self,
        shots_per_k: int,
        shots_for_k: Optional[Callable[[int], int]] = None,
    ) -> Dict[int, int]:
        """Residual shots taking every k slice to its base budget.

        The budgets are remembered: :meth:`refinement_plan` caps each
        slice's growth relative to them.
        """
        self._base_budget = {
            k: (shots_for_k(k) if shots_for_k is not None else shots_per_k)
            for k in self.k_values
        }
        return {
            k: budget - self.trials_of(k)
            for k, budget in self._base_budget.items()
        }

    def refinement_plan(
        self, min_rel_precision: float, max_refine_rounds: int = 6
    ) -> Dict[int, int]:
        """Extra shots per k for the next refinement round (empty = done).

        ``max_refine_rounds`` caps every slice's budget amplification at
        ``2 ** max_refine_rounds`` times its base budget.  Phrasing the
        cap in accumulated trials rather than rounds-executed-by-this-
        process keeps the stopping rule a pure function of the counts,
        so a killed-and-resumed run stops exactly where the
        uninterrupted run would have -- a per-process round counter
        would reset on resume and overshoot.
        """
        plan = _refinement_plan(
            self.assemble(),
            {k: self.trials_of(k) for k in self.k_values},
            min_rel_precision,
        )
        if self._base_budget is None:
            return plan
        limit = 2**max_refine_rounds
        return {
            k: n
            for k, n in plan.items()
            if self.trials_of(k) + n <= self._base_budget[k] * limit
        }

    def evaluate_round(self, extra: Mapping[int, int]) -> None:
        """Run one batch of residual sub-runs and fold in their counts."""
        tasks: List[Tuple[int, int, int]] = []
        runs: List[int] = []
        for k in self.k_values:
            n = extra.get(k, 0)
            if n <= 0:
                continue
            run = self.next_run[k]
            tasks.append((k, n, derived_seed(self.seeds[k], run)))
            runs.append(run)
        if not tasks:
            return
        if self.shards == 1 or len(tasks) <= 1:
            outputs = [
                _evaluate_k_slice(
                    self.components, self.parallel_specs, self.dem, self.p,
                    k, n, s, self.batch_size,
                )
                for k, n, s in tasks
            ]
        else:
            outputs = run_sharded(
                self._shared,
                _k_slice_worker,
                tasks,
                processes=min(self.shards, len(tasks)),
                pool=self.pool,
            )
        for (k, n, _sub_seed), run, counts in zip(tasks, runs, outputs):
            for name in self.all_names:
                failures, trials = counts[name]
                self.totals[k][name][0] += failures
                self.totals[k][name][1] += trials
            self.next_run[k] = run + 1
            if self.store is not None:
                self.store.append(
                    SliceRecord(
                        config=self.store_key,
                        kind="eq1",
                        k=k,
                        seed=self.seeds[k],
                        run=run,
                        shots=n,
                        counts={
                            name: tuple(counts[name])
                            for name in self.all_names
                        },
                    )
                )

    def assemble(self) -> Dict[str, ImportanceLerResult]:
        """Eq. (1) results from the counts accumulated so far."""
        results: Dict[str, ImportanceLerResult] = {}
        for name in self.all_names:
            name_rows = [
                (k, float(self.pmf[k]), wilson_interval(*self.totals[k][name]))
                for k in self.k_values
            ]
            point = sum(po * est.rate for _k, po, est in name_rows)
            low = sum(po * est.low for _k, po, est in name_rows)
            high = (
                sum(po * est.high for _k, po, est in name_rows) + self.tail
            )
            results[name] = ImportanceLerResult(
                decoder_name=name,
                ler=point,
                ler_low=low,
                ler_high=high,
                per_k=name_rows,
                truncation_bound=self.tail,
            )
        return results


def _estimate_eq1(
    components: Mapping[str, Decoder],
    parallel_specs: Mapping[str, Tuple[str, str]],
    dem: DetectorErrorModel,
    p: float,
    k_max: int,
    shots_per_k: int,
    rng: RngLike,
    k_min: int,
    shots_for_k: Optional[Callable[[int], int]],
    shards: int,
    batch_size: Optional[int],
    store: Optional[ExperimentStore],
    store_key: Optional[str],
    resume: bool,
    min_rel_precision: Optional[float],
    max_refine_rounds: int,
    pool: Optional[WorkerPool],
) -> Dict[str, ImportanceLerResult]:
    """Drive one :class:`Eq1Session` start to finish (both estimators)."""
    if min_rel_precision is not None and min_rel_precision <= 0:
        raise ValueError("min_rel_precision must be positive")
    session = Eq1Session(
        components=components,
        parallel_specs=parallel_specs,
        dem=dem,
        p=p,
        k_max=k_max,
        rng=rng,
        k_min=k_min,
        shards=shards,
        batch_size=batch_size,
        store=store,
        store_key=store_key,
        resume=resume,
        pool=pool,
    )
    session.evaluate_round(session.base_plan(shots_per_k, shots_for_k))
    if min_rel_precision is not None:
        # Terminates: every executed round doubles at least one k row,
        # and each row is capped at 2**max_refine_rounds its base
        # budget, so rows drop out of the plan after finitely many
        # doublings.
        while True:
            plan = session.refinement_plan(min_rel_precision, max_refine_rounds)
            if not plan:
                break
            session.evaluate_round(plan)
    return session.assemble()


def estimate_ler_importance(
    decoders: Mapping[str, Decoder],
    dem: DetectorErrorModel,
    p: float,
    k_max: int = 16,
    shots_per_k: int = 200,
    rng: RngLike = None,
    k_min: int = 1,
    shards: int = 1,
    batch_size: Optional[int] = None,
    store: Optional[ExperimentStore] = None,
    store_key: Optional[str] = None,
    resume: bool = False,
    min_rel_precision: Optional[float] = None,
    max_refine_rounds: int = 6,
    pool: Optional[WorkerPool] = None,
) -> Dict[str, ImportanceLerResult]:
    """Eq. (1) LER of several decoders on shared per-k workloads.

    Args:
        decoders: Name -> decoder map; all see identical syndromes.
        dem: The detector error model.
        p: Physical error rate.
        k_max: Largest injected fault count (the paper uses up to 24);
            mass beyond it is reported as ``truncation_bound``.
        shots_per_k: Syndromes sampled per k.
        rng: Randomness; per-k base seeds are drawn from it up front
            (the module docstring's shard-seeding contract).
        k_min: Smallest k sampled (k=0 contributes zero failures).
        shards: Process-pool width for the k slices (1 = inline; any
            value yields identical estimates).
        batch_size: Cap on shots per ``decode_batch`` call (memory knob).
        store: Optional experiment store; completed k slices are
            appended so sweeps are kill-and-resume safe.
        store_key: Experiment key for the store (defaults to a hash of
            the DEM content and ``p``).
        resume: Replay stored slices and run only the residual shots.
        min_rel_precision: Optional target relative CI width; shots keep
            doubling on the widest k rows until met (see
            :func:`_refinement_plan`).
        max_refine_rounds: Cap on refinement: each k row may grow to at
            most ``2 ** max_refine_rounds`` times its base budget (a
            counts-based rule, so it resumes exactly; see
            :meth:`Eq1Session.refinement_plan`).
        pool: Optional persistent :class:`WorkerPool`; sharded rounds
            reuse its live workers instead of forking per round.

    Returns:
        Name -> :class:`ImportanceLerResult`.
    """
    return _estimate_eq1(
        components=decoders,
        parallel_specs={},
        dem=dem,
        p=p,
        k_max=k_max,
        shots_per_k=shots_per_k,
        rng=rng,
        k_min=k_min,
        shots_for_k=None,
        shards=shards,
        batch_size=batch_size,
        store=store,
        store_key=store_key,
        resume=resume,
        min_rel_precision=min_rel_precision,
        max_refine_rounds=max_refine_rounds,
        pool=pool,
    )


def estimate_ler_suite(
    components: Mapping[str, Decoder],
    parallel_specs: Mapping[str, Tuple[str, str]],
    dem: DetectorErrorModel,
    p: float,
    k_max: int = 16,
    shots_per_k: int = 200,
    rng: RngLike = None,
    k_min: int = 1,
    shots_for_k: Optional[Callable[[int], int]] = None,
    shards: int = 1,
    batch_size: Optional[int] = None,
    store: Optional[ExperimentStore] = None,
    store_key: Optional[str] = None,
    resume: bool = False,
    min_rel_precision: Optional[float] = None,
    max_refine_rounds: int = 6,
    pool: Optional[WorkerPool] = None,
) -> Dict[str, ImportanceLerResult]:
    """Eq. (1) LER for component decoders *and* parallel combinations.

    Each component decodes every syndrome exactly once; the ``a || b``
    configurations are derived from the stored component results with the
    hardware's comparator rule (:func:`combine_parallel_batch`), which
    halves the decode cost of evaluating the paper's Table 2.

    Args:
        components: Name -> decoder for every directly-evaluated config.
        parallel_specs: Name -> (component_a, component_b) for each
            parallel configuration to derive.
        shots_for_k: Optional per-k shot schedule overriding
            ``shots_per_k``.  Decoder differences concentrate at
            mid-range fault counts (sparse syndromes everyone decodes;
            astronomically-rare dense ones nobody weights), so headline
            tables boost shots exactly there.
        shards: Process-pool width for the k slices (1 = inline; any
            value yields identical estimates).
        batch_size: Cap on shots per ``decode_batch`` call (memory knob).
        store / store_key / resume: Experiment-store wiring; see
            :func:`estimate_ler_importance`.  Stored slices are reusable
            only when they cover every name in ``components`` and
            ``parallel_specs`` (paired workloads).
        min_rel_precision / max_refine_rounds: Precision-targeted
            refinement; see :func:`estimate_ler_importance`.
        pool: Optional persistent :class:`WorkerPool`; see
            :func:`estimate_ler_importance`.
    """
    unknown = {
        name: spec
        for name, spec in parallel_specs.items()
        if spec[0] not in components or spec[1] not in components
    }
    if unknown:
        raise ValueError(f"parallel specs reference unknown components: {unknown}")
    collisions = set(components) & set(parallel_specs)
    if collisions:
        raise ValueError(
            "parallel configuration names collide with component names "
            f"(their per-k rows would be double-counted): {sorted(collisions)}"
        )
    return _estimate_eq1(
        components=components,
        parallel_specs=parallel_specs,
        dem=dem,
        p=p,
        k_max=k_max,
        shots_per_k=shots_per_k,
        rng=rng,
        k_min=k_min,
        shots_for_k=shots_for_k,
        shards=shards,
        batch_size=batch_size,
        store=store,
        store_key=store_key,
        resume=resume,
        min_rel_precision=min_rel_precision,
        max_refine_rounds=max_refine_rounds,
        pool=pool,
    )
