"""Logical-error-rate estimation: direct Monte-Carlo and the paper's Eq. (1).

Direct Monte-Carlo is exact but cannot reach the paper's operating points
(LER ~ 1e-13 would need trillions of shots); it is used for validation at
small distance / high rate where the two estimators must agree.

The production estimator is the paper's importance method [48]:

    LER = sum_k  P_o(k) * P_f(k)                                   (Eq. 1)

where ``P_o(k)`` is the exact Poisson-binomial probability that exactly
``k`` fault mechanisms fire and ``P_f(k)`` is the decoding-failure rate
measured on syndromes with exactly ``k`` injected faults.  A *failure* is
a wrong logical prediction **or** a real-time give-up (deadline/capability
exceeded), matching the paper's accounting.

Both estimators evaluate *many decoders on the same sampled workload*, so
comparisons between decoders are paired (sharper than independent runs)
and sampling cost is amortized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.decoders.base import Decoder
from repro.dem.model import DetectorErrorModel
from repro.eval.poisson_binomial import poisson_binomial_pmf
from repro.eval.stats import RateEstimate, wilson_interval
from repro.sim.sampler import DemSampler, ExactKSampler, SyndromeBatch
from repro.utils.rng import RngLike, ensure_rng


def count_failures(
    decoder: Decoder, batch: SyndromeBatch
) -> Tuple[int, int]:
    """(failures, shots) of a decoder on a sampled batch."""
    failures = 0
    for events, observable in zip(batch.events, batch.observables):
        result = decoder.decode(events)
        if not result.success or result.observable_mask != int(observable):
            failures += 1
    return failures, batch.shots


@dataclass
class DirectMonteCarloResult:
    """Direct Monte-Carlo LER for one decoder."""

    decoder_name: str
    estimate: RateEstimate

    @property
    def ler(self) -> float:
        return self.estimate.rate


def estimate_ler_direct(
    decoders: Mapping[str, Decoder],
    dem: DetectorErrorModel,
    p: float,
    shots: int,
    rng: RngLike = None,
) -> Dict[str, DirectMonteCarloResult]:
    """Direct Monte-Carlo LER of several decoders on a shared workload."""
    sampler = DemSampler(dem, p, rng=ensure_rng(rng))
    batch = sampler.sample(shots)
    results: Dict[str, DirectMonteCarloResult] = {}
    for name, decoder in decoders.items():
        failures, trials = count_failures(decoder, batch)
        results[name] = DirectMonteCarloResult(
            decoder_name=name, estimate=wilson_interval(failures, trials)
        )
    return results


@dataclass
class ImportanceLerResult:
    """Eq. (1) LER decomposition for one decoder.

    Attributes:
        decoder_name: Which decoder.
        ler: The point estimate sum_k P_o(k) P_f(k).
        ler_low / ler_high: Eq. (1) evaluated at the per-k Wilson bounds.
        per_k: ``(k, P_o(k), P_f(k) estimate)`` rows, k = 0 upward.
        truncation_bound: P(count > k_max) -- an upper bound on the LER
            mass ignored by truncating the sum.
    """

    decoder_name: str
    ler: float
    ler_low: float
    ler_high: float
    per_k: List[Tuple[int, float, RateEstimate]] = field(default_factory=list)
    truncation_bound: float = 0.0


def estimate_ler_importance(
    decoders: Mapping[str, Decoder],
    dem: DetectorErrorModel,
    p: float,
    k_max: int = 16,
    shots_per_k: int = 200,
    rng: RngLike = None,
    k_min: int = 1,
) -> Dict[str, ImportanceLerResult]:
    """Eq. (1) LER of several decoders on shared per-k workloads.

    Args:
        decoders: Name -> decoder map; all see identical syndromes.
        dem: The detector error model.
        p: Physical error rate.
        k_max: Largest injected fault count (the paper uses up to 24).
        shots_per_k: Syndromes sampled per k.
        rng: Randomness.
        k_min: Smallest k sampled (k=0 contributes zero failures).

    Returns:
        Name -> :class:`ImportanceLerResult`.
    """
    generator = ensure_rng(rng)
    probabilities = dem.probabilities(p)
    pmf, tail = poisson_binomial_pmf(probabilities, k_max)
    sampler = ExactKSampler(dem, p, rng=generator)

    per_decoder_rows: Dict[str, List[Tuple[int, float, RateEstimate]]] = {
        name: [] for name in decoders
    }
    for k in range(k_min, k_max + 1):
        if pmf[k] <= 0.0:
            continue
        batch = sampler.sample(k, shots_per_k)
        for name, decoder in decoders.items():
            failures, trials = count_failures(decoder, batch)
            per_decoder_rows[name].append(
                (k, float(pmf[k]), wilson_interval(failures, trials))
            )

    results: Dict[str, ImportanceLerResult] = {}
    for name, rows in per_decoder_rows.items():
        point = sum(po * est.rate for _k, po, est in rows)
        low = sum(po * est.low for _k, po, est in rows)
        high = sum(po * est.high for _k, po, est in rows) + tail
        results[name] = ImportanceLerResult(
            decoder_name=name,
            ler=point,
            ler_low=low,
            ler_high=high,
            per_k=rows,
            truncation_bound=tail,
        )
    return results


def estimate_ler_suite(
    components: Mapping[str, Decoder],
    parallel_specs: Mapping[str, Tuple[str, str]],
    dem: DetectorErrorModel,
    p: float,
    k_max: int = 16,
    shots_per_k: int = 200,
    rng: RngLike = None,
    k_min: int = 1,
    shots_for_k: Optional[Callable[[int], int]] = None,
) -> Dict[str, ImportanceLerResult]:
    """Eq. (1) LER for component decoders *and* parallel combinations.

    Each component decodes every syndrome exactly once; the ``a || b``
    configurations are derived from the stored component results with the
    hardware's comparator rule (:func:`combine_parallel_results`), which
    halves the decode cost of evaluating the paper's Table 2.

    Args:
        components: Name -> decoder for every directly-evaluated config.
        parallel_specs: Name -> (component_a, component_b) for each
            parallel configuration to derive.
        shots_for_k: Optional per-k shot schedule overriding
            ``shots_per_k``.  Decoder differences concentrate at
            mid-range fault counts (sparse syndromes everyone decodes;
            astronomically-rare dense ones nobody weights), so headline
            tables boost shots exactly there.
    """
    from repro.decoders.combined import combine_parallel_results

    generator = ensure_rng(rng)
    probabilities = dem.probabilities(p)
    pmf, tail = poisson_binomial_pmf(probabilities, k_max)
    sampler = ExactKSampler(dem, p, rng=generator)

    all_names = list(components) + list(parallel_specs)
    rows: Dict[str, List[Tuple[int, float, RateEstimate]]] = {
        name: [] for name in all_names
    }
    for k in range(k_min, k_max + 1):
        if pmf[k] <= 0.0:
            continue
        k_shots = shots_for_k(k) if shots_for_k is not None else shots_per_k
        batch = sampler.sample(k, k_shots)
        shot_results: Dict[str, List] = {
            name: [decoder.decode(events) for events in batch.events]
            for name, decoder in components.items()
        }
        for name, (a, b) in parallel_specs.items():
            shot_results[name] = [
                combine_parallel_results(ra, rb)
                for ra, rb in zip(shot_results[a], shot_results[b])
            ]
        for name in all_names:
            failures = sum(
                1
                for result, observable in zip(
                    shot_results[name], batch.observables
                )
                if not result.success or result.observable_mask != int(observable)
            )
            rows[name].append(
                (k, float(pmf[k]), wilson_interval(failures, batch.shots))
            )

    results: Dict[str, ImportanceLerResult] = {}
    for name, name_rows in rows.items():
        point = sum(po * est.rate for _k, po, est in name_rows)
        low = sum(po * est.low for _k, po, est in name_rows)
        high = sum(po * est.high for _k, po, est in name_rows) + tail
        results[name] = ImportanceLerResult(
            decoder_name=name,
            ler=point,
            ler_low=low,
            ler_high=high,
            per_k=name_rows,
            truncation_bound=tail,
        )
    return results
