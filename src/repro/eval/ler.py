"""Logical-error-rate estimation: direct Monte-Carlo and the paper's Eq. (1).

Direct Monte-Carlo is exact but cannot reach the paper's operating points
(LER ~ 1e-13 would need trillions of shots); it is used for validation at
small distance / high rate where the two estimators must agree.

The production estimator is the paper's importance method [48]:

    LER = sum_k  P_o(k) * P_f(k)                                   (Eq. 1)

where ``P_o(k)`` is the exact Poisson-binomial probability that exactly
``k`` fault mechanisms fire and ``P_f(k)`` is the decoding-failure rate
measured on syndromes with exactly ``k`` injected faults.  A *failure* is
a wrong logical prediction **or** a real-time give-up (deadline/capability
exceeded), matching the paper's accounting.

Both estimators evaluate *many decoders on the same sampled workload*, so
comparisons between decoders are paired (sharper than independent runs)
and sampling cost is amortized.

Decoding goes through the batch API (:meth:`Decoder.decode_batch`), which
is element-wise identical to the per-shot loop; failure counting is a
vectorized comparison over the collected results.  Each ``k`` slice of the
Eq. (1) sum draws its syndromes from an independent child RNG stream
seeded up front from the caller's generator, so the work can optionally be
sharded across processes (``shards > 1``) without changing any estimate:
the per-k results are identical however the slices are scheduled.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.decoders.base import DecodeResult, Decoder
from repro.dem.model import DetectorErrorModel
from repro.eval.poisson_binomial import poisson_binomial_pmf
from repro.eval.stats import RateEstimate, wilson_interval
from repro.sim.sampler import DemSampler, ExactKSampler, SyndromeBatch
from repro.utils.rng import RngLike, ensure_rng


def decode_batch_chunked(
    decoder: Decoder,
    batch: SyndromeBatch,
    batch_size: Optional[int] = None,
    reference: bool = False,
) -> List[DecodeResult]:
    """Decode a batch through the batch API, optionally in bounded chunks.

    ``batch_size`` caps the shots handed to one ``decode_batch`` call (a
    memory knob for very large batches); ``reference`` forces the per-shot
    loop.  All three paths return element-wise identical results.
    """
    if reference:
        return decoder.decode_batch_reference(batch)
    if batch_size is None or batch_size >= batch.shots:
        return decoder.decode_batch(batch)
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    results: List[DecodeResult] = []
    for start in range(0, batch.shots, batch_size):
        results.extend(decoder.decode_batch(batch.slice(start, start + batch_size)))
    return results


def count_result_failures(
    results: Sequence[DecodeResult], observables: np.ndarray
) -> int:
    """Vectorized failure count: give-ups plus wrong logical predictions."""
    if len(results) != len(observables):
        raise ValueError(
            f"{len(results)} decode results for {len(observables)} observables"
        )
    if not results:
        return 0
    predicted = np.fromiter(
        (r.observable_mask for r in results), dtype=np.int64, count=len(results)
    )
    success = np.fromiter(
        (r.success for r in results), dtype=bool, count=len(results)
    )
    observed = np.asarray(observables, dtype=np.int64)
    return int(np.count_nonzero(~success | (predicted != observed)))


def count_failures(
    decoder: Decoder,
    batch: SyndromeBatch,
    batch_size: Optional[int] = None,
    reference: bool = False,
) -> Tuple[int, int]:
    """(failures, shots) of a decoder on a sampled batch (batch decode path)."""
    results = decode_batch_chunked(
        decoder, batch, batch_size=batch_size, reference=reference
    )
    return count_result_failures(results, batch.observables), batch.shots


@dataclass
class DirectMonteCarloResult:
    """Direct Monte-Carlo LER for one decoder."""

    decoder_name: str
    estimate: RateEstimate

    @property
    def ler(self) -> float:
        return self.estimate.rate


#: Heavy per-run state (decoders, DEM, ...) shared with pool workers.
#: On fork platforms children inherit it copy-on-write -- nothing is
#: pickled per task and non-picklable decoder configs keep working; on
#: spawn-only platforms the pool initializer ships it once per worker.
_POOL_SHARED = None


def _init_pool_shared(shared) -> None:
    global _POOL_SHARED
    _POOL_SHARED = shared


def _run_sharded(shared, worker, tasks: List[Tuple], processes: int) -> List:
    """Map ``worker`` over ``tasks`` in a process pool.

    Tasks stay tiny (ints only); ``shared`` reaches the workers through
    fork inheritance of :data:`_POOL_SHARED` where available, otherwise
    through the initializer.
    """
    global _POOL_SHARED
    use_fork = "fork" in multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if use_fork else None)
    previous = _POOL_SHARED
    _POOL_SHARED = shared
    try:
        with context.Pool(
            processes=processes,
            initializer=None if use_fork else _init_pool_shared,
            initargs=() if use_fork else (shared,),
        ) as pool:
            return pool.map(worker, tasks)
    finally:
        _POOL_SHARED = previous


def _count_direct_shard(
    decoders: Mapping[str, Decoder],
    dem: DetectorErrorModel,
    p: float,
    shots: int,
    seed: int,
    batch_size: Optional[int],
) -> Dict[str, Tuple[int, int]]:
    """Sample one direct-MC shot slice and count failures per decoder."""
    sampler = DemSampler(dem, p, rng=int(seed))
    batch = sampler.sample(shots)
    return {
        name: count_failures(decoder, batch, batch_size=batch_size)
        for name, decoder in decoders.items()
    }


def _direct_shard_worker(task: Tuple[int, int]) -> Dict[str, Tuple[int, int]]:
    shots, seed = task
    decoders, dem, p, batch_size = _POOL_SHARED
    return _count_direct_shard(decoders, dem, p, shots, seed, batch_size)


def estimate_ler_direct(
    decoders: Mapping[str, Decoder],
    dem: DetectorErrorModel,
    p: float,
    shots: int,
    rng: RngLike = None,
    shards: int = 1,
    batch_size: Optional[int] = None,
) -> Dict[str, DirectMonteCarloResult]:
    """Direct Monte-Carlo LER of several decoders on a shared workload.

    With ``shards > 1`` the shot budget is split into that many
    independently-seeded slices evaluated in worker processes; every
    decoder still sees the identical pooled workload.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    generator = ensure_rng(rng)
    if shards == 1:
        batch = DemSampler(dem, p, rng=generator).sample(shots)
        return {
            name: DirectMonteCarloResult(
                decoder_name=name,
                estimate=wilson_interval(
                    *count_failures(decoder, batch, batch_size=batch_size)
                ),
            )
            for name, decoder in decoders.items()
        }
    shard_shots = [shots // shards] * shards
    for index in range(shots % shards):
        shard_shots[index] += 1
    shard_shots = [s for s in shard_shots if s > 0]
    seeds = generator.integers(0, 2**63 - 1, size=len(shard_shots))
    tasks = [(s, int(seed)) for s, seed in zip(shard_shots, seeds)]
    outputs = _run_sharded(
        (dict(decoders), dem, p, batch_size),
        _direct_shard_worker,
        tasks,
        processes=min(shards, len(tasks)),
    )
    results: Dict[str, DirectMonteCarloResult] = {}
    for name in decoders:
        failures = sum(out[name][0] for out in outputs)
        trials = sum(out[name][1] for out in outputs)
        results[name] = DirectMonteCarloResult(
            decoder_name=name, estimate=wilson_interval(failures, trials)
        )
    return results


@dataclass
class ImportanceLerResult:
    """Eq. (1) LER decomposition for one decoder.

    Attributes:
        decoder_name: Which decoder.
        ler: The point estimate sum_k P_o(k) P_f(k).
        ler_low / ler_high: Eq. (1) evaluated at the per-k Wilson bounds.
        per_k: ``(k, P_o(k), P_f(k) estimate)`` rows, k = 0 upward.
        truncation_bound: P(count > k_max) -- an upper bound on the LER
            mass ignored by truncating the sum.
    """

    decoder_name: str
    ler: float
    ler_low: float
    ler_high: float
    per_k: List[Tuple[int, float, RateEstimate]] = field(default_factory=list)
    truncation_bound: float = 0.0


def _evaluate_k_slice(
    components: Mapping[str, Decoder],
    parallel_specs: Mapping[str, Tuple[str, str]],
    dem: DetectorErrorModel,
    p: float,
    k: int,
    k_shots: int,
    seed: int,
    batch_size: Optional[int],
) -> Tuple[int, Dict[str, Tuple[int, int]]]:
    """Sample one exact-k workload and count failures for every config.

    The unit of sharded work: components decode the shared batch through
    their batch fast paths; parallel configurations are derived from the
    stored component results with the hardware comparator rule.  Only
    (failures, trials) counts cross the process boundary.
    """
    from repro.decoders.combined import combine_parallel_batch

    sampler = ExactKSampler(dem, p, rng=int(seed))
    batch = sampler.sample(k, k_shots)
    component_results = {
        name: decode_batch_chunked(decoder, batch, batch_size=batch_size)
        for name, decoder in components.items()
    }
    counts: Dict[str, Tuple[int, int]] = {
        name: (count_result_failures(results, batch.observables), batch.shots)
        for name, results in component_results.items()
    }
    for name, (first, second) in parallel_specs.items():
        combined = combine_parallel_batch(
            component_results[first], component_results[second]
        )
        counts[name] = (
            count_result_failures(combined, batch.observables),
            batch.shots,
        )
    return k, counts


def _k_slice_worker(
    task: Tuple[int, int, int]
) -> Tuple[int, Dict[str, Tuple[int, int]]]:
    k, k_shots, seed = task
    components, parallel_specs, dem, p, batch_size = _POOL_SHARED
    return _evaluate_k_slice(
        components, parallel_specs, dem, p, k, k_shots, seed, batch_size
    )


def _estimate_eq1(
    components: Mapping[str, Decoder],
    parallel_specs: Mapping[str, Tuple[str, str]],
    dem: DetectorErrorModel,
    p: float,
    k_max: int,
    shots_per_k: int,
    rng: RngLike,
    k_min: int,
    shots_for_k: Optional[Callable[[int], int]],
    shards: int,
    batch_size: Optional[int],
) -> Dict[str, ImportanceLerResult]:
    """Shared Eq. (1) engine behind both importance estimators.

    Per-k child seeds are drawn up front from the caller's generator, so
    the sampled workloads -- and therefore every estimate -- are
    identical whether the k slices run inline (``shards == 1``) or
    distributed over a process pool.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    generator = ensure_rng(rng)
    probabilities = dem.probabilities(p)
    pmf, tail = poisson_binomial_pmf(probabilities, k_max)

    k_values = [k for k in range(k_min, k_max + 1) if pmf[k] > 0.0]
    seeds = generator.integers(0, 2**63 - 1, size=len(k_values))
    tasks = [
        (k, shots_for_k(k) if shots_for_k is not None else shots_per_k, int(seed))
        for k, seed in zip(k_values, seeds)
    ]
    if shards == 1 or len(tasks) <= 1:
        outputs = [
            _evaluate_k_slice(
                components, parallel_specs, dem, p, k, k_shots, seed, batch_size
            )
            for k, k_shots, seed in tasks
        ]
    else:
        outputs = _run_sharded(
            (dict(components), dict(parallel_specs), dem, p, batch_size),
            _k_slice_worker,
            tasks,
            processes=min(shards, len(tasks)),
        )

    all_names = list(components) + list(parallel_specs)
    rows: Dict[str, List[Tuple[int, float, RateEstimate]]] = {
        name: [] for name in all_names
    }
    for k, counts in sorted(outputs, key=lambda item: item[0]):
        for name in all_names:
            failures, trials = counts[name]
            rows[name].append(
                (k, float(pmf[k]), wilson_interval(failures, trials))
            )

    results: Dict[str, ImportanceLerResult] = {}
    for name, name_rows in rows.items():
        point = sum(po * est.rate for _k, po, est in name_rows)
        low = sum(po * est.low for _k, po, est in name_rows)
        high = sum(po * est.high for _k, po, est in name_rows) + tail
        results[name] = ImportanceLerResult(
            decoder_name=name,
            ler=point,
            ler_low=low,
            ler_high=high,
            per_k=name_rows,
            truncation_bound=tail,
        )
    return results


def estimate_ler_importance(
    decoders: Mapping[str, Decoder],
    dem: DetectorErrorModel,
    p: float,
    k_max: int = 16,
    shots_per_k: int = 200,
    rng: RngLike = None,
    k_min: int = 1,
    shards: int = 1,
    batch_size: Optional[int] = None,
) -> Dict[str, ImportanceLerResult]:
    """Eq. (1) LER of several decoders on shared per-k workloads.

    Args:
        decoders: Name -> decoder map; all see identical syndromes.
        dem: The detector error model.
        p: Physical error rate.
        k_max: Largest injected fault count (the paper uses up to 24).
        shots_per_k: Syndromes sampled per k.
        rng: Randomness.
        k_min: Smallest k sampled (k=0 contributes zero failures).
        shards: Process-pool width for the k slices (1 = inline; any
            value yields identical estimates).
        batch_size: Cap on shots per ``decode_batch`` call (memory knob).

    Returns:
        Name -> :class:`ImportanceLerResult`.
    """
    return _estimate_eq1(
        components=decoders,
        parallel_specs={},
        dem=dem,
        p=p,
        k_max=k_max,
        shots_per_k=shots_per_k,
        rng=rng,
        k_min=k_min,
        shots_for_k=None,
        shards=shards,
        batch_size=batch_size,
    )


def estimate_ler_suite(
    components: Mapping[str, Decoder],
    parallel_specs: Mapping[str, Tuple[str, str]],
    dem: DetectorErrorModel,
    p: float,
    k_max: int = 16,
    shots_per_k: int = 200,
    rng: RngLike = None,
    k_min: int = 1,
    shots_for_k: Optional[Callable[[int], int]] = None,
    shards: int = 1,
    batch_size: Optional[int] = None,
) -> Dict[str, ImportanceLerResult]:
    """Eq. (1) LER for component decoders *and* parallel combinations.

    Each component decodes every syndrome exactly once; the ``a || b``
    configurations are derived from the stored component results with the
    hardware's comparator rule (:func:`combine_parallel_batch`), which
    halves the decode cost of evaluating the paper's Table 2.

    Args:
        components: Name -> decoder for every directly-evaluated config.
        parallel_specs: Name -> (component_a, component_b) for each
            parallel configuration to derive.
        shots_for_k: Optional per-k shot schedule overriding
            ``shots_per_k``.  Decoder differences concentrate at
            mid-range fault counts (sparse syndromes everyone decodes;
            astronomically-rare dense ones nobody weights), so headline
            tables boost shots exactly there.
        shards: Process-pool width for the k slices (1 = inline; any
            value yields identical estimates).
        batch_size: Cap on shots per ``decode_batch`` call (memory knob).
    """
    unknown = {
        name: spec
        for name, spec in parallel_specs.items()
        if spec[0] not in components or spec[1] not in components
    }
    if unknown:
        raise ValueError(f"parallel specs reference unknown components: {unknown}")
    collisions = set(components) & set(parallel_specs)
    if collisions:
        raise ValueError(
            "parallel configuration names collide with component names "
            f"(their per-k rows would be double-counted): {sorted(collisions)}"
        )
    return _estimate_eq1(
        components=components,
        parallel_specs=parallel_specs,
        dem=dem,
        p=p,
        k_max=k_max,
        shots_per_k=shots_per_k,
        rng=rng,
        k_min=k_min,
        shots_for_k=shots_for_k,
        shards=shards,
        batch_size=batch_size,
    )
