"""Persistent experiment store: resumable per-slice failure/trial counts.

Long Monte-Carlo sweeps (the Table 2 / Figures 14-17 operating-point
grids) are built from many independent *slices* of work -- one exact-k
workload of the Eq. (1) estimator, or one shot-range of a direct
Monte-Carlo run.  The store persists the outcome of every completed
slice so that

* a killed sweep re-run with ``resume=True`` replays the completed
  slices from disk and executes only the residual ones, reproducing the
  uninterrupted result **bitwise**, and
* a finished sweep re-run with a larger shot budget pays only the delta
  (extra shots land in new sub-runs with deterministically derived
  seeds).

Format
------
One JSON object per line, append-only (``*.jsonl``).  Each record holds
the outcome of one slice run::

    {"config": "<sha256 prefix>", "kind": "eq1", "k": 7, "seed": 123,
     "run": 0, "shots": 1600, "counts": {"MWPM": [0, 1600], ...}}

A second line shape stores whole-step *artifacts* -- the consolidated
output of work that is not slice-decomposable (the high-HW censuses of
the campaign layer)::

    {"artifact": {"config": "...", "kind": "census_latency",
                  "budget": 150, "payload": {...}}}

Artifact lines are wrapped under a single ``"artifact"`` key so older
readers (which require a top-level ``"config"``) skip them as foreign
lines; the latest artifact per ``(config, kind)`` wins.

``config`` is the stable experiment key (:func:`config_key` /
:func:`dem_config_key`): a hash over everything that determines the
sampled workload distribution -- code family, distance, rounds, noise
model, physical error rate and estimator kind -- but **not** over shot
counts or decoder names, which live inside the records so budgets can
grow and decoder sets can differ between runs.  ``counts`` maps each
decoder configuration evaluated on the slice's shared workload to its
``[failures, trials]`` pair; a stored slice is reusable only when it
covers every decoder requested now (the estimators evaluate all
configurations on paired syndromes, so partial reuse would un-pair
them).

Concurrency
-----------
Appends are a single ``write`` on an ``O_APPEND`` descriptor, serialized
through an ``fcntl`` lock on a sidecar ``.lock`` file where available,
so concurrent shards (or separate sweep processes) can share one store
file; readers skip torn or foreign trailing lines.
:meth:`ExperimentStore.compact` rewrites the file with exact duplicates
dropped, holding the same lock for the whole read-rewrite-rename cycle
so no concurrent append is lost (appenders open the store by name only
*after* acquiring the lock, so they always land in the renamed file).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


def config_key(**fields: object) -> str:
    """Stable experiment key from keyword descriptor fields.

    The key is the first 16 hex digits of a SHA-256 over the sorted,
    canonically-JSON-encoded fields; it is stable across processes and
    platforms (floats round-trip through ``repr``).
    """
    canonical = json.dumps(
        {name: repr(value) for name, value in fields.items()}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def dem_fingerprint(dem) -> str:
    """Content hash of a detector error model (cached on the instance).

    Two DEMs with identical mechanisms (detectors, observable masks,
    per-class fault counts) and detector count fingerprint identically,
    so the fingerprint identifies the sampled-workload distribution at
    any ``p`` without naming the circuit that produced it.
    """
    cached = getattr(dem, "_fingerprint_cache", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(str(dem.n_detectors).encode())
    for mechanism in dem.mechanisms:
        digest.update(
            repr(
                (
                    mechanism.detectors,
                    mechanism.observable_mask,
                    mechanism.class_counts,
                )
            ).encode()
        )
    fingerprint = digest.hexdigest()[:16]
    dem._fingerprint_cache = fingerprint
    return fingerprint


def dem_config_key(dem, p: float, kind: str) -> str:
    """Fallback experiment key derived from DEM content and error rate.

    Used when the caller hands the estimators a store but no explicit
    key (e.g. a bare DEM with no code/distance/noise description).
    """
    return config_key(dem=dem_fingerprint(dem), p=p, kind=kind)


@dataclass(frozen=True)
class SliceRecord:
    """One completed slice run.

    Attributes:
        config: Experiment key (:func:`config_key`).
        kind: Estimator family (``"eq1"`` or ``"direct"``).
        k: Injected fault count of the slice (``None`` for direct MC).
        seed: The slice's base RNG seed, drawn by the parent sweep.
        run: Sub-run index; run 0 samples with ``seed`` itself, run
            ``i > 0`` with a seed derived from ``(seed, i)``, so growing
            a slice's budget never resamples what run 0 already paid for.
        shots: Trials in this run (every decoder saw the same workload).
        counts: Decoder name -> ``(failures, trials)`` on the workload.
    """

    config: str
    kind: str
    k: Optional[int]
    seed: int
    run: int
    shots: int
    counts: Mapping[str, Tuple[int, int]]

    def to_json(self) -> str:
        return json.dumps(
            {
                "config": self.config,
                "kind": self.kind,
                "k": self.k,
                "seed": int(self.seed),
                "run": int(self.run),
                "shots": int(self.shots),
                "counts": {
                    name: [int(f), int(t)] for name, (f, t) in self.counts.items()
                },
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> Optional["SliceRecord"]:
        """Parse one store line; ``None`` for torn or foreign lines."""
        try:
            raw = json.loads(line)
            return cls(
                config=str(raw["config"]),
                kind=str(raw["kind"]),
                k=None if raw["k"] is None else int(raw["k"]),
                seed=int(raw["seed"]),
                run=int(raw["run"]),
                shots=int(raw["shots"]),
                counts={
                    str(name): (int(pair[0]), int(pair[1]))
                    for name, pair in raw["counts"].items()
                },
            )
        except (ValueError, KeyError, TypeError, IndexError):
            return None

    @property
    def slice_id(self) -> Tuple[str, str, Optional[int], int]:
        return (self.config, self.kind, self.k, self.seed)


@dataclass(frozen=True)
class ArtifactRecord:
    """One stored whole-step artifact (census results, etc.).

    Unlike a :class:`SliceRecord`, an artifact is not decomposable into
    resumable sub-runs: it is the complete, canonical output of one
    step at one ``budget`` (the step's shot knob).  A stored artifact
    whose budget covers a request satisfies it entirely -- the campaign
    executor returns ``payload`` verbatim instead of recomputing.
    """

    config: str
    kind: str
    budget: int
    payload: Mapping

    def to_json(self) -> str:
        return json.dumps(
            {
                "artifact": {
                    "config": self.config,
                    "kind": self.kind,
                    "budget": int(self.budget),
                    "payload": self.payload,
                }
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> Optional["ArtifactRecord"]:
        """Parse one artifact line; ``None`` for any other line shape."""
        try:
            raw = json.loads(line)["artifact"]
            return cls(
                config=str(raw["config"]),
                kind=str(raw["kind"]),
                budget=int(raw["budget"]),
                payload=raw["payload"],
            )
        except (ValueError, KeyError, TypeError, IndexError):
            return None


@dataclass(frozen=True)
class Coverage:
    """How much of one step's budget the store already holds.

    ``usable`` is the larger of the usable slice trials and any stored
    artifact's budget; ``covered`` is the campaign cache rule: a step is
    skipped when the store holds at least its budget.
    """

    config: str
    kind: str
    usable: int
    budget: int

    @property
    def covered(self) -> bool:
        return self.usable >= self.budget


def atomic_write_json(path, payload, *, sort_keys: bool = False) -> Path:
    """Write a JSON artifact via the store's temp-file + rename dance.

    A kill mid-write leaves the previous file (or no file) in place,
    never a truncated JSON document.  Used by ``SweepResult.save``, the
    campaign artifact writer, and the benchmark result files.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + ".tmp")
    with tmp_path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=sort_keys, default=float)
    tmp_path.replace(path)
    return path


def derived_seed(seed: int, run: int) -> int:
    """Seed of sub-run ``run`` of a slice whose base seed is ``seed``.

    Run 0 uses the base seed unchanged, so whenever the storeless path
    also evaluates whole pre-seeded slices (the Eq. (1) estimators at
    any width, direct MC with ``shards > 1``) the store-backed run
    samples exactly the same workloads; later runs get independent
    streams via :func:`repro.utils.rng.stable_seed`.
    """
    if run == 0:
        return int(seed)
    from repro.utils.rng import stable_seed

    return stable_seed("store-subrun", int(seed), int(run))


class ExperimentStore:
    """Append-only JSON-lines store of completed slice runs.

    The in-memory index maps slice identity to its runs; it is refreshed
    from disk lazily (stat-based) so several processes can interleave
    appends on one file.  All mutation goes through :meth:`append`,
    which writes one complete line atomically.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._index: Dict[Tuple, Dict[int, SliceRecord]] = {}
        self._artifacts: Dict[Tuple[str, str], ArtifactRecord] = {}
        self._stat: Optional[Tuple[int, int]] = None

    # -- disk I/O ----------------------------------------------------------------

    @property
    def _lock_path(self) -> Path:
        """Sidecar lock file serializing writers across processes.

        The lock lives *next to* the store rather than on it so that
        :meth:`compact` can atomically replace the store file while
        holding the lock: writers open the store by name only after
        acquiring the lock, so they never append to a renamed-away
        inode.
        """
        return self.path.with_name(self.path.name + ".lock")

    def _acquire_lock(self) -> Optional[int]:
        if fcntl is None:
            return None
        fd = os.open(self._lock_path, os.O_WRONLY | os.O_CREAT, 0o644)
        fcntl.flock(fd, fcntl.LOCK_EX)
        return fd

    def _release_lock(self, fd: Optional[int]) -> None:
        if fd is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _refresh(self) -> None:
        """Re-read the file if it changed since the last load."""
        if not self.path.exists():
            self._index = {}
            self._artifacts = {}
            self._stat = None
            return
        stat = self.path.stat()
        signature = (stat.st_size, stat.st_mtime_ns)
        if signature == self._stat:
            return
        index: Dict[Tuple, Dict[int, SliceRecord]] = {}
        artifacts: Dict[Tuple[str, str], ArtifactRecord] = {}
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                record = SliceRecord.from_json(line)
                if record is not None:
                    index.setdefault(record.slice_id, {})[record.run] = record
                    continue
                artifact = ArtifactRecord.from_json(line)
                if artifact is not None:
                    # Append order is write order: the latest wins.
                    artifacts[(artifact.config, artifact.kind)] = artifact
        self._index = index
        self._artifacts = artifacts
        self._stat = signature

    def _append_line(self, data: bytes) -> None:
        """Locked single-line append, safe after a torn final line.

        A writer killed mid-line leaves a tail with no newline; blindly
        appending would glue the new record onto that fragment and lose
        both.  Start a fresh line whenever the file does not end in a
        newline.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lock = self._acquire_lock()
        try:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                size = os.fstat(fd).st_size
                if size > 0 and os.pread(fd, 1, size - 1) != b"\n":
                    data = b"\n" + data
                os.write(fd, data)
            finally:
                os.close(fd)
        finally:
            self._release_lock(lock)

    def append(self, record: SliceRecord) -> None:
        """Durably append one slice run (atomic single-line write)."""
        self._append_line((record.to_json() + "\n").encode("utf-8"))
        # Keep the in-memory index coherent without a disk round-trip;
        # the stat marker is dropped so foreign appends are still seen.
        self._index.setdefault(record.slice_id, {})[record.run] = record
        self._stat = None

    def append_artifact(self, record: ArtifactRecord) -> None:
        """Durably append one whole-step artifact (latest per key wins)."""
        self._append_line((record.to_json() + "\n").encode("utf-8"))
        self._artifacts[(record.config, record.kind)] = record
        self._stat = None

    # -- queries -----------------------------------------------------------------

    def slice_runs(
        self, config: str, kind: str, k: Optional[int], seed: int
    ) -> List[SliceRecord]:
        """All stored runs of one slice, ordered by run index."""
        self._refresh()
        runs = self._index.get((config, kind, k, int(seed)), {})
        return [runs[i] for i in sorted(runs)]

    def usable_runs(
        self,
        config: str,
        kind: str,
        k: Optional[int],
        seed: int,
        names: Sequence[str],
    ) -> List[SliceRecord]:
        """The contiguous run-0..n prefix covering every requested name.

        Runs must form a gapless prefix (run 0, 1, ...) so the derived
        seed of the next residual sub-run is well defined, and each must
        carry counts for *all* requested decoder names (slices are paired
        workloads; partial coverage cannot be completed after the fact).
        """
        usable: List[SliceRecord] = []
        for record in self.slice_runs(config, kind, k, seed):
            if record.run != len(usable):
                break
            if any(name not in record.counts for name in names):
                break
            usable.append(record)
        return usable

    def records(self) -> List[SliceRecord]:
        """Every stored record (all configs), in slice order."""
        self._refresh()
        return [
            runs[i]
            for slice_id, runs in sorted(self._index.items(), key=lambda kv: str(kv[0]))
            for i in sorted(runs)
        ]

    def artifact(self, config: str, kind: str) -> Optional[ArtifactRecord]:
        """The latest stored artifact for ``(config, kind)``, if any."""
        self._refresh()
        return self._artifacts.get((config, kind))

    def artifacts(self) -> List[ArtifactRecord]:
        """Every stored artifact (latest per key), sorted by key."""
        self._refresh()
        return [self._artifacts[key] for key in sorted(self._artifacts)]

    def config_summary(self) -> List[Tuple[str, str, int, int]]:
        """Per ``(config, kind)``: stored record and trial counts.

        Sorted rows ``(config, kind, records, trials)`` -- the inventory
        ``python -m repro store info`` prints so an operator can decide
        which config hashes a :meth:`prune` should keep.  An artifact
        counts as one record whose trials are its budget.
        """
        self._refresh()
        summary: Dict[Tuple[str, str], List[int]] = {}
        for record in self.records():
            entry = summary.setdefault((record.config, record.kind), [0, 0])
            entry[0] += 1
            entry[1] += record.shots
        for artifact in self.artifacts():
            entry = summary.setdefault((artifact.config, artifact.kind), [0, 0])
            entry[0] += 1
            entry[1] += artifact.budget
        return [
            (config, kind, records, trials)
            for (config, kind), (records, trials) in sorted(summary.items())
        ]

    def total_trials(self, config: str, kind: str) -> int:
        """Total stored trials for one experiment (any decoder's view).

        Counts every record, including runs a resume would reject
        (gapped run sequences, runs missing some decoder); use
        :meth:`usable_trials` for resume-visible progress.
        """
        self._refresh()
        total = 0
        for (cfg, knd, _k, _seed), runs in self._index.items():
            if cfg == config and knd == kind:
                total += sum(record.shots for record in runs.values())
        return total

    def usable_trials(
        self, config: str, kind: str, names: Sequence[str]
    ) -> int:
        """Stored trials a resume requesting ``names`` would replay.

        Unlike :meth:`total_trials` this applies the :meth:`usable_runs`
        rules per slice -- gapless run prefixes only, every run covering
        all requested decoder names -- so it reports the progress a
        resumed sweep will actually credit, not just what is on disk.
        """
        self._refresh()
        total = 0
        for cfg, knd, k, seed in list(self._index):
            if cfg == config and knd == kind:
                total += sum(
                    record.shots
                    for record in self.usable_runs(config, kind, k, seed, names)
                )
        return total

    def coverage(
        self, config: str, kind: str, names: Sequence[str], budget: int
    ) -> Coverage:
        """How much of a ``budget``-trial request the store satisfies.

        The single coverage query behind the campaign layer's cache
        rule (:mod:`repro.eval.campaign`): ``usable`` is the larger of
        the resume-visible slice trials (:meth:`usable_trials`) and any
        stored whole-step artifact's budget, and ``covered`` means the
        request needs no new decode work.
        """
        usable = self.usable_trials(config, kind, names)
        artifact = self.artifact(config, kind)
        if artifact is not None:
            usable = max(usable, artifact.budget)
        return Coverage(
            config=config, kind=kind, usable=usable, budget=int(budget)
        )

    # -- maintenance -------------------------------------------------------------

    def _rewrite_locked(self, keep) -> Tuple[int, int]:
        """Locked read-filter-rewrite-rename cycle (compact/prune core).

        Re-reads the store under the writer lock, keeps the records
        ``keep(record)`` accepts, and atomically replaces the file via a
        ``.tmp`` sibling.  Holding the lock for the whole cycle means
        records appended by concurrent processes are never lost to the
        rename, and the write-temp-then-rename dance means a crash
        mid-rewrite never loses data.  Torn/foreign lines are always
        dropped.  Artifacts survive the rewrite (deduplicated to the
        latest per key) subject to the same keep predicate, which sees
        either record type and may dispatch on it.  Returns
        ``(records_before, records_kept)`` counting both types.
        """
        lock = self._acquire_lock()
        try:
            self._stat = None
            self._refresh()
            records = self.records()
            artifacts = self.artifacts()
            kept = [record for record in records if keep(record)]
            kept_artifacts = [a for a in artifacts if keep(a)]
            tmp_path = self.path.with_suffix(self.path.suffix + ".tmp")
            with tmp_path.open("w", encoding="utf-8") as handle:
                for record in kept:
                    handle.write(record.to_json() + "\n")
                for artifact in kept_artifacts:
                    handle.write(artifact.to_json() + "\n")
            tmp_path.replace(self.path)
            self._stat = None
        finally:
            self._release_lock(lock)
        return (
            len(records) + len(artifacts),
            len(kept) + len(kept_artifacts),
        )

    def compact(self) -> int:
        """Rewrite the file dropping torn lines and exact duplicates.

        Returns the number of surviving records; see
        :meth:`_rewrite_locked` for the concurrency guarantees.
        """
        _before, kept = self._rewrite_locked(lambda record: True)
        return kept

    def prune(self, keep_keys: Iterable[str]) -> int:
        """Drop every record whose config key is not in ``keep_keys``.

        Garbage-collects slices left behind by abandoned operating
        points (old distances, retuned error rates, renamed noise
        models) so a long-lived store file stops growing without bound.
        Returns the number of records dropped; see
        :meth:`_rewrite_locked` for the concurrency guarantees.

        An empty or fully-mismatched keep-set empties the store; the
        CLI front-end (``python -m repro store prune``) refuses keep
        keys that match nothing so a typo cannot silently wipe months
        of accumulated trials.
        """
        keep = {str(key) for key in keep_keys}
        before, kept = self._rewrite_locked(
            lambda record: record.config in keep
        )
        return before - kept


def open_store(path) -> Optional[ExperimentStore]:
    """``ExperimentStore`` for ``path``, or ``None`` when path is falsy."""
    return ExperimentStore(path) if path else None
