"""Shared process-pool plumbing for sharded evaluation.

Both the Eq. (1) estimators (:mod:`repro.eval.ler`) and the high-HW
censuses (:mod:`repro.eval.experiments`) fan tiny index-only tasks over a
pool of worker processes while the heavy per-run state (decoders, DEM,
sampled batches) is shared out-of-band:

* on fork platforms the children inherit :data:`_POOL_SHARED`
  copy-on-write -- nothing is pickled per task and non-picklable decoder
  configurations keep working;
* on spawn-only platforms the pool initializer ships the shared state
  once per worker.

Workers read the state back with :func:`pool_shared`.  Because only
(failures, trials) counts or per-shot rows cross the process boundary,
and every task's randomness is seeded up front by the parent, results
are identical however the tasks are scheduled.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Tuple

#: Heavy per-run state (decoders, DEM, batches, ...) shared with pool
#: workers.  See the module docstring for the fork/spawn delivery story.
_POOL_SHARED = None


def _init_pool_shared(shared) -> None:
    global _POOL_SHARED
    _POOL_SHARED = shared


def pool_shared():
    """The shared state installed by :func:`run_sharded` (worker side)."""
    return _POOL_SHARED


def run_sharded(shared, worker, tasks: List[Tuple], processes: int) -> List:
    """Map ``worker`` over ``tasks`` in a process pool.

    Tasks stay tiny (ints only); ``shared`` reaches the workers through
    fork inheritance of :data:`_POOL_SHARED` where available, otherwise
    through the initializer.  Output order matches task order.
    """
    global _POOL_SHARED
    use_fork = "fork" in multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if use_fork else None)
    previous = _POOL_SHARED
    _POOL_SHARED = shared
    try:
        with context.Pool(
            processes=processes,
            initializer=None if use_fork else _init_pool_shared,
            initargs=() if use_fork else (shared,),
        ) as pool:
            return pool.map(worker, tasks)
    finally:
        _POOL_SHARED = previous
