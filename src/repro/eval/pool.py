"""Shared process-pool plumbing for sharded evaluation.

Both the Eq. (1) estimators (:mod:`repro.eval.ler`), the high-HW
censuses (:mod:`repro.eval.experiments`) and the sweep orchestrator
(:mod:`repro.eval.sweep`) fan tiny index-only tasks over a pool of
worker processes while the heavy per-run state (decoders, DEM, sampled
batches) is shared out-of-band:

* on fork platforms the children inherit :data:`_POOL_SHARED`
  copy-on-write -- nothing is pickled per task and non-picklable decoder
  configurations keep working;
* on spawn-only platforms the pool initializer ships the shared state
  once per worker.

Workers read the state back with :func:`pool_shared`.  Because only
(failures, trials) counts or per-shot rows cross the process boundary,
and every task's randomness is seeded up front by the parent, results
are identical however the tasks are scheduled.

Persistent pools
----------------
:class:`WorkerPool` keeps the worker processes alive across many
``map`` calls, so a sweep pays the fork-and-import cost **once** instead
of once per refinement round, k-slice batch, and grid point.  The shared
state installed at fork time can be swapped between calls:

* a payload identical (by object identity) to the installed one is a
  no-op -- every refinement round of one operating point reuses the
  live workers untouched;
* a new payload is broadcast to every worker through a
  barrier-synchronized task (each worker installs the pickled state
  exactly once) -- this is how one pool serves every (distance, p)
  point of a sweep;
* a payload that cannot be pickled falls back to recycling the pool, so
  fork-only state keeps working at one fork per payload change.

:func:`run_sharded` is the one-shot facade: with ``pool=None`` it spins
up a throwaway pool per call (the historic behavior); handed a
:class:`WorkerPool` it becomes a thin alias for ``pool.map``.
:func:`pool_spinups` counts every pool creation process-wide, so tests
and benchmarks can assert that the persistent path actually forks less.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import List, Optional, Tuple

#: Heavy per-run state (decoders, DEM, batches, ...) shared with pool
#: workers.  See the module docstring for the fork/spawn delivery story.
_POOL_SHARED = None

#: Barrier synchronizing shared-state broadcasts to a persistent pool
#: (inherited at fork / installed by the spawn initializer).
_POOL_BARRIER = None

#: Process-wide count of pool creations (worker-set forks).
_POOL_SPINUPS = 0

#: Sentinel distinguishing "no payload installed yet" from ``None``.
_UNSET = object()


def pool_spinups() -> int:
    """How many process pools this process has created so far."""
    return _POOL_SPINUPS


def _init_pool_worker(blob: Optional[bytes], barrier) -> None:
    """Spawn-platform initializer: install shared state and the barrier."""
    global _POOL_SHARED, _POOL_BARRIER
    _POOL_SHARED = None if blob is None else pickle.loads(blob)
    _POOL_BARRIER = barrier


def pool_shared():
    """The shared state installed by the pool (worker side)."""
    return _POOL_SHARED


def _broadcast_worker(blob: bytes) -> bool:
    """Install a new shared payload in this worker.

    The barrier holds every worker until all of them have taken exactly
    one broadcast task, so no worker misses the swap (a free worker
    cannot grab a second task while blocked here).
    """
    global _POOL_SHARED
    _POOL_SHARED = pickle.loads(blob)
    _POOL_BARRIER.wait()
    return True


class WorkerPool:
    """Persistent process pool with swappable out-of-band shared state.

    Usage::

        with WorkerPool(processes=8) as pool:
            for point in grid:
                shared = build_heavy_state(point)
                for round_tasks in rounds:
                    outputs = pool.map(shared, worker_fn, round_tasks)

    The workers are forked on the first ``map`` and live until
    :meth:`close` / context exit.  ``shared`` is delivered by fork
    inheritance on the first spin-up and by pickled broadcast on later
    changes (see the module docstring); consecutive calls with the same
    payload object ship nothing.
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes or (os.cpu_count() or 1)
        self._pool = None
        self._shared = _UNSET
        self._forks = 0

    @property
    def forks(self) -> int:
        """How many times this pool has forked its worker set."""
        return self._forks

    # -- lifecycle ---------------------------------------------------------------

    def _spinup(self, shared) -> None:
        global _POOL_SHARED, _POOL_BARRIER, _POOL_SPINUPS
        use_fork = "fork" in multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if use_fork else None)
        barrier = context.Barrier(self.processes)
        if use_fork:
            previous = (_POOL_SHARED, _POOL_BARRIER)
            _POOL_SHARED, _POOL_BARRIER = shared, barrier
            try:
                self._pool = context.Pool(processes=self.processes)
            finally:
                _POOL_SHARED, _POOL_BARRIER = previous
        else:  # pragma: no cover - exercised only on spawn-only platforms
            self._pool = context.Pool(
                processes=self.processes,
                initializer=_init_pool_worker,
                initargs=(pickle.dumps(shared), barrier),
            )
        self._shared = shared
        self._forks += 1
        _POOL_SPINUPS += 1

    def _install(self, shared) -> None:
        """Make ``shared`` the payload every live worker sees."""
        if self._pool is None:
            self._spinup(shared)
            return
        if shared is self._shared:
            return
        try:
            blob = pickle.dumps(shared)
        except (KeyboardInterrupt, SystemExit):
            # Interrupts are never a pickling failure to fall back from.
            raise
        except Exception:  # reprolint: broad-except -- any pickling error means "use fork inheritance", not "crash the sweep"
            # Fork inheritance is the only channel for non-picklable
            # payloads: recycle the pool (one fork per payload change,
            # still far cheaper than one per map call).
            self.close()
            self._spinup(shared)
            return
        self._pool.map(_broadcast_worker, [blob] * self.processes, chunksize=1)
        self._shared = shared

    def map(self, shared, worker, tasks: List[Tuple]) -> List:
        """Map ``worker`` over ``tasks`` with ``shared`` installed.

        Tasks stay tiny (ints only); output order matches task order.
        Results are identical to inline evaluation and to any other
        pool width because every task's randomness is pre-seeded.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        self._install(shared)
        return self._pool.map(worker, tasks)

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._shared = _UNSET

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_sharded(
    shared,
    worker,
    tasks: List[Tuple],
    processes: int,
    pool: Optional[WorkerPool] = None,
) -> List:
    """Map ``worker`` over ``tasks`` in a process pool.

    With ``pool=None`` a throwaway :class:`WorkerPool` is created for
    this one call (the historic per-call behavior); passing a live
    :class:`WorkerPool` reuses its forked workers and ignores
    ``processes`` (the pool's own width applies).
    """
    if pool is not None:
        return pool.map(shared, worker, tasks)
    with WorkerPool(processes) as throwaway:
        return throwaway.map(shared, worker, tasks)
