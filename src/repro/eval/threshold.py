"""Error-suppression and threshold analysis utilities.

The quantities practitioners extract from Figure-4-style data:

* **Lambda (error-suppression factor)** -- the ratio LER(d) / LER(d+2)
  at fixed physical rate.  Below threshold Lambda > 1 and roughly
  constant; a decoder's accuracy gap shows up directly as a smaller
  Lambda (Astrea-G's detachment at d >= 11 is exactly a collapsing
  Lambda).

* **Threshold estimate** -- the physical rate where LER curves for
  successive distances cross.  Estimated here by log-linear
  interpolation of the crossing of two measured LER-vs-p series.

Both helpers are estimator-agnostic: feed them direct Monte-Carlo or
Eq. (1) numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LambdaEstimate:
    """Error-suppression factor between two distances at fixed p."""

    distance_small: int
    distance_large: int
    p: float
    lambda_factor: float

    @property
    def suppressing(self) -> bool:
        """True when growing the code actually helps (Lambda > 1)."""
        return self.lambda_factor > 1.0


def lambda_factor(
    ler_by_distance: Mapping[int, float], p: float
) -> List[LambdaEstimate]:
    """Suppression factors between successive measured distances.

    Args:
        ler_by_distance: distance -> LER at the given physical rate.
            Distances with zero LER (below the Monte-Carlo floor) are
            skipped -- a ratio against zero is meaningless.
        p: The physical rate the LERs were measured at (metadata).

    Returns:
        One estimate per consecutive distance pair, ascending.
    """
    usable = sorted(d for d, ler in ler_by_distance.items() if ler > 0)
    estimates: List[LambdaEstimate] = []
    for small, large in zip(usable, usable[1:]):
        estimates.append(
            LambdaEstimate(
                distance_small=small,
                distance_large=large,
                p=p,
                lambda_factor=ler_by_distance[small] / ler_by_distance[large],
            )
        )
    return estimates


def projected_ler(
    ler_by_distance: Mapping[int, float], p: float, target_distance: int
) -> Optional[float]:
    """Extrapolate LER to a larger distance assuming constant Lambda.

    The standard back-of-envelope for "what would d = 15 buy us":
    LER(d + 2k) ~ LER(d) / Lambda^k.  Returns None when no Lambda is
    measurable.
    """
    estimates = lambda_factor(ler_by_distance, p)
    if not estimates:
        return None
    last = estimates[-1]
    if last.lambda_factor <= 0:
        return None
    steps = (target_distance - last.distance_large) / (
        last.distance_large - last.distance_small
    )
    if steps < 0:
        raise ValueError("target distance below the measured range")
    return ler_by_distance[last.distance_large] / (last.lambda_factor**steps)


def crossing_point(
    rates: Sequence[float],
    ler_small_distance: Sequence[float],
    ler_large_distance: Sequence[float],
) -> Optional[float]:
    """Threshold estimate: where the two LER-vs-p curves cross.

    Interpolates log(LER_large / LER_small) against log(p) and returns
    the rate where the sign flips (None when the curves never cross in
    the measured window -- e.g. everything is comfortably below
    threshold).
    """
    if not (len(rates) == len(ler_small_distance) == len(ler_large_distance)):
        raise ValueError("series lengths must match")
    logs: List[Tuple[float, float]] = []
    for p, small, large in zip(rates, ler_small_distance, ler_large_distance):
        if small <= 0 or large <= 0:
            continue
        logs.append((math.log(p), math.log(large / small)))
    for (x0, y0), (x1, y1) in zip(logs, logs[1:]):
        if y0 == 0:
            return math.exp(x0)
        if y0 < 0 <= y1:
            # Linear interpolation of the zero crossing in log space.
            t = -y0 / (y1 - y0)
            return math.exp(x0 + t * (x1 - x0))
    return None
