"""ASCII table/series formatting matching the paper's presentation."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_scientific(value: float) -> str:
    """Compact scientific notation: 2.6e-14 style."""
    if value == 0:
        return "0"
    return f"{value:.1e}"


def format_ratio(value: float, baseline: float) -> str:
    """"(2.5x)" style ratio annotation against a baseline.

    A baseline at (or effectively at) zero -- e.g. an exact decoder whose
    failures sit below the Monte-Carlo floor -- yields no meaningful
    ratio.
    """
    if baseline <= 1e-30:
        return "(n/a)"
    ratio = value / baseline
    if ratio >= 10:
        return f"({ratio:.0f}x)"
    return f"({ratio:.1f}x)"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_ler_table(
    results: Dict[str, float],
    baseline_name: str = "MWPM",
    title: str = "",
) -> str:
    """LER table with ratios against a baseline row (paper Table 2 style)."""
    baseline = results.get(baseline_name, 0.0)
    rows = [
        [name, format_scientific(value), format_ratio(value, baseline)]
        for name, value in results.items()
    ]
    return format_table(["Decoder", "LER", "vs MWPM"], rows, title=title)


def format_histogram(
    histogram: Sequence[float], title: str = "", log_floor: float = 1e-16
) -> str:
    """Log-scale text rendering of a probability histogram (Figs 16/17)."""
    import math

    lines: List[str] = []
    if title:
        lines.append(title)
    for bin_index, mass in enumerate(histogram):
        if mass <= 0:
            continue
        clipped = max(mass, log_floor)
        bar = "#" * max(1, int(16 + math.log10(clipped)))
        lines.append(f"  HW {bin_index:3d}  {mass:9.3e}  {bar}")
    return "\n".join(lines)
